"""Ablation — timeline checkpointing (Appendix D outlook).

The Appendix D conclusion notes that interactively exploring a
threshold timeline is slow when "the user selects a similarity
threshold range starting before the end of the previous range", because
reverting merges needs an ``O(|D|)`` reset.  Our
:class:`~repro.core.timeline.DiagramTimeline` answers this with sparse
checkpoints.  This ablation measures a *zig-zag* query workload
(alternating low and high thresholds — the worst case for a
forward-only structure) under different checkpoint intervals, against
the rebuild-from-scratch baseline.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.diagrams import compute_diagram_optimized
from repro.core.timeline import DiagramTimeline
from repro.datagen import scored_benchmark_experiment

ZIGZAG = [0.9, 0.3, 0.85, 0.35, 0.8, 0.4, 0.75, 0.45, 0.7, 0.5] * 3


@pytest.fixture(scope="module")
def workload(person_benchmark):
    experiment = scored_benchmark_experiment(
        person_benchmark, target_matches=2_000, seed=23, name="timeline-run"
    )
    return person_benchmark, experiment


def _rebuild_baseline(data, experiment) -> float:
    """Zig-zag answered by rebuilding the sweep for every query."""
    started = time.perf_counter()
    for threshold in ZIGZAG:
        points = compute_diagram_optimized(
            data.dataset, experiment, data.gold, samples=2
        )
        del points
    return time.perf_counter() - started


def _timeline_run(data, experiment, checkpoint_every) -> float:
    timeline = DiagramTimeline(
        data.dataset, experiment, data.gold, checkpoint_every=checkpoint_every
    )
    started = time.perf_counter()
    for threshold in ZIGZAG:
        timeline.matrix_at(threshold)
    return time.perf_counter() - started


@pytest.mark.parametrize("checkpoint_every", [25, 100, 400])
def test_timeline_zigzag(benchmark, workload, checkpoint_every):
    data, experiment = workload
    timeline = DiagramTimeline(
        data.dataset, experiment, data.gold, checkpoint_every=checkpoint_every
    )

    def zigzag():
        for threshold in ZIGZAG:
            timeline.matrix_at(threshold)

    benchmark.pedantic(zigzag, rounds=3, iterations=1)


def test_timeline_report(benchmark, workload):
    """Query-time comparison: checkpointed timeline vs full rebuilds.

    Claim: once built, the timeline answers zig-zag queries much faster
    than re-running the sweep, and tighter checkpoints help.
    """
    data, experiment = workload
    rows = []
    timings = {}
    for checkpoint_every in (25, 100, 400):
        seconds = _timeline_run(data, experiment, checkpoint_every)
        timings[checkpoint_every] = seconds
        rows.append(
            [
                f"timeline (k={checkpoint_every})",
                f"{seconds * 1000:.0f}ms",
                f"{seconds * 1000 / len(ZIGZAG):.2f}ms",
            ]
        )
    baseline_seconds = _rebuild_baseline(data, experiment)
    rows.append(
        [
            "rebuild per query",
            f"{baseline_seconds * 1000:.0f}ms",
            f"{baseline_seconds * 1000 / len(ZIGZAG):.2f}ms",
        ]
    )
    print_table(
        "Ablation: timeline zig-zag queries (30 alternating thresholds)",
        ["strategy", "total", "per query"],
        rows,
    )
    emit_trajectory(
        "ablation_timeline",
        seconds={
            **{
                f"timeline_k{interval}": seconds
                for interval, seconds in timings.items()
            },
            "rebuild_baseline": baseline_seconds,
        },
        context={"queries": len(ZIGZAG)},
    )
    assert min(timings.values()) < baseline_seconds
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
