"""Disk-backed SQL-pushdown blocking for larger-than-memory corpora.

The in-memory blockers hold ``dict[str, list[str]]`` block membership
plus the full candidate set in Python memory — RAM bounds the corpus.
:mod:`repro.blocking_disk` spills ``(block_key, record_id)`` rows into
indexed SQLite tables and runs the pair join inside the storage engine,
streamed back in bounded chunks.  The claims under test:

1. **identity** — the disk path's candidate set is *set-identical* to
   the in-memory blocker, across blocker families, asserted in every
   mode (this is the CI gate: the ``blocking_storage`` knob must never
   change pipeline output);
2. **bounded memory** — a generated 1M-record person corpus blocks
   end-to-end (spill + join + chunked count) with peak RSS **< 1 GB**,
   because the corpus is generated and spilled in batches, the join's
   temp structures live in SQLite's capped page cache, and candidates
   are counted chunk-by-chunk without ever materializing the set;
3. **throughput** — spill and join rates are reported per mode as
   trajectory points (records/s and pairs/s).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_disk_blocking.py -s

Modes: ``REPRO_BENCH_SMOKE=1`` (CI, ~3k records), default (~60k),
``REPRO_BENCH_FULL=1`` (1M records; asserts the < 1 GB RSS bound).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory, peak_rss_mb
from repro.blocking_disk import (
    DiskBlockingStore,
    disk_lsh_blocking,
    disk_sorted_neighborhood,
    disk_standard_blocking,
    disk_token_blocking,
    spill_records,
    standard_plan,
    stream_candidates,
)
from repro.datagen import make_person_benchmark
from repro.datagen.domains import person_entity
from repro.datagen.generator import (
    CorruptionModel,
    DirtyDatasetGenerator,
    cluster_sizes_zipf,
)
from repro.matching.blocking import (
    first_token_key,
    sorted_neighborhood,
    standard_blocking,
    token_blocking,
)
from repro.matching.lsh import LshConfig, lsh_blocking

MAX_PEAK_RSS_MB = 1024
BATCH_RECORDS = 50_000


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _full() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def _corpus_records() -> int:
    if _full():
        return 1_000_000
    if _smoke():
        return 3_000
    return 60_000


def _batch(index: int, count: int):
    """One reproducible corpus slice with globally unique record ids."""
    generator = DirtyDatasetGenerator(
        entity_factory=person_entity,
        cluster_sizes=cluster_sizes_zipf(maximum=4),
        corruption=CorruptionModel(attribute_rate=0.35, null_rate=0.05),
        name=f"persons-{index}",
        id_prefix=f"b{index}-",
        seed=1_000 + index,
    )
    return generator.generate(count).dataset


def test_disk_candidates_identical_to_memory():
    """Claim 1 — asserted in every mode, across all blocker families."""
    record_count = 1_500 if _smoke() else 5_000
    dataset = make_person_benchmark(record_count, seed=41).dataset
    zip_key = first_token_key("zip")
    surname_key = first_token_key("last_name")
    lsh_config = LshConfig(num_perm=32, bands=8, max_block_size=50)

    comparisons = [
        ("standard(zip)",
         lambda: standard_blocking(dataset, zip_key),
         lambda: disk_standard_blocking(dataset, zip_key)),
        ("token(cap=60)",
         lambda: token_blocking(dataset, max_block_size=60),
         lambda: disk_token_blocking(dataset, max_block_size=60)),
        ("sorted_neighborhood(w=7)",
         lambda: sorted_neighborhood(dataset, surname_key, window=7),
         lambda: disk_sorted_neighborhood(dataset, surname_key, window=7)),
        ("lsh(32/8)",
         lambda: lsh_blocking(dataset, lsh_config),
         lambda: disk_lsh_blocking(dataset, lsh_config)),
    ]

    rows = []
    for name, memory_path, disk_path in comparisons:
        started = time.perf_counter()
        memory_pairs = memory_path()
        memory_seconds = time.perf_counter() - started
        started = time.perf_counter()
        disk_pairs = disk_path()
        disk_seconds = time.perf_counter() - started
        assert disk_pairs == memory_pairs, (
            f"{name}: disk produced {len(disk_pairs)} pairs, "
            f"memory {len(memory_pairs)} — the knob changed the output"
        )
        rows.append([
            name, len(memory_pairs),
            f"{memory_seconds:.3f}", f"{disk_seconds:.3f}",
        ])

    print_table(
        f"Disk vs memory candidate identity ({record_count} records)",
        ["Blocker", "Candidates", "Memory s", "Disk s"],
        rows,
    )


def test_corpus_blocks_in_bounded_memory():
    """Claims 2 + 3 — batched generation, spill, pushed-down join.

    The corpus never exists as one Python object: each slice is
    generated, spilled, and dropped; the join output is counted chunk
    by chunk.  In full mode (1M records) the < 1 GB peak-RSS bound is
    asserted; identity versus the in-memory path on the first slice is
    asserted in every mode.
    """
    record_count = _corpus_records()
    batch_size = min(BATCH_RECORDS, record_count)
    plan = standard_plan(first_token_key("zip"), {"attribute": "zip"})

    with DiskBlockingStore() as store:
        run_id = store.begin_run(plan.scheme, dict(plan.config))

        spill_started = time.perf_counter()
        spilled_rows = 0
        generated = 0
        first_slice = None
        index = 0
        while generated < record_count:
            count = min(batch_size, record_count - generated)
            dataset = _batch(index, count)
            spilled_rows += spill_records(store, run_id, plan, dataset)
            generated += len(dataset)
            if first_slice is None:
                first_slice = dataset  # kept for the identity assert
            index += 1
        spill_seconds = time.perf_counter() - spill_started

        join_started = time.perf_counter()
        candidate_count = 0
        chunk_count = 0
        for chunk in stream_candidates(store, run_id, plan):
            candidate_count += len(chunk)
            chunk_count += 1
        join_seconds = time.perf_counter() - join_started

        # Identity on the overlapping size: the first slice, re-run
        # through both paths, must agree exactly (every mode).
        overlap_key = first_token_key("zip")
        memory_pairs = standard_blocking(first_slice, overlap_key)
        disk_pairs = disk_standard_blocking(first_slice, overlap_key)
        assert disk_pairs == memory_pairs

    rss_mb = peak_rss_mb()
    spill_rate = generated / spill_seconds if spill_seconds else 0.0
    join_rate = candidate_count / join_seconds if join_seconds else 0.0

    print_table(
        f"Disk blocking at scale ({generated} records, "
        f"{index} batches)",
        ["Stage", "Seconds", "Rate", "Output"],
        [
            ["generate+spill", f"{spill_seconds:.2f}",
             f"{spill_rate:,.0f} rec/s", f"{spilled_rows} rows"],
            ["join+count", f"{join_seconds:.2f}",
             f"{join_rate:,.0f} pair/s",
             f"{candidate_count} pairs / {chunk_count} chunks"],
            ["peak RSS", f"{rss_mb:.1f} MiB", "", ""],
        ],
    )
    emit_trajectory(
        "disk_blocking",
        throughput={"spill_records_per_s": spill_rate,
                    "join_pairs_per_s": join_rate},
        seconds={"spill": spill_seconds, "join": join_seconds},
        counters={
            "records": generated,
            "rows_spilled": spilled_rows,
            "candidates": candidate_count,
            "chunks": chunk_count,
        },
        context={
            "smoke": _smoke(),
            "full": _full(),
            "records": record_count,
        },
    )

    assert candidate_count > 0
    assert chunk_count >= 1
    if _full():
        # Claim 2 — the whole point of the subsystem: a corpus 100x the
        # comfortable in-memory size blocks within the RSS budget.
        assert rss_mb < MAX_PEAK_RSS_MB, (
            f"peak RSS {rss_mb:.1f} MiB breaches the "
            f"{MAX_PEAK_RSS_MB} MiB larger-than-memory budget"
        )
