"""Streaming ingest vs. full pipeline recompute (the subsystem's claim).

The batch pipeline recomputes preparation, blocking, comparison, and
clustering over *all* records whenever anything changes; the streaming
subsystem scores only the delta candidate pairs of the new batch and
folds accepted matches into its persistent union-find.  For an appended
10% batch the delta is roughly ``1 - (N/(N+B))^2 ≈ 17%`` of the full
comparison volume, so ingesting the batch incrementally must be at
least **5× faster** than a full re-run — while producing the *same*
clusters as the batch recompute on the union of the records.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_streaming.py -s

Set ``REPRO_BENCH_SMOKE=1`` (CI) for a small, fast configuration.
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.records import Dataset
from repro.datagen import make_person_benchmark
from repro.streaming import build_pipeline_and_index, build_session

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "city": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.82,
}
MIN_SPEEDUP = 5.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def test_streaming_ingest_speedup_and_equivalence():
    """Claims under test:

    1. ingesting an appended 10% batch through the streaming subsystem
       is ≥5× faster than re-running the full batch pipeline on the
       union of the records;
    2. the incremental clustering is identical to the batch recompute.
    """
    base_count = 800 if _smoke() else 2000
    benchmark = make_person_benchmark(base_count + base_count // 10, seed=42)
    records = list(benchmark.dataset)
    split = base_count
    base, appended = records[:split], records[split:]

    # batch: one full pipeline re-run over the union of the records,
    # timed first so it runs with cold memoization caches — exactly the
    # from-scratch recompute a batch deployment would pay
    pipeline, _ = build_pipeline_and_index(CONFIG)
    union = Dataset(records, name="union")
    started = time.perf_counter()
    full_run = pipeline.run(union)
    batch_seconds = time.perf_counter() - started
    full_candidates = len(full_run.candidates)
    batch_clusters = set(full_run.experiment.clustering().clusters)
    # drop the run's ~100k retained vectors/pairs so the streaming
    # measurements below are not taxed by GC sweeps over the batch heap
    del full_run
    gc.collect()

    # streaming: the base is already ingested (that is the point of a
    # live session); we time only the delta ingest of the new batch.
    # Best of three fresh sessions — the standard least-interference
    # estimate — since the delta is ~6x shorter than the batch run and
    # correspondingly noisier.
    streaming_runs = []
    session = snapshot = None
    for round_index in range(3):
        session = build_session(CONFIG, name=f"bench-{round_index}")
        session.ingest(base)
        gc.collect()
        started = time.perf_counter()
        snapshot = session.ingest(appended)
        streaming_runs.append(time.perf_counter() - started)
    streaming_seconds = min(streaming_runs)

    speedup = batch_seconds / max(streaming_seconds, 1e-9)
    print_table(
        "Streaming ingest vs. full recompute (appended 10% batch)",
        ["Path", "Records scored", "Candidate pairs", "Seconds"],
        [
            [
                "full re-run",
                len(records),
                full_candidates,
                f"{batch_seconds:.3f}",
            ],
            [
                "streaming delta",
                len(appended),
                snapshot.delta_candidates,
                f"{streaming_seconds:.3f}",
            ],
            ["speedup", "", "", f"{speedup:.1f}x"],
        ],
    )
    emit_trajectory(
        "streaming",
        seconds={
            "batch_recompute": batch_seconds,
            "streaming_delta": streaming_seconds,
        },
        counters={
            "full_candidates": full_candidates,
            "delta_candidates": snapshot.delta_candidates,
            "speedup": round(speedup, 1),
        },
        context={"smoke": _smoke(), "base_records": base_count},
    )

    stream_clusters = set(session.clusters().clusters)
    assert stream_clusters == batch_clusters, (
        "incremental clustering must equal the batch recompute"
    )
    assert snapshot.delta_candidates < full_candidates
    assert speedup >= MIN_SPEEDUP, (
        f"streaming ingest only {speedup:.1f}x faster "
        f"(batch {batch_seconds:.3f}s, streaming {streaming_seconds:.3f}s)"
    )


def test_delta_candidates_shrink_relative_to_full():
    """Structural check (timing-free): the delta candidate volume of a
    10% batch is a small fraction of the full candidate set."""
    base_count = 400 if _smoke() else 1500
    benchmark = make_person_benchmark(base_count + base_count // 10, seed=7)
    records = list(benchmark.dataset)
    base, appended = records[:base_count], records[base_count:]

    session = build_session(CONFIG, name="delta")
    session.ingest(base)
    snapshot = session.ingest(appended)

    pipeline, _ = build_pipeline_and_index(CONFIG)
    full = pipeline.generate_candidates(
        pipeline.prepare(Dataset(records, name="union"))
    )
    fraction = snapshot.delta_candidates / max(len(full), 1)
    print(
        f"\ndelta candidates: {snapshot.delta_candidates} of {len(full)} "
        f"({fraction:.1%} of the full volume)"
    )
    # 1 - (1/1.1)^2 ~= 17.4%; allow headroom for block skew
    assert fraction <= 0.3
