"""Ablation — scaling behaviour of the optimized diagram algorithm.

Appendix D claims worst-case runtime ``O(|D| + |Matches|·(s +
log|Matches|))`` — i.e. near-linear growth in dataset size for a fixed
match/record ratio, while the naïve approach grows like ``s·(|D| +
|Matches|)``.  We measure both on doubling dataset sizes and check
that (a) the optimized algorithm scales sub-quadratically and (b) the
naïve/optimized runtime ratio does not shrink with size.
"""

from __future__ import annotations

import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.diagrams import (
    compute_diagram_naive_clustering,
    compute_diagram_optimized,
)
from repro.datagen import (
    DirtyDatasetGenerator,
    cluster_sizes_zipf,
    scored_benchmark_experiment,
)
from repro.datagen.domains import song_entity

SIZES = [2_000, 4_000, 8_000, 16_000]
SAMPLES = 50


def _case(size: int):
    generator = DirtyDatasetGenerator(
        entity_factory=song_entity,
        cluster_sizes=cluster_sizes_zipf(maximum=3),
        name=f"scale-{size}",
        seed=size,
    )
    data = generator.generate(size)
    experiment = scored_benchmark_experiment(
        data, target_matches=size // 2, seed=size
    )
    return data, experiment


def test_scaling_report(benchmark):
    rows = []
    optimized_times = []
    ratios = []
    for size in SIZES:
        data, experiment = _case(size)
        started = time.perf_counter()
        compute_diagram_optimized(
            data.dataset, experiment, data.gold, samples=SAMPLES
        )
        optimized = time.perf_counter() - started
        started = time.perf_counter()
        compute_diagram_naive_clustering(
            data.dataset, experiment, data.gold, samples=SAMPLES
        )
        naive = time.perf_counter() - started
        optimized_times.append(optimized)
        ratios.append(naive / max(optimized, 1e-9))
        rows.append(
            [size, f"{optimized * 1000:.0f}ms", f"{naive * 1000:.0f}ms",
             f"{ratios[-1]:.1f}x"]
        )
    print_table(
        "Ablation: scaling of optimized vs naive diagram computation",
        ["records", "optimized", "naive", "speedup"],
        rows,
    )
    emit_trajectory(
        "ablation_scaling",
        seconds={
            f"optimized_{size}": seconds
            for size, seconds in zip(SIZES, optimized_times)
        },
        counters={
            f"speedup_{size}": round(ratio, 2)
            for size, ratio in zip(SIZES, ratios)
        },
        context={"sizes": SIZES, "samples": SAMPLES},
    )
    # (a) near-linear optimized scaling: 8x records < ~24x time
    growth = optimized_times[-1] / max(optimized_times[0], 1e-9)
    assert growth < (SIZES[-1] / SIZES[0]) * 3.0
    # (b) the advantage does not vanish with size
    assert ratios[-1] > 2.0
    assert max(ratios[1:]) >= ratios[0] * 0.5
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_union_find_throughput(benchmark):
    """Microbenchmark: tracked-union throughput on a long merge chain."""
    from repro.core.unionfind import PairCountingUnionFind

    n = 200_000

    def chain():
        unionfind = PairCountingUnionFind(n)
        unionfind.tracked_union(((i, i + 1) for i in range(n - 1)))
        return unionfind.pair_count

    pairs = benchmark(chain)
    assert pairs == n * (n - 1) // 2
