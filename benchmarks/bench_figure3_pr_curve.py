"""Figure 3 — Precision-Recall curve.

"This diagram plots recall against precision for a given set of
similarity thresholds."  We run a real matching pipeline on the
X4-like product dataset, sweep the threshold with the optimized
diagram algorithm, and print the (recall, precision) series.  Shape
claims: precision is (weakly) high at high thresholds, recall grows as
the threshold drops, and the curve spans a meaningful trade-off region.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.diagrams import compute_diagram_optimized, metric_metric_series
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    token_blocking,
)
from repro.metrics.pairwise import f1_score, precision, recall


def build_scored_experiment(x4_benchmark):
    # ngram_jaccard keeps the sweep laptop-fast (Monge–Elkan would take
    # minutes on the token-blocked candidate set) while still resolving
    # the token-level corruption of the offers
    comparator = AttributeComparator(
        {"name": "ngram_jaccard", "brand": "exact", "size": "exact",
         "price": "numeric"}
    )
    pipeline = MatchingPipeline(
        candidate_generator=lambda d: token_blocking(
            d, attributes=["name"], max_block_size=120
        ),
        comparator=comparator,
        decision_model=WeightedAverageModel(
            {"name": 4.0, "brand": 1.0, "size": 2.0, "price": 1.0}
        ),
        threshold=0.0,  # keep everything; the diagram sweeps thresholds
        name="x4-scored",
    )
    return pipeline.scored_experiment(x4_benchmark.dataset)


def test_figure3_pr_curve(benchmark, x4_benchmark):
    experiment = build_scored_experiment(x4_benchmark)
    points = benchmark.pedantic(
        compute_diagram_optimized,
        args=(x4_benchmark.dataset, experiment, x4_benchmark.gold),
        kwargs={"samples": 150},
        rounds=1,
        iterations=1,
    )
    series = metric_metric_series(points, recall, precision)
    rows = [
        [f"{point.threshold:.3f}" if point.threshold != float("inf") else "inf",
         f"{r:.3f}", f"{p:.3f}",
         f"{f1_score(point.matrix):.3f}"]
        for point, (r, p) in zip(points, series)
    ]
    # the top of the score range carries the precision/recall trade-off;
    # print it densely and the long low-score tail sparsely
    print_table(
        "Figure 3: Precision-Recall curve (X4-like product offers)",
        ["threshold", "recall", "precision", "f1"],
        rows[:14] + rows[14::16],
    )
    recalls = [r for r, _ in series]
    precisions = [p for _, p in series]
    # recall grows monotonically as the threshold drops
    assert all(b >= a - 1e-12 for a, b in zip(recalls, recalls[1:]))
    # the sweep reaches meaningful recall
    assert recalls[-1] > 0.5
    # early (high-threshold) precision beats the all-in precision
    mid = len(precisions) // 3
    assert max(precisions[1 : mid + 1]) >= precisions[-1]
    # the curve spans a real trade-off
    best_f1 = max(f1_score(p.matrix) for p in points)
    assert best_f1 > 0.5
    emit_trajectory(
        "figure3_pr_curve",
        counters={
            "points": len(points),
            "best_f1": round(best_f1, 4),
            "final_recall": round(recalls[-1], 4),
        },
        context={"records": len(x4_benchmark.dataset), "samples": 150},
    )
