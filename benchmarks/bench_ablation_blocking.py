"""Ablation — candidate generation strategies (pipeline step 2).

Pair-based metrics apply to intermediate pipeline stages (§3.2.1):
for blocking, pairs completeness (recall over true duplicates) and the
reduction ratio [37] characterize the trade-off.  We compare the
implemented blockers on the person benchmark.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core import ConfusionMatrix
from repro.matching.blocking import (
    first_token_key,
    sorted_neighborhood,
    soundex_key,
    standard_blocking,
    token_blocking,
)
from repro.metrics.pairwise import pairs_completeness, reduction_ratio


def test_blocking_comparison(benchmark, person_benchmark):
    dataset = person_benchmark.dataset
    strategies = {
        "standard(last_name)": lambda: standard_blocking(
            dataset, first_token_key("last_name")
        ),
        "standard(soundex last)": lambda: standard_blocking(
            dataset, soundex_key("last_name")
        ),
        "sorted-neighborhood(w=10)": lambda: sorted_neighborhood(
            dataset, first_token_key("last_name"), window=10
        ),
        "token-blocking": lambda: token_blocking(
            dataset, attributes=["last_name", "city"], max_block_size=150
        ),
    }

    def run_all():
        return {name: strategy() for name, strategy in strategies.items()}

    candidate_sets = benchmark.pedantic(run_all, rounds=1, iterations=1)

    total = dataset.total_pairs()
    gold_pairs = person_benchmark.gold.pairs()
    rows = []
    stats = {}
    for name, candidates in candidate_sets.items():
        matrix = ConfusionMatrix.from_pair_sets(candidates, gold_pairs, total)
        stats[name] = {
            "pc": pairs_completeness(matrix),
            "rr": reduction_ratio(matrix),
            "candidates": len(candidates),
        }
        rows.append(
            [
                name,
                len(candidates),
                f"{stats[name]['pc']:.3f}",
                f"{stats[name]['rr']:.3f}",
            ]
        )
    print_table(
        "Ablation: blocking strategies (pairs completeness vs reduction ratio)",
        ["strategy", "candidates", "pairs completeness", "reduction ratio"],
        rows,
    )
    emit_trajectory(
        "ablation_blocking",
        counters={
            name: values["candidates"] for name, values in stats.items()
        },
        context={"records": len(dataset)},
    )
    for name, values in stats.items():
        # every blocker must prune the quadratic space substantially
        assert values["rr"] > 0.5, name
        # while keeping a useful share of the true duplicates
        assert values["pc"] > 0.3, name
    # soundex bridges typos in the key: at least as complete as exact keys
    assert (
        stats["standard(soundex last)"]["pc"]
        >= stats["standard(last_name)"]["pc"]
    )
