"""Persisted performance trajectory for the benchmark harness.

Every ``bench_*.py`` ends its report by calling :func:`emit_trajectory`
with the numbers it just measured.  The helper writes them — together
with ambient measurements like peak RSS — to ``BENCH_<area>.json`` at
the repository root, so the performance of each subsystem is *versioned
next to the code that produced it* and drifts show up in review diffs
instead of being folklore.

Before overwriting, the previous file (the trajectory's last point) is
compared against the fresh numbers: any throughput drop or duration
increase beyond :data:`REGRESSION_TOLERANCE` is reported.  Comparison
is **report-only** by default — benchmark machines differ — and becomes
enforcing with ``REPRO_TRAJECTORY_ENFORCE=1``.  Runs whose *context*
(smoke vs. full scale, dataset sizes) differs from the stored point are
never compared: a smoke run regressing against a full run is noise.

``python -m benchmarks.trajectory`` compares the working tree's
``BENCH_*.json`` against the committed versions (``git show HEAD:...``)
and prints one consolidated report — the CI trajectory step.

Environment knobs:

``REPRO_TRAJECTORY_DIR``
    Directory holding the JSON files (default: the repository root).
``REPRO_TRAJECTORY_ENFORCE``
    ``1`` turns >tolerance regressions into failures.
``REPRO_TELEMETRY_STORE``
    When set, every emitted point is also ingested into this telemetry
    warehouse database (see :mod:`repro.telemetry.store`), giving the
    trajectory a queryable history beyond the latest committed point.
"""

from __future__ import annotations

import json
import math
import os
import resource
import subprocess
import sys
import time
from pathlib import Path

__all__ = [
    "REGRESSION_TOLERANCE",
    "emit_trajectory",
    "compare_trajectories",
    "peak_rss_mb",
    "percentile",
]

REGRESSION_TOLERANCE = 0.20
_REPO_ROOT = Path(__file__).resolve().parents[1]
_SCHEMA_VERSION = 1


def _trajectory_dir() -> Path:
    override = os.environ.get("REPRO_TRAJECTORY_DIR")
    return Path(override) if override else _REPO_ROOT


def _enforcing() -> bool:
    return os.environ.get("REPRO_TRAJECTORY_ENFORCE", "0") == "1"


def peak_rss_mb() -> float:
    """This process's peak resident set size in MiB.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS — normalized here
    so trajectory files are comparable across both.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return peak / (1024 * 1024)
    return peak / 1024


def percentile(values, fraction: float) -> float:
    """The ``fraction``-quantile of ``values`` (linear interpolation)."""
    ordered = sorted(float(value) for value in values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


def _context_mismatch(previous: object, current: object) -> str:
    """Name exactly which context fields differ between two points.

    The comparability gate rejects cross-context comparisons; this spells
    out *why* ("smoke: True -> False", "records: absent -> 5000") so a
    skipped baseline is a diagnosis, not a mystery.
    """
    if not isinstance(previous, dict) or not isinstance(current, dict):
        return f"{previous!r} -> {current!r}"
    differences = []
    for key in sorted(set(previous) | set(current)):
        if key not in previous:
            differences.append(f"{key}: absent -> {current[key]!r}")
        elif key not in current:
            differences.append(f"{key}: {previous[key]!r} -> absent")
        elif previous[key] != current[key]:
            differences.append(f"{key}: {previous[key]!r} -> {current[key]!r}")
    return ", ".join(differences) or "contexts differ"


def compare_trajectories(
    previous: dict, current: dict, tolerance: float = REGRESSION_TOLERANCE
) -> list[str]:
    """Human-readable regression findings between two trajectory points.

    Throughput entries regress by dropping, duration entries
    (``seconds`` and ``latency``) by growing; ``counters`` and
    ``peak_rss_mb`` are informational and never flagged.  A context
    mismatch yields a single "not comparable" note instead of findings.
    """
    if previous.get("context") != current.get("context"):
        return [
            f"{current.get('area', '?')}: context changed "
            f"({_context_mismatch(previous.get('context'), current.get('context'))}); "
            "not comparable"
        ]
    findings: list[str] = []
    area = current.get("area", "?")
    for name, old in (previous.get("throughput") or {}).items():
        new = (current.get("throughput") or {}).get(name)
        if new is None or old <= 0:
            continue
        if new < old * (1 - tolerance):
            findings.append(
                f"{area}: throughput {name} fell "
                f"{(1 - new / old) * 100:.1f}% ({old:.2f} -> {new:.2f})"
            )
    for section in ("seconds", "latency"):
        for name, old in (previous.get(section) or {}).items():
            new = (current.get(section) or {}).get(name)
            if new is None or old <= 0:
                continue
            if new > old * (1 + tolerance):
                findings.append(
                    f"{area}: {section} {name} grew "
                    f"{(new / old - 1) * 100:.1f}% ({old:.4f} -> {new:.4f})"
                )
    return findings


def emit_trajectory(
    area: str,
    *,
    throughput: dict[str, float] | None = None,
    seconds: dict[str, float] | None = None,
    latencies=None,
    counters: dict[str, object] | None = None,
    context: dict[str, object] | None = None,
) -> Path:
    """Persist one benchmark's numbers as ``BENCH_<area>.json``.

    Parameters
    ----------
    area:
        Short lowercase identifier; becomes the file name suffix.
    throughput:
        Named higher-is-better rates (records/s, requests/s, ...).
    seconds:
        Named lower-is-better wall times.
    latencies:
        Raw per-operation durations in seconds; folded into
        ``latency.p50_ms`` / ``latency.p95_ms``.
    counters:
        Informational counts (pairs compared, cache hits, ...).
    context:
        What shaped the numbers (smoke mode, dataset sizes).  Points
        with different contexts are never compared to each other.

    Compares against the previous point (if any) before overwriting it,
    printing findings; with ``REPRO_TRAJECTORY_ENFORCE=1`` regressions
    raise ``AssertionError`` instead.  Returns the written path.
    """
    document: dict[str, object] = {
        "schema": _SCHEMA_VERSION,
        "area": area,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "context": context or {},
        "peak_rss_mb": round(peak_rss_mb(), 2),
    }
    if throughput:
        document["throughput"] = {
            name: round(float(value), 4) for name, value in throughput.items()
        }
    if seconds:
        document["seconds"] = {
            name: round(float(value), 6) for name, value in seconds.items()
        }
    if latencies is not None:
        values = list(latencies)
        if values:
            document["latency"] = {
                "p50_ms": round(percentile(values, 0.50) * 1000, 4),
                "p95_ms": round(percentile(values, 0.95) * 1000, 4),
            }
    if counters:
        document["counters"] = dict(counters)

    directory = _trajectory_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{area}.json"
    findings: list[str] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            previous = None
        if isinstance(previous, dict):
            findings = compare_trajectories(previous, document)
    for finding in findings:
        print(f"trajectory: {finding}")
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    _ingest_into_warehouse(document)
    regressions = [f for f in findings if "not comparable" not in f]
    if regressions and _enforcing():
        raise AssertionError(
            "performance trajectory regressions:\n  " + "\n  ".join(regressions)
        )
    return path


def _ingest_into_warehouse(document: dict) -> None:
    """Mirror one trajectory point into the telemetry warehouse, if asked.

    Best-effort: the benchmark's own numbers land in ``BENCH_*.json``
    regardless; a missing package or unwritable store only prints.
    """
    target = os.environ.get("REPRO_TELEMETRY_STORE")
    if not target:
        return
    try:
        from repro.telemetry.store import TelemetryStore

        with TelemetryStore(target) as warehouse:
            warehouse.ingest_trajectory(document)
    except Exception as error:  # noqa: BLE001 - telemetry must not fail a bench
        print(f"trajectory: warehouse ingest into {target!r} failed: {error}")


def _committed_version(path: Path) -> dict | None:
    """The HEAD-committed content of ``path``, or ``None``."""
    try:
        completed = subprocess.run(
            ["git", "show", f"HEAD:{path.name}"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover
        return None
    if completed.returncode != 0:
        return None
    try:
        document = json.loads(completed.stdout)
    except json.JSONDecodeError:
        return None
    return document if isinstance(document, dict) else None


def main(argv=None) -> int:
    """Compare working-tree ``BENCH_*.json`` against HEAD (report-only).

    Exit code is 0 unless ``REPRO_TRAJECTORY_ENFORCE=1`` and a
    regression was found.
    """
    directory = _trajectory_dir()
    paths = sorted(directory.glob("BENCH_*.json"))
    if not paths:
        print("trajectory: no BENCH_*.json files to compare")
        return 0
    all_findings: list[str] = []
    for path in paths:
        try:
            current = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            print(f"trajectory: {path.name} is unreadable; skipped")
            continue
        previous = _committed_version(path)
        if previous is None:
            print(f"trajectory: {path.name} is new (no committed baseline)")
            continue
        findings = compare_trajectories(previous, current)
        if findings:
            all_findings.extend(findings)
            for finding in findings:
                print(f"trajectory: {finding}")
        else:
            print(f"trajectory: {path.name} within tolerance")
    regressions = [f for f in all_findings if "not comparable" not in f]
    if regressions:
        print(f"trajectory: {len(regressions)} regression(s) found")
        if _enforcing():
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
