"""Shared fixtures and helpers for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md §4).  Dataset sizes default to laptop-friendly scales;
set ``REPRO_BENCH_FULL=1`` to run the paper-size configurations
(including the 100k-record Songs dataset of Table 1).

Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables on stdout.)
"""

from __future__ import annotations

import os

import pytest

from repro.datagen import (
    make_cora_like_benchmark,
    make_freedb_like_benchmark,
    make_person_benchmark,
    make_songs_like_benchmark,
    make_x4_like_benchmark,
)


def full_scale() -> bool:
    """Whether to run paper-size datasets (REPRO_BENCH_FULL=1)."""
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def x4_benchmark():
    """Altosight-X4-like: 835 records, ~4k matched pairs (Table 1 row 1)."""
    return make_x4_like_benchmark()


@pytest.fixture(scope="session")
def cora_benchmark():
    """HPI-Cora-like: 1 879 records (Table 1 row 2)."""
    return make_cora_like_benchmark()


@pytest.fixture(scope="session")
def freedb_benchmark():
    """FreeDB-CDs-like: 9 763 records, 147 matches (Table 1 row 3)."""
    return make_freedb_like_benchmark()


@pytest.fixture(scope="session")
def songs_benchmark():
    """Songs-100k-like (Table 1 row 4); 20k records unless full scale."""
    count = 100_000 if full_scale() else 20_000
    return make_songs_like_benchmark(count)


@pytest.fixture(scope="session")
def person_benchmark():
    """Small customer benchmark used by the figure studies."""
    return make_person_benchmark(600, seed=100)


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Render one regenerated paper table on stdout."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    print("  ".join("-" * w for w in widths))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
