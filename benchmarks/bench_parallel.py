"""Sharded parallel comparison vs. the serial loop (the tentpole claim).

The pairwise comparison stage is pure-Python CPU work, so the engine's
thread pool cannot scale it — but partitioning the candidate pairs into
deterministic shards and scoring them on a **process** pool can.  The
claims under test:

1. with 4 workers the comparison stage of a dataset large enough to
   amortize fork/pickle cost is at least **2× faster** than the serial
   loop (asserted only where the hardware has the cores to show it);
2. the merged parallel output is **byte-identical** to the serial path
   — always asserted, on every machine, in every mode.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel.py -s

Set ``REPRO_BENCH_SMOKE=1`` (CI) for a small, fast configuration that
checks equivalence only.
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.datagen import make_person_benchmark
from repro.streaming import build_pipeline_and_index

# Monge-Elkan on the two messiest attributes makes per-pair cost
# realistic (token-level inner Jaro-Winkler), so compute — not pickle
# traffic — dominates each shard.
CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "monge_elkan",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "city": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.82,
}
WORKERS = 4
SHARDS = 16
MIN_SPEEDUP = 2.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def test_parallel_comparison_speedup_and_identity():
    record_count = 500 if _smoke() else 2500
    benchmark = make_person_benchmark(record_count, seed=42)
    pipeline, _ = build_pipeline_and_index(CONFIG)
    prepared = pipeline.prepare(benchmark.dataset)
    candidates = pipeline.generate_candidates(prepared)
    parallel_pipeline = pipeline.with_parallelism(
        workers=WORKERS, shards=SHARDS, min_pairs=0
    )

    # One throwaway parallel call boots the interpreter-wide fork
    # server — a per-process one-time cost that a steady-state
    # deployment never pays per batch, so it stays outside the timed
    # window (the per-call pool creation itself stays inside).
    parallel_pipeline.compare_candidates(prepared, sorted(candidates)[:64])

    # Parallel first: pool workers always start with cold memoization
    # caches (forkserver/spawn children inherit nothing), and the serial
    # run afterwards starts cold too — shard scoring happened in the
    # children, so the parent's caches are still untouched.
    started = time.perf_counter()
    parallel_vectors = parallel_pipeline.compare_candidates(
        prepared, candidates
    )
    parallel_seconds = time.perf_counter() - started

    started = time.perf_counter()
    serial_vectors = pipeline.compare_candidates(prepared, candidates)
    serial_seconds = time.perf_counter() - started

    assert parallel_vectors == serial_vectors, (
        "parallel comparison must be byte-identical to the serial loop"
    )

    speedup = serial_seconds / max(parallel_seconds, 1e-9)
    print_table(
        f"Sharded parallel comparison ({WORKERS} workers, {SHARDS} shards)",
        ["Path", "Pairs", "Seconds"],
        [
            ["serial", len(candidates), f"{serial_seconds:.3f}"],
            ["parallel", len(candidates), f"{parallel_seconds:.3f}"],
            ["speedup", "", f"{speedup:.2f}x"],
        ],
    )
    emit_trajectory(
        "parallel",
        seconds={"serial": serial_seconds, "parallel": parallel_seconds},
        throughput={
            "pairs_per_second": len(candidates) / max(parallel_seconds, 1e-9)
        },
        counters={"pairs": len(candidates), "speedup": round(speedup, 2)},
        context={
            "smoke": _smoke(),
            "records": record_count,
            "workers": WORKERS,
            "shards": SHARDS,
        },
    )

    if _smoke():
        return  # CI smoke: identity is the claim; timing is noise there
    cores = os.cpu_count() or 1
    if cores < WORKERS:
        pytest.skip(
            f"speedup assertion needs >= {WORKERS} cores, machine has {cores}"
        )
    assert speedup >= MIN_SPEEDUP, (
        f"parallel comparison only {speedup:.2f}x faster "
        f"(serial {serial_seconds:.3f}s, parallel {parallel_seconds:.3f}s)"
    )


def test_small_batches_stay_serial():
    """Below ``min_pairs`` the pipeline must not pay fork cost: the
    default config keeps tiny candidate sets on the serial path."""
    benchmark = make_person_benchmark(120, seed=9)
    pipeline, _ = build_pipeline_and_index(
        {**CONFIG, "parallelism": {"workers": WORKERS}}
    )
    prepared = pipeline.prepare(benchmark.dataset)
    candidates = pipeline.generate_candidates(prepared)
    assert len(candidates) < pipeline.parallelism.min_pairs

    started = time.perf_counter()
    vectors = pipeline.compare_candidates(prepared, candidates)
    seconds = time.perf_counter() - started
    assert len(vectors) == len(candidates)
    # generous bound: a forked 4-process pool alone costs more than this
    # on most machines; the serial fast path stays well under it
    assert seconds < 1.0, (
        f"small-batch comparison took {seconds:.3f}s — the min_pairs "
        "fast path is not engaging"
    )
