"""Table 1 — Runtime of metric/metric diagrams.

"The table shows a comparison of the runtime of Snowman's optimized
algorithm for pair-based metric/metric diagrams against a naïve
approach.  For each diagram, 100 different similarity thresholds were
calculated."

Paper rows (dataset, records, matched pairs, custom, naïve, speedup):

    Altosight X4       835       4 005    184ms    1.7s      ~9
    HPI Cora         1 879       5 067    245ms    7.4s     ~30
    FreeDB CDs       9 763         147    293ms   16.4s     ~56
    Songs 100k     100 000      45 801     1.6s   43.9s     ~28
    Magellan Songs 1 000 000   144 349     6.1s    6m43s    ~66

We regenerate every row with synthetic datasets of the same record and
match counts (see DESIGN.md §3) and measure both algorithms.  Absolute
times differ (Python vs NodeJS); the claim under test is the *shape*:
the optimized algorithm wins on every dataset and the gap grows with
dataset size.  The Songs rows run at reduced scale unless
``REPRO_BENCH_FULL=1``.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import full_scale, print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.diagrams import (
    compute_diagram_naive_clustering,
    compute_diagram_optimized,
)
from repro.datagen import scored_benchmark_experiment

SAMPLES = 100  # "100 different similarity thresholds"

# dataset fixture name -> target matched pairs (paper's Table 1 values)
ROWS = [
    ("Altosight X4", "x4_benchmark", 4_005),
    ("HPI Cora", "cora_benchmark", 5_067),
    ("FreeDB CDs", "freedb_benchmark", 147),
    ("Songs 100k", "songs_benchmark", 45_801),
]


def _experiment_for(request, fixture_name: str, matches: int):
    benchmark_data = request.getfixturevalue(fixture_name)
    if fixture_name == "songs_benchmark" and not full_scale():
        matches = matches // 5  # 20k-record scale keeps the ratio
    experiment = scored_benchmark_experiment(
        benchmark_data, target_matches=matches, seed=17,
        name=f"{fixture_name}-run",
    )
    return benchmark_data, experiment


@pytest.mark.parametrize("label,fixture_name,matches", ROWS)
def test_optimized_algorithm(benchmark, request, label, fixture_name, matches):
    """Time Snowman's optimized algorithm (the 'Custom' column)."""
    data, experiment = _experiment_for(request, fixture_name, matches)
    points = benchmark.pedantic(
        compute_diagram_optimized,
        args=(data.dataset, experiment, data.gold),
        kwargs={"samples": SAMPLES},
        rounds=3,
        iterations=1,
    )
    assert len(points) == SAMPLES


@pytest.mark.parametrize("label,fixture_name,matches", ROWS)
def test_naive_algorithm(benchmark, request, label, fixture_name, matches):
    """Time the naïve per-threshold reclustering (the 'Naïve' column)."""
    data, experiment = _experiment_for(request, fixture_name, matches)
    points = benchmark.pedantic(
        compute_diagram_naive_clustering,
        args=(data.dataset, experiment, data.gold),
        kwargs={"samples": SAMPLES},
        rounds=1,
        iterations=1,
    )
    assert len(points) == SAMPLES


def test_table1_report(benchmark, request):
    """Regenerate the full Table 1 and check the headline claims:

    1. the optimized algorithm beats the naïve one on every dataset;
    2. both produce identical confusion matrices;
    3. the speedup grows between the smallest and the larger datasets.
    """
    rows = []
    speedups = {}
    optimized_by_label = {}
    for label, fixture_name, matches in ROWS:
        data, experiment = _experiment_for(request, fixture_name, matches)
        started = time.perf_counter()
        optimized = compute_diagram_optimized(
            data.dataset, experiment, data.gold, samples=SAMPLES
        )
        optimized_seconds = time.perf_counter() - started
        started = time.perf_counter()
        naive = compute_diagram_naive_clustering(
            data.dataset, experiment, data.gold, samples=SAMPLES
        )
        naive_seconds = time.perf_counter() - started
        assert [p.matrix for p in optimized] == [p.matrix for p in naive]
        speedup = naive_seconds / max(optimized_seconds, 1e-9)
        speedups[label] = speedup
        optimized_by_label[label] = optimized_seconds
        rows.append(
            [
                label,
                len(data.dataset),
                len(experiment),
                f"{optimized_seconds * 1000:.0f}ms",
                f"{naive_seconds:.2f}s",
                f"{speedup:.1f}x",
            ]
        )
    print_table(
        "Table 1: Runtime of Metric/Metric Diagrams (100 thresholds)",
        ["Dataset", "Records", "Matched pairs", "Custom", "Naive", "Speedup"],
        rows,
    )
    emit_trajectory(
        "table1_diagrams",
        seconds=optimized_by_label,
        counters={
            label: round(value, 1) for label, value in speedups.items()
        },
        context={"samples": SAMPLES, "full_scale": full_scale()},
    )
    # claim 1: optimized always wins
    assert all(value > 1.0 for value in speedups.values()), speedups
    # claim 3: larger datasets see larger gains than the smallest one
    assert speedups["Songs 100k"] > speedups["Altosight X4"]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
