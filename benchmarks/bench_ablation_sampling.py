"""Ablation — representative-sampling strategies (§4.2.3).

The paper offers three sampling schemes for percentile partitions:
random (unbiased, may be uninteresting), class-based (weights by the
solution's error profile), and quantile (unbiased coverage of the
score range).  We measure how well each scheme's representatives
reflect the partition's true error rate — the property a data steward
relies on when skimming representatives.
"""

from __future__ import annotations

import random

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.pairs import ScoredPair, make_pair
from repro.datagen.synthesize import synthesize_experiment
from repro.exploration.selection import percentile_partitions


def build_scored_pairs(person_benchmark, seed=9):
    """Scored pairs with score-correlated correctness."""
    experiment = synthesize_experiment(
        person_benchmark.dataset, person_benchmark.gold,
        precision=0.75, recall=0.9, seed=seed,
    )
    rng = random.Random(seed)
    pairs = list(experiment.scored_pairs())
    # add clear non-matches at low scores so partitions span the range
    ids = person_benchmark.dataset.record_ids
    seen = {sp.pair for sp in pairs}
    for _ in range(len(pairs)):
        a, b = rng.sample(ids, 2)
        pair = make_pair(a, b)
        if pair in seen:
            continue
        seen.add(pair)
        pairs.append(ScoredPair(score=max(0.0, rng.gauss(0.3, 0.1)), pair=pair))
    return pairs


def test_sampling_strategy_fidelity(benchmark, person_benchmark):
    pairs = build_scored_pairs(person_benchmark)
    gold = person_benchmark.gold
    threshold = 0.5

    def correct(sp):
        return (sp.score >= threshold) == gold.is_duplicate(*sp.pair)

    def run_all():
        return {
            sampler: percentile_partitions(
                pairs,
                partitions=6,
                budget_per_partition=12,
                gold=gold,
                threshold=threshold,
                sampler=sampler,
                seed=3,
            )
            for sampler in ("random", "class", "quantile")
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    fidelity = {}
    for sampler, partitions in results.items():
        errors = []
        for partition in partitions:
            if not partition.pairs or not partition.representatives:
                continue
            true_rate = sum(
                0 if correct(sp) else 1 for sp in partition.pairs
            ) / len(partition.pairs)
            sample_rate = sum(
                0 if correct(sp) else 1 for sp in partition.representatives
            ) / len(partition.representatives)
            errors.append(abs(true_rate - sample_rate))
        fidelity[sampler] = sum(errors) / len(errors)
        rows.append([sampler, f"{fidelity[sampler]:.3f}"])
    print_table(
        "Ablation: sampling strategies — mean |true error rate - "
        "representative error rate| per partition (lower is better)",
        ["sampler", "mean deviation"],
        rows,
    )
    emit_trajectory(
        "ablation_sampling",
        counters={
            sampler: round(value, 4) for sampler, value in fidelity.items()
        },
        context={"records": len(person_benchmark.dataset), "pairs": len(pairs)},
    )
    # class-based sampling mirrors the error profile most faithfully
    assert fidelity["class"] <= min(fidelity["random"], fidelity["quantile"]) + 0.02
    # all strategies stay within a usable band
    assert all(value < 0.35 for value in fidelity.values())
