"""Match-graph build, traversal, and evidence-path latency.

Claims under test:

1. incrementally updating the graph for an appended 10% batch is much
   cheaper than rebuilding the whole graph from the pipeline run
   (>=3x) — the point of per-batch graph maintenance;
2. the incremental graph is row-identical (nodes, edges, component
   memberships) to the from-scratch rebuild;
3. k-hop neighborhoods and evidence-path queries answer in
   milliseconds on a datagen corpus.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_graph.py -s

Set ``REPRO_BENCH_SMOKE=1`` (CI) for a small, fast configuration.
"""

from __future__ import annotations

import gc
import os
import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.records import Dataset
from repro.datagen import make_person_benchmark
from repro.graph import build_graph_from_run
from repro.storage.database import FrostStore
from repro.streaming import build_pipeline_and_index, build_session

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "city": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.82,
    "graph": True,
}
MIN_INCREMENTAL_SPEEDUP = 3.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _graph_rows(store: FrostStore, name: str) -> tuple:
    document = store.load_graph(name)
    return (document["nodes"], document["edges"], document["components"])


def test_graph_build_traversal_and_evidence_latency():
    base_count = 400 if _smoke() else 1500
    total = base_count + base_count // 10
    benchmark = make_person_benchmark(total, seed=42)
    records = list(benchmark.dataset)
    base, appended = records[:base_count], records[base_count:]

    # incremental: a graph-enabled stream has already absorbed the
    # base; time only the appended batch (scoring + graph delta)
    store = FrostStore(":memory:")
    session = build_session(CONFIG, store=store, name="inc")
    session.ingest(base)
    gc.collect()
    started = time.perf_counter()
    session.ingest(appended)
    incremental_seconds = time.perf_counter() - started

    # rebuild: one full pipeline run over the union, then a
    # from-scratch graph build from that run — what a batch deployment
    # pays to refresh the graph after the same appended batch
    pipeline, _ = build_pipeline_and_index(CONFIG)
    gc.collect()
    started = time.perf_counter()
    run = pipeline.run(Dataset(records, name="union"))
    graph = build_graph_from_run(store, "rebuilt", run)
    rebuild_seconds = time.perf_counter() - started

    # acceptance invariant: identical stored rows, batch-split or not
    assert _graph_rows(store, "inc") == _graph_rows(store, "rebuilt"), (
        "incremental graph must be row-identical to the rebuild"
    )
    speedup = rebuild_seconds / max(incremental_seconds, 1e-9)

    # traversal latency over every record / intra-cluster pair
    neighbor_latencies: list[float] = []
    for record in run.dataset:
        started = time.perf_counter()
        graph.neighbors(record.record_id, k=2)
        neighbor_latencies.append(time.perf_counter() - started)

    evidence_latencies: list[float] = []
    pairs = sorted(graph.cluster_pairs())
    if not _smoke():
        pairs = pairs[:2000]
    for first, second in pairs:
        started = time.perf_counter()
        result = graph.evidence_path(first, second)
        evidence_latencies.append(time.perf_counter() - started)
        assert result["found"]

    summary = graph.summary()
    neighbor_p95 = sorted(neighbor_latencies)[
        int(0.95 * (len(neighbor_latencies) - 1))
    ]
    evidence_p95 = sorted(evidence_latencies)[
        int(0.95 * (len(evidence_latencies) - 1))
    ]
    print_table(
        "Match graph: incremental update vs. rebuild + query latency",
        ["Measure", "Value"],
        [
            ["nodes / edges", f"{summary['node_count']} / {summary['edge_count']}"],
            ["incremental 10% batch", f"{incremental_seconds:.3f}s"],
            ["full rebuild", f"{rebuild_seconds:.3f}s"],
            ["speedup", f"{speedup:.1f}x"],
            ["2-hop neighbors p95", f"{neighbor_p95 * 1000:.2f}ms"],
            ["evidence path p95", f"{evidence_p95 * 1000:.2f}ms"],
        ],
    )
    emit_trajectory(
        "graph",
        throughput={
            "neighbors_per_second": len(neighbor_latencies)
            / max(sum(neighbor_latencies), 1e-9),
            "evidence_paths_per_second": len(evidence_latencies)
            / max(sum(evidence_latencies), 1e-9),
        },
        seconds={
            "incremental_batch": incremental_seconds,
            "full_rebuild": rebuild_seconds,
        },
        latencies=evidence_latencies,
        counters={
            "nodes": summary["node_count"],
            "edges": summary["edge_count"],
            "clusters": summary["cluster_count"],
            "speedup": round(speedup, 1),
        },
        context={"smoke": _smoke(), "base_records": base_count},
    )

    assert speedup >= MIN_INCREMENTAL_SPEEDUP, (
        f"incremental graph update only {speedup:.1f}x faster than a "
        f"rebuild (incremental {incremental_seconds:.3f}s, "
        f"rebuild {rebuild_seconds:.3f}s)"
    )
