"""Table 3 — Cross-dataset quality of contest matching solutions.

"Matching solutions generally perform better on the datasets on which
they have been developed than on new data [...] Additionally, one can
observe a gap between the average quality metrics of the test- and
training dataset of D3 [Δf1 = 11.3%, versus Δf1 = 1.7% for D2]."

We train *three* learned matchers per home dataset (logistic
regression with and without missing-value indicators, Gaussian naive
Bayes — the paper also averages three solutions) on the synthetic X2
and X3 labeled pair sets, tune each matcher's similarity threshold on
its home training data, and evaluate everywhere with that fixed
configuration — the deployment scenario of Appendix C.  Shape claims
checked:

1. home-field advantage on the *test* splits: the D2-developed
   solutions beat the D3-developed ones on Z2, and vice versa on Z3;
2. both solution families lose quality on the foreign dataset;
3. the D3 train/test gap exceeds the D2 train/test gap (the Δf1
   observation the paper attributes to vocabulary similarity).

Known substitution gap (recorded in EXPERIMENTS.md): the paper's
*direction* of transfer — sparse-trained solutions transferring to D2
better (80.5%) than dense-trained ones to D3 (41.4%) — does not emerge
with generic learned matchers on the synthetic substitute; we measure
the opposite direction, because our dense D2 negatives score uniformly
higher under models calibrated on sparse data.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import full_scale, print_table
from benchmarks.trajectory import emit_trajectory
from repro.datagen.sigmod import SigmodSplit, make_sigmod_contest
from repro.matching import (
    AttributeComparator,
    LogisticRegressionModel,
    NaiveBayesModel,
)
from repro.matching.similarity import TfIdfCosine

ATTRIBUTES = ["title", "brand", "cpu", "ram", "hdd", "screen", "description"]


@pytest.fixture(scope="module")
def contest():
    scale = 0.25 if full_scale() else 0.03
    return make_sigmod_contest(scale=scale, seed=3)


def make_comparator(corpus: SigmodSplit) -> AttributeComparator:
    """Home-corpus comparator: TF-IDF on the textual attributes."""
    tfidf_title = TfIdfCosine(r.value("title") or "" for r in corpus.dataset)
    tfidf_description = TfIdfCosine(
        r.value("description") or "" for r in corpus.dataset
    )
    return AttributeComparator(
        {
            "title": tfidf_title,
            "brand": "ngram_jaccard",
            "cpu": "token_jaccard",
            "ram": "exact",
            "hdd": "exact",
            "screen": "exact",
            "description": tfidf_description,
        }
    )


def vectors_and_labels(comparator: AttributeComparator, split: SigmodSplit):
    dataset = split.dataset
    vectors = [
        comparator.compare(dataset[a], dataset[b])
        for (a, b), _ in split.labeled.pairs
    ]
    labels = np.array([label for _, label in split.labeled.pairs])
    return vectors, labels


def f1_at(scores: np.ndarray, labels: np.ndarray, threshold: float) -> float:
    predicted = scores >= threshold
    tp = int((predicted & labels).sum())
    fp = int((predicted & ~labels).sum())
    fn = int((~predicted & labels).sum())
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def train_solutions(comparator, split: SigmodSplit):
    """Three matchers with home-tuned thresholds (paper: 3 solutions)."""
    vectors, labels = vectors_and_labels(comparator, split)
    models = [
        LogisticRegressionModel(ATTRIBUTES, iterations=400, seed=1),
        LogisticRegressionModel(
            ATTRIBUTES, iterations=400, missing_indicators=False, seed=2
        ),
        NaiveBayesModel(ATTRIBUTES),
    ]
    tuned = []
    for model in models:
        model.fit(vectors, labels)
        scores = np.asarray(model.score_many(vectors))
        threshold = max(
            np.unique(np.round(scores, 3)),
            key=lambda t: f1_at(scores, labels, t),
        )
        tuned.append((model, float(threshold)))
    return tuned


def test_table3_cross_dataset(benchmark, contest):
    def run_study():
        results = {}
        for home in ("x2", "x3"):
            comparator = make_comparator(contest.split(home))
            solutions = train_solutions(comparator, contest.split(home))
            results[home] = {}
            for name in ("x2", "z2", "x3", "z3"):
                vectors, labels = vectors_and_labels(
                    comparator, contest.split(name)
                )
                f1s = [
                    f1_at(np.asarray(model.score_many(vectors)), labels, thr)
                    for model, thr in solutions
                ]
                results[home][name] = sum(f1s) / len(f1s)
        return results

    results = benchmark.pedantic(run_study, rounds=1, iterations=1)

    rows = [
        [
            label,
            *(f"{results[home][split]:.3f}" for split in ("x2", "z2", "x3", "z3")),
        ]
        for home, label in (
            ("x2", "developed on X2 (avg f1 of 3 solutions)"),
            ("x3", "developed on X3 (avg f1 of 3 solutions)"),
        )
    ]
    print_table(
        "Table 3: cross-dataset average f1 (home-tuned thresholds)",
        ["solution family", "X2 train", "Z2 test", "X3 train", "Z3 test"],
        rows,
    )

    f1 = results
    # claim 1: home-field advantage on the test splits
    assert f1["x2"]["z2"] > f1["x3"]["z2"]
    assert f1["x3"]["z3"] > f1["x2"]["z3"]
    # claim 2: both families degrade on the foreign dataset
    home_d2 = (f1["x2"]["x2"] + f1["x2"]["z2"]) / 2
    away_d3 = (f1["x2"]["x3"] + f1["x2"]["z3"]) / 2
    assert away_d3 < home_d2 - 0.1
    home_d3 = (f1["x3"]["x3"] + f1["x3"]["z3"]) / 2
    away_d2 = (f1["x3"]["x2"] + f1["x3"]["z2"]) / 2
    assert away_d2 < home_d3 - 0.1
    # claim 3: the D3 train/test gap exceeds the D2 train/test gap
    gap_d2 = abs(f1["x2"]["x2"] - f1["x2"]["z2"])
    gap_d3 = abs(f1["x3"]["x3"] - f1["x3"]["z3"])
    assert gap_d3 > gap_d2
    emit_trajectory(
        "table3_cross_dataset",
        counters={
            f"{home}_on_{split}_f1": round(f1[home][split], 4)
            for home in ("x2", "x3")
            for split in ("z2", "z3")
        },
        context={"full_scale": full_scale()},
    )
