"""Columnar batch kernels vs. the scalar comparison loop (ISSUE 8).

The columnar store re-lays candidate records out as interned
per-attribute id columns, and the batch kernels score whole pair blocks
at once — set intersections over sorted id arrays, elementwise numeric
lanes, and per-distinct-pair memoized string measures.  The claims
under test:

1. single-core kernelized comparison is at least **5× faster** than the
   scalar per-pair loop on the 2500-record person benchmark (asserted
   in full mode only);
2. the kernel output is **byte-identical** to the scalar loop — always
   asserted, on every machine, in every mode.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernels.py -s

Set ``REPRO_BENCH_SMOKE=1`` (CI) for a small, fast configuration that
checks identity only.
"""

from __future__ import annotations

import os
import struct
import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.datagen import make_person_benchmark
from repro.streaming import build_pipeline_and_index

# The person benchmark's attributes under a measure mix that exercises
# every kernel family: memoized string measures (monge_elkan on both
# name fields, as in bench_parallel), set overlap (token_jaccard,
# ngram_jaccard), and the elementwise numeric lane.
CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "monge_elkan",
        "last_name": "monge_elkan",
        "street": "token_jaccard",
        "city": "ngram_jaccard",
        "zip": "numeric",
    },
    "threshold": 0.82,
}
MIN_SPEEDUP = 5.0


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _bits(value):
    return None if value is None else struct.pack("<d", value)


def test_kernel_speedup_and_identity():
    record_count = 400 if _smoke() else 2500
    benchmark = make_person_benchmark(record_count, seed=42)
    scalar_pipeline, _ = build_pipeline_and_index(
        {**CONFIG, "columnar": False}
    )
    columnar_pipeline, _ = build_pipeline_and_index(CONFIG)
    prepared = columnar_pipeline.prepare(benchmark.dataset)
    candidates = columnar_pipeline.generate_candidates(prepared)

    # Steady-state methodology (same as bench_parallel): one untimed
    # warmup pass per path primes process-wide state — the scalar
    # loop's tokenizer/ngram lru caches, the kernels' distinct-pair
    # memos, numpy's allocator — then a single timed pass measures
    # each path doing the same fully-warm work.
    columnar_pipeline.compare_candidates(prepared, candidates)
    started = time.perf_counter()
    columnar_vectors = columnar_pipeline.compare_candidates(
        prepared, candidates
    )
    columnar_seconds = time.perf_counter() - started

    scalar_pipeline.compare_candidates(prepared, candidates)
    started = time.perf_counter()
    scalar_vectors = scalar_pipeline.compare_candidates(prepared, candidates)
    scalar_seconds = time.perf_counter() - started

    assert len(columnar_vectors) == len(scalar_vectors)
    for fast, slow in zip(columnar_vectors, scalar_vectors):
        assert fast.pair == slow.pair
        assert list(fast.values) == list(slow.values)
        for attribute in slow.values:
            assert _bits(fast.values[attribute]) == _bits(
                slow.values[attribute]
            ), (
                "kernel comparison must be byte-identical to the scalar "
                f"loop: {attribute} differs on {fast.pair}"
            )

    speedup = scalar_seconds / max(columnar_seconds, 1e-9)
    print_table(
        "Columnar batch kernels vs scalar loop (single core)",
        ["Path", "Pairs", "Seconds"],
        [
            ["scalar", len(candidates), f"{scalar_seconds:.3f}"],
            ["columnar", len(candidates), f"{columnar_seconds:.3f}"],
            ["speedup", "", f"{speedup:.2f}x"],
        ],
    )
    emit_trajectory(
        "kernels",
        seconds={"scalar": scalar_seconds, "columnar": columnar_seconds},
        throughput={
            "pairs_per_second": len(candidates) / max(columnar_seconds, 1e-9)
        },
        counters={"pairs": len(candidates), "speedup": round(speedup, 2)},
        context={"smoke": _smoke(), "records": record_count},
    )

    if _smoke():
        return  # CI smoke: identity is the claim; timing is noise there
    assert speedup >= MIN_SPEEDUP, (
        f"columnar comparison only {speedup:.2f}x faster "
        f"(scalar {scalar_seconds:.3f}s, columnar {columnar_seconds:.3f}s)"
    )


def test_kernel_dedup_scales_with_distinct_pairs():
    """The kernels' work tracks *distinct* value pairs, not raw pairs:
    on blocked person data the distinct-pair count is a fraction of the
    block sizes, which is where the batch win comes from."""
    from repro.telemetry.metrics import get_metrics

    benchmark = make_person_benchmark(400, seed=7)
    pipeline, _ = build_pipeline_and_index(CONFIG)
    prepared = pipeline.prepare(benchmark.dataset)
    candidates = pipeline.generate_candidates(prepared)

    metrics = get_metrics()
    pairs_counter = metrics.counter("frost_kernel_pairs_total")
    distinct_counter = metrics.counter("frost_kernel_distinct_pairs_total")
    pairs_before = pairs_counter.value
    distinct_before = distinct_counter.value
    pipeline.compare_candidates(prepared, candidates)
    pairs_scored = pairs_counter.value - pairs_before
    distinct_scored = distinct_counter.value - distinct_before

    assert pairs_scored == len(candidates)
    attributes = len(CONFIG["similarities"])
    # distinct (attribute, value-pair) scores never exceed the raw
    # per-attribute comparisons, and on generated person data (shared
    # last names, duplicated values) they are strictly fewer
    assert 0 < distinct_scored < pairs_scored * attributes
