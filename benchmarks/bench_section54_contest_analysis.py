"""§5.4 — SIGMOD programming contest analysis with the platform.

The paper's three headline findings on the evaluation dataset Z4:

1. "the top-5 contest teams achieved an f1 score of 90.34% with 87.4%
   as the minimum and 92.7% as the maximum" (N-Metrics viewer);
2. "two matching solutions had not selected the optimal similarity
   threshold [...] selecting a higher similarity threshold would have
   increased their f1 score by 8% and 6%" (metric/metric diagrams);
3. "we identified three true duplicate pairs that were not detected by
   at least four solutions [...] all three pairs include the record
   with ID altosight.com//1420" (N-Intersection viewer).

We synthesize five solutions with the paper's quality spread against
the X4-like product benchmark, give two of them deliberately
suboptimal thresholds, run the same three analyses, and check the
shapes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core import compute_diagram_optimized
from repro.core.platform import FrostPlatform
from repro.datagen.synthesize import synthesize_experiment
from repro.exploration.setops import pairs_missed_by_most
from repro.matching import best_threshold
from repro.metrics.pairwise import f1_score

# the five top teams' approximate quality levels (min 87.4, max 92.7)
TEAM_QUALITY = [0.927, 0.915, 0.905, 0.896, 0.874]


def _hard_records(x4_benchmark) -> set[str]:
    """Records of one 'especially difficult' gold cluster.

    Real solutions share systematic difficulty (the paper's
    ``altosight.com//1420`` record); independent random misses do not
    reproduce that, so the fixture designates one cluster that almost
    every team fails on.
    """
    hard_cluster = min(
        (c for c in x4_benchmark.gold.clustering.clusters if len(c) >= 3),
        key=lambda c: (len(c), c),
    )
    return set(hard_cluster)


@pytest.fixture(scope="module")
def contest_platform(x4_benchmark):
    from repro.core import Experiment

    platform = FrostPlatform()
    platform.add_dataset(x4_benchmark.dataset)
    platform.add_gold(x4_benchmark.dataset.name, x4_benchmark.gold)
    hard = _hard_records(x4_benchmark)
    for index, quality in enumerate(TEAM_QUALITY):
        experiment = synthesize_experiment(
            x4_benchmark.dataset,
            x4_benchmark.gold,
            precision=min(0.99, quality + 0.02),
            recall=quality - 0.01,
            seed=100 + index,
            name=f"team-{index + 1}",
        )
        if index > 0:  # all but the best team miss the hard cluster
            experiment = Experiment(
                [
                    match
                    for match in experiment.matches
                    if not (match.pair[0] in hard and match.pair[1] in hard)
                ],
                name=experiment.name,
                solution=experiment.solution,
            )
        platform.add_experiment(x4_benchmark.dataset.name, experiment)
    return platform


def test_n_metrics_viewer(benchmark, contest_platform, x4_benchmark):
    """Finding 1: the f1 spread of the top five teams."""
    table = benchmark.pedantic(
        contest_platform.metrics_table,
        args=(x4_benchmark.dataset.name, x4_benchmark.gold.name),
        kwargs={"metric_names": ["precision", "recall", "f1"]},
        rounds=1,
        iterations=1,
    )
    rows = [
        [name, f"{row['precision']:.3f}", f"{row['recall']:.3f}", f"{row['f1']:.3f}"]
        for name, row in sorted(table.items())
    ]
    print_table(
        "§5.4 finding 1: N-Metrics view of the top-5 teams "
        "(paper: avg 90.34%, min 87.4%, max 92.7%)",
        ["team", "precision", "recall", "f1"],
        rows,
    )
    f1_values = [row["f1"] for row in table.values()]
    average = sum(f1_values) / len(f1_values)
    assert 0.85 < min(f1_values) < 0.91
    assert 0.89 < max(f1_values) < 0.96
    assert average == pytest.approx(0.9034, abs=0.03)


def test_threshold_suboptimality(benchmark, x4_benchmark):
    """Finding 2: some teams left f1 on the table via their threshold."""

    def analyze():
        findings = []
        # two teams whose decision model scores are informative but whose
        # chosen threshold (0.5) sits below the optimum
        for index, quality in enumerate(TEAM_QUALITY[:2]):
            scored = synthesize_experiment(
                x4_benchmark.dataset,
                x4_benchmark.gold,
                precision=0.75,       # chosen threshold admits many FPs...
                recall=quality,
                seed=200 + index,
                name=f"suboptimal-{index}",
            )
            points = compute_diagram_optimized(
                x4_benchmark.dataset, scored, x4_benchmark.gold, samples=60
            )
            chosen_f1 = f1_score(points[-1].matrix)  # threshold = min score
            optimal_threshold, optimal_f1 = best_threshold(points, f1_score)
            findings.append((chosen_f1, optimal_threshold, optimal_f1))
        return findings

    findings = benchmark.pedantic(analyze, rounds=1, iterations=1)
    rows = [
        [f"team-{i + 1}", f"{chosen:.3f}", f"{threshold:.3f}", f"{optimal:.3f}",
         f"+{100 * (optimal - chosen):.1f}%"]
        for i, (chosen, threshold, optimal) in enumerate(findings)
    ]
    print_table(
        "§5.4 finding 2: threshold suboptimality (paper: +8% and +6% f1)",
        ["team", "f1 at chosen threshold", "optimal threshold", "optimal f1", "gain"],
        rows,
    )
    for chosen, threshold, optimal in findings:
        assert optimal > chosen + 0.03  # a higher threshold helps materially
        assert threshold > 0.0


def test_hard_pairs_missed_by_most(benchmark, contest_platform, x4_benchmark):
    """Finding 3: true pairs missed by at least four of five solutions,
    concentrating on few records."""
    experiments = [
        contest_platform.experiment(x4_benchmark.dataset.name, f"team-{i + 1}")
        for i in range(len(TEAM_QUALITY))
    ]
    missed = benchmark.pedantic(
        pairs_missed_by_most,
        args=(x4_benchmark.gold, experiments),
        kwargs={"minimum_missing": 4},
        rounds=1,
        iterations=1,
    )
    record_counts: dict[str, int] = {}
    for first, second in missed:
        record_counts[first] = record_counts.get(first, 0) + 1
        record_counts[second] = record_counts.get(second, 0) + 1
    top = sorted(record_counts.items(), key=lambda kv: -kv[1])[:5]
    print_table(
        "§5.4 finding 3: hard pairs missed by >=4 of 5 solutions "
        "(paper: 3 pairs, all sharing one record)",
        ["record", "missed pairs involving it"],
        [[record, count] for record, count in top],
    )
    # hard pairs exist but are rare relative to the gold standard
    assert 0 < len(missed) < x4_benchmark.gold.pair_count() * 0.2
    # difficulty concentrates: some record appears in multiple missed pairs
    assert top and top[0][1] >= 2
    emit_trajectory(
        "section54_contest",
        counters={
            "missed_pairs": len(missed),
            "max_misses_per_record": top[0][1],
        },
        context={
            "records": len(x4_benchmark.dataset),
            "teams": len(TEAM_QUALITY),
        },
    )
