"""Blocking-quality sweep: MinHash-LSH vs. exact blocking (the tentpole claim).

Candidate generation is the scalability ceiling of the pipeline: token
blocking degenerates on dirty data and ``full_pairs`` is quadratic.
The claims under test:

1. the **default** LSH config (``num_perm=128, bands=32, rows=4``)
   keeps pairs completeness **≥ 0.95** while pruning **≥ 90%** of the
   comparison space (reduction ratio ≥ 0.9) against the ``full_pairs``
   ground truth on the datagen person corpus — asserted on every
   machine, in every mode;
2. sweeping ``(num_perm, bands, rows)`` trades the two off along the
   S-curve threshold ``(1/bands)^(1/rows)`` — more bands per signature
   means higher completeness and lower reduction;
3. signature computation is batched per distinct token, so LSH blocking
   runs in time comparable to token blocking rather than the quadratic
   baseline (timing reported, asserted only outside smoke mode).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_lsh_blocking.py -s

Set ``REPRO_BENCH_SMOKE=1`` (CI) for a small corpus; quality assertions
still run, timing assertions are skipped (small runners time noisily).
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.datagen import make_person_benchmark
from repro.matching.blocking import full_pairs, token_blocking
from repro.matching.lsh import LshConfig, lsh_blocking
from repro.metrics.blocking_quality import evaluate_blocker

MIN_PAIRS_COMPLETENESS = 0.95
MIN_REDUCTION_RATIO = 0.9

SWEEP = [
    LshConfig(num_perm=128, bands=64),   # rows=2: recall-heaviest
    LshConfig(num_perm=96, bands=32),    # rows=3: high recall
    LshConfig(),                         # 128/32/4: the default
    LshConfig(num_perm=128, bands=16),   # rows=8: precision-heaviest
    LshConfig(num_perm=64, bands=16),    # shorter signature, rows=4
]


def _smoke() -> bool:
    return os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"


def _quality_row(name, dataset, gold, blocker):
    started = time.perf_counter()
    quality = evaluate_blocker(dataset, gold, blocker)
    seconds = time.perf_counter() - started
    return quality, [
        name,
        quality.candidate_count,
        f"{quality.pairs_completeness:.4f}",
        f"{quality.reduction_ratio:.4f}",
        f"{quality.pairs_quality:.4f}",
        f"{seconds:.3f}",
    ], seconds


def test_lsh_blocking_quality_sweep():
    record_count = 400 if _smoke() else 2000
    benchmark = make_person_benchmark(record_count, seed=7)
    dataset, gold = benchmark.dataset, benchmark.gold

    rows = []
    default_quality = None
    lsh_seconds = None
    for config in SWEEP:
        label = (
            f"lsh {config.num_perm}/{config.bands}x{config.rows} "
            f"(t~{config.threshold_estimate():.2f})"
        )
        quality, row, seconds = _quality_row(
            label, dataset, gold, lambda ds, c=config: lsh_blocking(ds, c)
        )
        rows.append(row)
        if config == LshConfig():
            default_quality, lsh_seconds = quality, seconds

    _, token_row, token_seconds = _quality_row(
        "token_blocking", dataset, gold, token_blocking
    )
    rows.append(token_row)
    _, full_row, _ = _quality_row("full_pairs", dataset, gold, full_pairs)
    rows.append(full_row)

    print_table(
        f"MinHash-LSH blocking quality ({record_count} records, "
        f"{dataset.total_pairs()} total pairs)",
        ["Blocker", "Candidates", "PC", "RR", "PQ", "Seconds"],
        rows,
    )
    emit_trajectory(
        "lsh_blocking",
        seconds={"lsh_default": lsh_seconds, "token_blocking": token_seconds},
        counters={
            "default_candidates": default_quality.candidate_count,
            "pairs_completeness": round(default_quality.pairs_completeness, 4),
            "reduction_ratio": round(default_quality.reduction_ratio, 4),
        },
        context={"smoke": _smoke(), "records": record_count},
    )

    # Claim 1 — always asserted, smoke mode included (the CI gate).
    assert default_quality.pairs_completeness >= MIN_PAIRS_COMPLETENESS, (
        f"default LSH config keeps only "
        f"{default_quality.pairs_completeness:.4f} of the gold pairs"
    )
    assert default_quality.reduction_ratio >= MIN_REDUCTION_RATIO, (
        f"default LSH config prunes only "
        f"{default_quality.reduction_ratio:.4f} of the comparison space"
    )

    if _smoke():
        return  # CI smoke: quality is the claim; timing is noise there

    # Claim 3 — LSH must not cost an order of magnitude over token
    # blocking (both are linear scans; LSH adds the per-token permute,
    # amortized by the vocabulary cache).
    assert lsh_seconds < token_seconds * 10 + 1.0, (
        f"LSH blocking took {lsh_seconds:.3f}s vs token blocking "
        f"{token_seconds:.3f}s"
    )


def test_sweep_trades_completeness_against_reduction():
    """Claim 2: along the 128-permutation sweep, fewer rows per band
    (lower S-curve threshold) must not lose completeness, and more rows
    must not lose reduction — the knob is monotone on both ends."""
    benchmark = make_person_benchmark(300 if _smoke() else 800, seed=13)
    dataset, gold = benchmark.dataset, benchmark.gold
    recall_heavy = evaluate_blocker(
        dataset, gold, lambda ds: lsh_blocking(ds, LshConfig(bands=64))
    )
    default = evaluate_blocker(dataset, gold, lambda ds: lsh_blocking(ds))
    precision_heavy = evaluate_blocker(
        dataset, gold, lambda ds: lsh_blocking(ds, LshConfig(bands=16))
    )
    assert (
        recall_heavy.pairs_completeness
        >= default.pairs_completeness
        >= precision_heavy.pairs_completeness
    )
    assert (
        recall_heavy.reduction_ratio
        <= default.reduction_ratio
        <= precision_heavy.reduction_ratio
    )
