"""Serving subsystem — closed-loop latency/throughput load harness.

Drives N concurrent HTTP clients against a seeded platform behind the
concurrent front-end (:mod:`repro.server.http` + :mod:`repro.serving`)
and validates the subsystem's three headline claims:

1. **correctness under concurrency** — every response of the
   8-client run is byte-identical to the serial single-client
   reference run (and zero requests are dropped);
2. **cache-warm speedup** — warm reads (read-through payload cache)
   beat cold recomputation by at least 5×;
3. **request coalescing** — concurrent identical requests on a cold
   key share one engine computation, asserted via ``/stats``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving.py -s

``REPRO_BENCH_SMOKE=1`` shrinks the corpus for CI.
"""

from __future__ import annotations

import http.client
import json
import os
import threading
import time

import pytest

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.platform import FrostPlatform
from repro.datagen import (
    make_cora_like_benchmark,
    make_person_benchmark,
    scored_benchmark_experiment,
)
from repro.server.api import FrostApi
from repro.server.http import FrostHttpServer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1"

CLIENTS = 8
WARM_ROUNDS = 4 if SMOKE else 10
MIN_WARM_SPEEDUP = 5.0


def _benchmark_platform() -> tuple[FrostPlatform, str, str, list[str]]:
    """A seeded platform plus the request paths the clients replay."""
    if SMOKE:
        benchmark = make_person_benchmark(500, seed=7)
        matches = 400
        samples = 50
    else:
        benchmark = make_cora_like_benchmark()
        matches = 5_067
        samples = 100
    platform = FrostPlatform()
    platform.add_dataset(benchmark.dataset)
    platform.add_gold(benchmark.dataset.name, benchmark.gold)
    experiment_names = []
    for index in range(2):
        experiment = scored_benchmark_experiment(
            benchmark,
            target_matches=matches,
            seed=20 + index,
            name=f"serving-run-{index}",
        )
        platform.add_experiment(benchmark.dataset.name, experiment)
        experiment_names.append(experiment.name)
    dataset = benchmark.dataset.name
    gold = benchmark.gold.name
    paths = [
        f"/datasets/{dataset}/metrics?gold={gold}",
        f"/datasets/{dataset}/metrics?gold={gold}&metrics=precision,recall,f1",
        f"/datasets/{dataset}/diagram?exp={experiment_names[0]}&gold={gold}&n={samples}",
        f"/datasets/{dataset}/diagram?exp={experiment_names[1]}&gold={gold}&n={samples}",
        f"/datasets/{dataset}/categorize?exp={experiment_names[0]}&gold={gold}",
        f"/datasets/{dataset}/profile",
    ]
    return platform, dataset, gold, paths


def _get(connection: http.client.HTTPConnection, path: str) -> tuple[int, bytes]:
    connection.request("GET", path)
    response = connection.getresponse()
    return response.status, response.read()


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


class _Client:
    """One closed-loop load client with a keep-alive connection."""

    def __init__(self, port: int, paths: list[str], rounds: int,
                 barrier: threading.Barrier) -> None:
        self.port = port
        self.paths = paths
        self.rounds = rounds
        self.barrier = barrier
        self.latencies: list[float] = []
        self.bodies: dict[str, bytes] = {}
        self.errors: list[str] = []
        self.thread = threading.Thread(target=self._run)

    def _run(self) -> None:
        connection = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        try:
            # Establish the keep-alive connection before the barrier so
            # the measured section is pure request serving.
            connection.connect()
            self.barrier.wait(timeout=60)
            for _ in range(self.rounds):
                for path in self.paths:
                    started = time.perf_counter()
                    status, body = _get(connection, path)
                    self.latencies.append(time.perf_counter() - started)
                    if status != 200:
                        self.errors.append(f"{path}: HTTP {status}")
                        continue
                    previous = self.bodies.setdefault(path, body)
                    if previous != body:
                        self.errors.append(f"{path}: response bytes changed")
        except Exception as error:  # noqa: BLE001 - reported as dropped
            self.errors.append(f"{type(error).__name__}: {error}")
        finally:
            connection.close()


def test_serving_load_report():
    """Throughput + tail latency of the serving layer under 8 clients.

    Asserts byte-identical responses vs. the serial run, zero dropped
    requests, and ≥5× cache-warm speedup over cold recomputation.
    """
    platform, _, _, paths = _benchmark_platform()
    with FrostHttpServer(FrostApi(platform), port=0) as server:
        # serial single-client reference: every path once, cold cache
        reference: dict[str, bytes] = {}
        cold_latencies: dict[str, float] = {}
        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=300)
        for path in paths:
            started = time.perf_counter()
            status, body = _get(connection, path)
            cold_latencies[path] = time.perf_counter() - started
            assert status == 200, f"cold {path}: HTTP {status}"
            reference[path] = body
        connection.close()

        barrier = threading.Barrier(CLIENTS)
        clients = [
            _Client(server.port, paths, WARM_ROUNDS, barrier)
            for _ in range(CLIENTS)
        ]
        started = time.perf_counter()
        for client in clients:
            client.thread.start()
        for client in clients:
            client.thread.join(timeout=600)
        wall = time.perf_counter() - started

        stats_connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=60
        )
        status, stats_body = _get(stats_connection, "/stats")
        stats_connection.close()
        assert status == 200
        serving_stats = json.loads(stats_body)["serving"]

    dropped = [error for client in clients for error in client.errors]
    assert not dropped, f"dropped/failed requests: {dropped[:5]}"
    total_requests = CLIENTS * WARM_ROUNDS * len(paths)
    latencies = [second for client in clients for second in client.latencies]
    assert len(latencies) == total_requests

    for client in clients:
        for path in paths:
            assert client.bodies[path] == reference[path], (
                f"{path}: concurrent response differs from the serial run"
            )

    cold_total = sum(cold_latencies.values())
    cold_throughput = len(paths) / cold_total
    warm_throughput = total_requests / wall
    speedup = warm_throughput / cold_throughput

    print_table(
        "Serving layer: closed-loop load (8 clients, keep-alive)",
        ["Metric", "Value"],
        [
            ["requests", total_requests],
            ["wall time", f"{wall:.3f}s"],
            ["throughput (warm)", f"{warm_throughput:,.0f} req/s"],
            ["throughput (cold serial)", f"{cold_throughput:,.0f} req/s"],
            ["warm/cold speedup", f"{speedup:.1f}x"],
            ["p50 latency", f"{_percentile(latencies, 0.50) * 1000:.2f}ms"],
            ["p95 latency", f"{_percentile(latencies, 0.95) * 1000:.2f}ms"],
            ["p99 latency", f"{_percentile(latencies, 0.99) * 1000:.2f}ms"],
            ["cache hits", serving_stats["cache"]["hits"]],
            ["computations", serving_stats["computations"]],
        ],
    )
    rows = [
        [
            path.split("/")[-1][:40],
            f"{cold_latencies[path] * 1000:.1f}ms",
        ]
        for path in paths
    ]
    print_table("Cold (compute) latency per request", ["Request", "Cold"], rows)
    emit_trajectory(
        "serving",
        throughput={
            "warm_requests_per_second": warm_throughput,
            "cold_requests_per_second": cold_throughput,
        },
        latencies=latencies,
        counters={
            "requests": total_requests,
            "cache_hits": serving_stats["cache"]["hits"],
            "computations": serving_stats["computations"],
        },
        context={
            "smoke": SMOKE,
            "clients": CLIENTS,
            "rounds": WARM_ROUNDS,
            "paths": len(paths),
        },
    )

    # every path computed exactly once; all warm traffic was served
    assert serving_stats["computations"] == len(paths)
    assert serving_stats["requests"] == total_requests + len(paths)
    assert speedup >= MIN_WARM_SPEEDUP, (
        f"cache-warm serving only {speedup:.1f}x cold recomputation "
        f"(warm {warm_throughput:,.0f} req/s, cold {cold_throughput:,.0f} req/s)"
    )


def test_coalescing_holds_concurrent_duplicates_to_one_computation():
    """8 concurrent identical cold requests -> exactly one computation.

    The assertion is deterministic: any client that arrives while the
    leader computes joins its flight; any client that arrives after it
    lands hits the cache.  Either way the engine computes once, which
    ``/stats`` exposes as ``computations == 1``.
    """
    platform, dataset, gold, _ = _benchmark_platform()
    samples = 60 if SMOKE else 150
    path = (
        f"/datasets/{dataset}/diagram?exp=serving-run-0&gold={gold}&n={samples}"
    )
    bodies: list[bytes] = []
    errors: list[str] = []
    bodies_lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    with FrostHttpServer(FrostApi(platform), port=0) as server:

        def client() -> None:
            connection = http.client.HTTPConnection(
                "127.0.0.1", server.port, timeout=300
            )
            try:
                barrier.wait(timeout=60)
                status, body = _get(connection, path)
                with bodies_lock:
                    if status != 200:
                        errors.append(f"HTTP {status}")
                    bodies.append(body)
            except Exception as error:  # noqa: BLE001
                with bodies_lock:
                    errors.append(f"{type(error).__name__}: {error}")
            finally:
                connection.close()

        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)

        connection = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)
        _, stats_body = _get(connection, "/stats")
        connection.close()

    assert not errors, errors
    assert len(bodies) == CLIENTS
    assert len(set(bodies)) == 1, "coalesced responses must be identical"
    serving_stats = json.loads(stats_body)["serving"]
    coalescer = serving_stats["coalescer"]
    print(
        f"\ncoalescing: {CLIENTS} concurrent duplicates -> "
        f"{serving_stats['computations']} computation(s) "
        f"({coalescer['followers']} follower(s), "
        f"{serving_stats['cache']['hits']} late cache hit(s))"
    )
    assert serving_stats["requests"] == CLIENTS
    assert serving_stats["computations"] == 1, (
        "concurrent duplicate requests stampeded the engine: "
        f"{serving_stats['computations']} computations for one key"
    )
    # the other 7 either joined the flight or hit the cache just after
    assert coalescer["followers"] + serving_stats["cache"]["hits"] == CLIENTS - 1


if __name__ == "__main__":
    pytest.main([__file__, "-s"])
