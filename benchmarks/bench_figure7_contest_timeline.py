"""Figure 7 — f1 score over time at the SIGMOD contest.

"The matching quality of the different teams generally increased over
time, but sometimes faced significant declines in matching
performance.  Thus, the matching task had an overall trial-and-error
character."

Team trajectories are simulated (DESIGN.md §3) and each submission is
measured with the real metric machinery.  Shape claims: every team
trends upward, and significant declines (trial-and-error dips) occur.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.kpis.effort_study import ContestTimelineSimulator


def test_figure7_timeline(benchmark, person_benchmark):
    simulator = ContestTimelineSimulator(
        dataset=person_benchmark.dataset,
        gold=person_benchmark.gold,
        team_count=3,
        submissions=25,
        regression_probability=0.18,
        seed=11,
    )
    timelines = benchmark.pedantic(simulator.run, rounds=1, iterations=1)

    rows = []
    for team, points in timelines.items():
        values = [f1 for _, f1 in points]
        declines = sum(1 for a, b in zip(values, values[1:]) if b < a - 0.03)
        rows.append(
            [
                team,
                f"{values[0]:.3f}",
                f"{max(values):.3f}",
                f"{values[-1]:.3f}",
                declines,
            ]
        )
    print_table(
        "Figure 7: f1 over contest submissions (simulated teams, measured f1)",
        ["team", "first", "best", "last", "significant declines"],
        rows,
    )
    sparkline = {
        team: " ".join(f"{f1:.2f}" for _, f1 in points[::3])
        for team, points in timelines.items()
    }
    for team, line in sparkline.items():
        print(f"  {team}: {line}")

    total_declines = 0
    for team, points in timelines.items():
        values = [f1 for _, f1 in points]
        early = sum(values[:5]) / 5
        late = sum(values[-5:]) / 5
        assert late > early, f"{team} did not trend upward"
        total_declines += sum(
            1 for a, b in zip(values, values[1:]) if b < a - 0.03
        )
    # trial-and-error character: dips exist across the field
    assert total_declines >= 3
    emit_trajectory(
        "figure7_contest_timeline",
        counters={"teams": len(timelines), "declines": total_declines},
        context={"records": len(person_benchmark.dataset), "submissions": 25},
    )
