"""Table 2 — Profiling the datasets of the ACM SIGMOD programming contest.

Paper values (train X / test Z):

    metric   X2       Z2       X3       Z3
    SP       11.1%    19.72%   50.1%    42.6%
    TX       27.99    23.69    15.53    15.35
    TC       58 653   18 915   56 616   35 778
    PR       2.2%     3.6%     2.2%     12.1%
    VS           59.0%            37.7%

We regenerate the table on the calibrated synthetic contest data
(DESIGN.md §3).  Record counts are scaled (×0.05 by default); SP, TX,
and PR are controlled directly and must land near the paper's values;
VS is dominated by synthetic corruption noise, so we assert the
*ordering* (D2 more self-similar than D3) rather than the magnitude —
EXPERIMENTS.md records the deviation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import full_scale, print_table
from benchmarks.trajectory import emit_trajectory
from repro.datagen.sigmod import make_sigmod_contest
from repro.profiling import profile_dataset, vocabulary_similarity

PAPER = {
    "x2": {"SP": 0.111, "TX": 27.99, "TC": 58_653, "PR": 0.022},
    "z2": {"SP": 0.1972, "TX": 23.69, "TC": 18_915, "PR": 0.036},
    "x3": {"SP": 0.501, "TX": 15.53, "TC": 56_616, "PR": 0.022},
    "z3": {"SP": 0.426, "TX": 15.35, "TC": 35_778, "PR": 0.121},
}
PAPER_VS = {"d2": 0.59, "d3": 0.377}


@pytest.fixture(scope="module")
def contest():
    scale = 1.0 if full_scale() else 0.05
    return make_sigmod_contest(scale=scale, seed=7)


def test_table2_profiles(benchmark, contest):
    def compute():
        result = {}
        for name in ("x2", "z2", "x3", "z3"):
            split = contest.split(name)
            profile = profile_dataset(split.dataset, split.gold)
            result[name] = {
                "SP": profile.sparsity,
                "TX": profile.textuality,
                "TC": profile.tuple_count,
                "PR": split.labeled.positive_ratio,
            }
        result["VS"] = {
            "d2": vocabulary_similarity(contest.x2.dataset, contest.z2.dataset),
            "d3": vocabulary_similarity(contest.x3.dataset, contest.z3.dataset),
        }
        return result

    measured = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for metric in ("SP", "TX", "TC", "PR"):
        row = [metric]
        for name in ("x2", "z2", "x3", "z3"):
            value = measured[name][metric]
            paper = PAPER[name][metric]
            if metric == "TC":
                row.append(f"{value} (paper {paper})")
            else:
                row.append(f"{value:.3f} (paper {paper:.3f})")
        rows.append(row)
    rows.append(
        [
            "VS",
            f"d2: {measured['VS']['d2']:.3f} (paper {PAPER_VS['d2']:.3f})",
            "",
            f"d3: {measured['VS']['d3']:.3f} (paper {PAPER_VS['d3']:.3f})",
            "",
        ]
    )
    print_table(
        "Table 2: SIGMOD contest dataset profiles (measured vs paper)",
        ["metric", "X2", "Z2", "X3", "Z3"],
        rows,
    )

    # sparsity is calibrated: within a few points of the paper
    for name in ("x2", "z2", "x3", "z3"):
        assert measured[name]["SP"] == pytest.approx(
            PAPER[name]["SP"], abs=0.07
        ), name
    # textuality ordering and rough magnitude (D2 much more textual)
    assert measured["x2"]["TX"] > 1.4 * measured["x3"]["TX"]
    assert measured["x2"]["TX"] == pytest.approx(PAPER["x2"]["TX"], rel=0.3)
    # positive ratios: Z3 is the outlier, as in the paper
    assert measured["z3"]["PR"] > 3 * measured["x3"]["PR"]
    assert measured["z3"]["PR"] == pytest.approx(PAPER["z3"]["PR"], abs=0.04)
    # vocabulary similarity ordering: D2 splits are more similar
    assert measured["VS"]["d2"] > measured["VS"]["d3"]
    emit_trajectory(
        "table2_profiling",
        counters={
            f"{name}_tuples": measured[name]["TC"]
            for name in ("x2", "z2", "x3", "z3")
        },
        context={"full_scale": full_scale()},
    )
