"""Ablation — duplicate-clustering algorithm choice (pipeline step 5).

§1.2 / §3.2.3: transitive closure "often introduces many false
positives"; alternative clusterings [20, 31] trade recall for
precision, and their agreement serves as a no-ground-truth quality
signal.  We run all five implemented algorithms on the same scored
matches (with deliberate chaining noise) and regenerate the standard
precision/recall comparison.
"""

from __future__ import annotations

import random

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core import ConfusionMatrix
from repro.core.pairs import ScoredPair, make_pair
from repro.matching.clustering_algorithms import CLUSTERING_ALGORITHMS
from repro.metrics.noground import clustering_agreement
from repro.metrics.pairwise import f1_score, precision, recall


def chained_matches(benchmark_data, noise_links: int, seed: int = 5):
    """True duplicate pairs plus spurious cross-cluster links."""
    rng = random.Random(seed)
    pairs = []
    for pair in sorted(benchmark_data.gold.pairs()):
        pairs.append(ScoredPair(score=min(1.0, rng.gauss(0.85, 0.07)), pair=pair))
    ids = benchmark_data.dataset.record_ids
    added = 0
    attempts = 0
    seen = {sp.pair for sp in pairs}
    while added < noise_links and attempts < noise_links * 100:
        attempts += 1
        a, b = rng.sample(ids, 2)
        pair = make_pair(a, b)
        if pair in seen or benchmark_data.gold.is_duplicate(a, b):
            continue
        seen.add(pair)
        pairs.append(ScoredPair(score=min(1.0, rng.gauss(0.6, 0.05)), pair=pair))
        added += 1
    return pairs


def test_clustering_algorithm_comparison(benchmark, person_benchmark):
    matches = chained_matches(person_benchmark, noise_links=60)
    total = person_benchmark.dataset.total_pairs()

    def run_all():
        return {
            name: algorithm(matches)
            for name, algorithm in CLUSTERING_ALGORITHMS.items()
        }

    clusterings = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    stats = {}
    for name, clustering in clusterings.items():
        matrix = ConfusionMatrix.from_clusterings(
            clustering, person_benchmark.gold.clustering, total
        )
        stats[name] = {
            "precision": precision(matrix),
            "recall": recall(matrix),
            "f1": f1_score(matrix),
        }
        rows.append(
            [
                name,
                f"{stats[name]['precision']:.3f}",
                f"{stats[name]['recall']:.3f}",
                f"{stats[name]['f1']:.3f}",
                clustering.pair_count(),
            ]
        )
    print_table(
        "Ablation: duplicate clustering algorithms on noisy matches",
        ["algorithm", "precision", "recall", "f1", "pairs"],
        rows,
    )
    agreement = clustering_agreement(list(clusterings.values()))
    print(f"  clustering agreement (no-ground-truth signal): {agreement:.3f}")
    emit_trajectory(
        "ablation_clustering",
        counters={
            **{
                name: clustering.pair_count()
                for name, clustering in clusterings.items()
            },
            "agreement": round(agreement, 4),
        },
        context={"records": len(person_benchmark.dataset), "noise_links": 60},
    )

    # transitive closure has maximal recall but pays in precision
    assert stats["connected_components"]["recall"] == max(
        s["recall"] for s in stats.values()
    )
    assert any(
        s["precision"] > stats["connected_components"]["precision"]
        for name, s in stats.items()
        if name != "connected_components"
    )
    # the agreement signal is in (0, 1): the noise creates real dissent
    assert 0.0 < agreement < 1.0
