"""Engine result cache — cold vs. cached evaluation latency.

The execution engine content-addresses every metrics/diagram job by the
dataset + configuration + gold-standard contents, so re-running an
identical job while exploring results costs a hash lookup instead of a
recomputation.  This benchmark quantifies that: it runs the same
metrics-table and diagram jobs cold (fresh platform, empty cache) and
cached, and asserts the cached path is at least 5× faster — the
headline claim of the engine subsystem.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engine_cache.py -s
"""

from __future__ import annotations

import statistics
import time

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.core.platform import FrostPlatform
from repro.datagen import scored_benchmark_experiment
from repro.engine import ExperimentEngine, JobSpec

SAMPLES = 100  # diagram thresholds, as in Table 1
CACHED_ROUNDS = 5
MIN_SPEEDUP = 5.0


def _platform_for(benchmark_data, matches: int):
    experiment = scored_benchmark_experiment(
        benchmark_data, target_matches=matches, seed=17, name="engine-run"
    )
    platform = FrostPlatform()
    platform.add_dataset(benchmark_data.dataset)
    platform.add_gold(benchmark_data.dataset.name, benchmark_data.gold)
    platform.add_experiment(benchmark_data.dataset.name, experiment)
    return platform


def _time_job(engine: ExperimentEngine, spec: JobSpec) -> tuple[float, object]:
    started = time.perf_counter()
    result = engine.run([spec])[spec.job_id]
    elapsed = time.perf_counter() - started
    assert result.state.value == "succeeded", result.error
    return elapsed, result


def _measure(platform: FrostPlatform, kind: str, params: dict) -> dict:
    engine = ExperimentEngine(platform, max_workers=2)
    cold_seconds, cold = _time_job(
        engine, JobSpec(kind, params, job_id=f"{kind}-cold")
    )
    assert cold.cached is False
    cached_runs = []
    for round_index in range(CACHED_ROUNDS):
        seconds, cached = _time_job(
            engine, JobSpec(kind, params, job_id=f"{kind}-warm-{round_index}")
        )
        assert cached.cached is True, "identical re-run must hit the cache"
        assert cached.value == cold.value, "cache must reproduce the payload"
        cached_runs.append(seconds)
    cached_seconds = statistics.median(cached_runs)
    return {
        "kind": kind,
        "cold": cold_seconds,
        "cached": cached_seconds,
        "speedup": cold_seconds / max(cached_seconds, 1e-9),
    }


def test_engine_cache_report(cora_benchmark):
    """Cold vs. cached latency for metrics tables and diagrams.

    Claims under test:

    1. identical re-runs are served from the cache with identical
       payloads;
    2. the cached path is ≥5× faster than recomputation for both the
       N-metrics table and the 100-threshold diagram.
    """
    platform = _platform_for(cora_benchmark, matches=5_067)
    dataset_name = cora_benchmark.dataset.name
    gold_name = cora_benchmark.gold.name

    rows = []
    measurements = [
        _measure(
            platform,
            "metrics",
            {"dataset": dataset_name, "gold": gold_name},  # full registry
        ),
        _measure(
            platform,
            "diagram",
            {
                "dataset": dataset_name,
                "gold": gold_name,
                "experiment": "engine-run",
                "samples": SAMPLES,
            },
        ),
    ]
    for entry in measurements:
        rows.append(
            [
                entry["kind"],
                f"{entry['cold'] * 1000:.1f}ms",
                f"{entry['cached'] * 1000:.2f}ms",
                f"{entry['speedup']:.1f}x",
            ]
        )
    print_table(
        "Engine result cache: cold vs. cached evaluation latency",
        ["Job", "Cold", "Cached (median)", "Speedup"],
        rows,
    )
    emit_trajectory(
        "engine_cache",
        seconds={
            f"{entry['kind']}_{phase}": entry[phase]
            for entry in measurements
            for phase in ("cold", "cached")
        },
        counters={
            f"{entry['kind']}_speedup": round(entry["speedup"], 1)
            for entry in measurements
        },
        context={"samples": SAMPLES, "cached_rounds": CACHED_ROUNDS},
    )
    for entry in measurements:
        assert entry["speedup"] >= MIN_SPEEDUP, (
            f"{entry['kind']}: cached path only {entry['speedup']:.1f}x faster "
            f"(cold {entry['cold'] * 1000:.1f}ms, "
            f"cached {entry['cached'] * 1000:.2f}ms)"
        )


def test_sweep_rerun_is_fully_cached(cora_benchmark):
    """A repeated batch sweep performs zero recomputation."""
    platform = _platform_for(cora_benchmark, matches=5_067)
    engine = ExperimentEngine(platform, max_workers=4)
    thresholds = [0.5, 0.6, 0.7, 0.8, 0.9]

    def sweep(sweep_id: str) -> float:
        base = JobSpec(
            "metrics",
            {
                "dataset": cora_benchmark.dataset.name,
                "gold": cora_benchmark.gold.name,
                "metrics": ["precision", "recall", "f1"],
            },
            job_id=sweep_id,
        )
        started = time.perf_counter()
        job_ids = engine.sweep(base, "threshold", thresholds)
        engine.start()
        assert engine.join(job_ids, timeout=120)
        return time.perf_counter() - started

    cold_seconds = sweep("cold")
    computed_after_cold = engine.computed_jobs
    cached_seconds = sweep("warm")
    assert engine.computed_jobs == computed_after_cold, (
        "re-running an identical sweep must not recompute any job"
    )
    assert engine.cached_jobs == len(thresholds)
    print(
        f"\nsweep of {len(thresholds)} thresholds: "
        f"cold {cold_seconds * 1000:.1f}ms, "
        f"cached {cached_seconds * 1000:.1f}ms"
    )
