"""Figure 6 — Maximum f1 score against effort spent (hours).

"We optimized three solutions for the SIGMOD D4 dataset from scratch
and tracked the effort spent throughout the process.  Each solution
had a breakthrough point-in-time at which the performance increased
significantly.  Afterwards, all solutions reached a barrier at around
14 hours, above which only minor improvements were achieved."

The human optimization process is simulated (see DESIGN.md §3); every
checkpoint synthesizes a result set and measures real f1.  Shape
claims checked: visible breakthrough per solution, a barrier near
14 hours, and solution-specific plateaus.
"""

from __future__ import annotations

from benchmarks.conftest import print_table
from benchmarks.trajectory import emit_trajectory
from repro.kpis.diagrams import effort_to_reach, render_effort_diagram
from repro.kpis.effort_study import EffortStudySimulator, SolutionProfile

PROFILES = [
    SolutionProfile(
        "rule-based", out_of_box=0.25, plateau=0.82, breakthrough_hours=4.0
    ),
    SolutionProfile(
        "machine-learning", out_of_box=0.15, plateau=0.93, breakthrough_hours=8.0
    ),
    SolutionProfile(
        "hybrid", out_of_box=0.35, plateau=0.88, breakthrough_hours=6.0
    ),
]


def test_figure6_effort_curves(benchmark, person_benchmark):
    simulator = EffortStudySimulator(
        dataset=person_benchmark.dataset,
        gold=person_benchmark.gold,
        profiles=PROFILES,
        checkpoint_hours=1.0,
        total_hours=24.0,
        seed=42,
    )
    curves = benchmark.pedantic(simulator.run, rounds=1, iterations=1)

    rows = []
    for curve in curves:
        envelope = curve.best_so_far()
        rows.append(
            [
                curve.solution,
                f"{envelope[0].metric_value:.3f}",
                f"{curve.breakthrough(jump=0.1):.0f}h",
                f"{curve.final_value():.3f}",
                f"{effort_to_reach(curve, 0.8)}",
            ]
        )
    print_table(
        "Figure 6: max f1 vs effort (simulated study, measured f1)",
        ["solution", "out-of-box", "breakthrough", "final f1", "hours to f1>=0.8"],
        rows,
    )
    print(render_effort_diagram(curves))

    for curve in curves:
        # breakthrough exists and happens before the barrier
        breakthrough = curve.breakthrough(jump=0.1)
        assert breakthrough is not None
        assert breakthrough < 14.0
        # barrier: gains after ~14h are minor
        at_14 = max(
            p.metric_value for p in curve.best_so_far() if p.effort_hours <= 14.0
        )
        assert curve.final_value() - at_14 < 0.05
        # each solution improves substantially over its out-of-box state
        assert curve.final_value() > curve.points[0].metric_value + 0.2
    # solution-specific plateaus: the ML profile ends highest
    finals = {curve.solution: curve.final_value() for curve in curves}
    assert finals["machine-learning"] == max(finals.values())
    emit_trajectory(
        "figure6_effort_study",
        counters={name: round(value, 4) for name, value in finals.items()},
        context={
            "records": len(person_benchmark.dataset),
            "total_hours": 24.0,
        },
    )
