#!/usr/bin/env python3
"""Reproduce the SIGMOD-contest analysis of Section 5.4.

The paper analyzed five top matching solutions of the ACM SIGMOD 2021
programming contest with Snowman.  The contest artifacts are not
redistributable, so this example uses the calibrated synthetic contest
of :mod:`repro.datagen.sigmod` and five differently configured
pipelines as stand-ins (see DESIGN.md §3).  The *analysis workflow* is
exactly the paper's:

1. the N-Metrics viewer over all solutions (avg / min / max f1),
2. metric/metric diagrams to detect solutions with a suboptimal
   similarity threshold,
3. the N-Intersection viewer: true pairs missed by most solutions, and
   whether they share a common record (the ``altosight.com//1420``
   insight).

Run with::

    python examples/contest_analysis.py
"""

from __future__ import annotations

from collections import Counter

from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import compute_diagram_optimized
from repro.datagen import make_x4_like_benchmark
from repro.matching import (
    AttributeComparator,
    LogisticRegressionModel,
    MatchingPipeline,
    WeightedAverageModel,
    compare_pairs,
)
from repro.metrics.pairwise import f1_score

# The X4 offers carry "unstructured, cluttered information in the
# attribute name" (§5.4) plus a few structured attributes.
COMPARATOR = AttributeComparator(
    {
        "name": "token_jaccard",
        "brand": "jaro_winkler",
        "size": "token_jaccard",
        "price": "numeric",
    }
)


def block(dataset):
    """Candidates: offers sharing any sufficiently long name token."""
    from repro.matching import token_blocking

    return token_blocking(dataset, ["name"], min_token_length=3)


def labeled_training_pairs(benchmark, count: int = 800, seed: int = 0):
    """Labeled development pairs sampled from the training benchmark."""
    import random

    from repro.core.pairs import make_pair

    rng = random.Random(seed)
    positives = sorted(benchmark.gold.pairs())
    rng.shuffle(positives)
    labeled = [(pair, True) for pair in positives[: count // 2]]
    ids = benchmark.dataset.record_ids
    while len(labeled) < count:
        pair = make_pair(*rng.sample(ids, 2))
        if not benchmark.gold.is_duplicate(*pair):
            labeled.append((pair, False))
    return labeled


def build_solutions(train) -> list[MatchingPipeline]:
    """Five solutions with differing configurations and error profiles."""
    weights = {"name": 3, "brand": 1, "size": 2, "price": 1}
    solutions = [
        MatchingPipeline(
            candidate_generator=block,
            comparator=COMPARATOR,
            decision_model=WeightedAverageModel(weights),
            threshold=threshold,
            name=name,
            solution=name,
        )
        for name, threshold in (
            ("team-1", 0.60),
            ("team-2", 0.78),  # too strict: recall suffers
            ("team-3", 0.45),  # too lax: precision suffers
            ("team-4", 0.68),
        )
    ]

    # team-5 learns its decision model from labeled development pairs
    # of the training dataset (the supervised-ML category of §1).
    labeled = labeled_training_pairs(train, seed=1)
    vectors = compare_pairs(
        train.dataset, [pair for pair, _ in labeled], COMPARATOR
    )
    labels = [label for _, label in labeled]
    model = LogisticRegressionModel(list(COMPARATOR.attributes))
    model.fit(vectors, labels)
    solutions.append(
        MatchingPipeline(
            candidate_generator=block,
            comparator=COMPARATOR,
            decision_model=model.score,
            threshold=0.85,
            name="team-5",
            solution="team-5",
        )
    )
    return solutions


def main() -> None:
    # Z4-like evaluation data and X4-like training data (§5.4 analyzed
    # the solutions on Z4; X4 is the corresponding training dataset).
    z4 = make_x4_like_benchmark(record_count=835, seed=4)
    x4 = make_x4_like_benchmark(record_count=835, seed=40)
    dataset, gold = z4.dataset, z4.gold
    print(
        f"evaluation dataset: {len(dataset)} records, "
        f"{gold.pair_count()} true pairs"
    )

    solutions = build_solutions(x4)
    experiments = []
    for pipeline in solutions:
        experiment = pipeline.run(dataset).experiment
        experiments.append(experiment)

    # --- 1. N-Metrics viewer ---------------------------------------------------
    print("\n=== f1 per team (N-Metrics viewer) ===")
    f1s = {}
    for experiment in experiments:
        matrix = ConfusionMatrix.from_clusterings(
            experiment.clustering(), gold.clustering, dataset.total_pairs()
        )
        f1s[experiment.name] = f1_score(matrix)
        print(f"  {experiment.name}: f1 = {f1s[experiment.name]:.3f}")
    values = sorted(f1s.values())
    print(
        f"  average = {sum(values) / len(values):.3f}, "
        f"min = {values[0]:.3f}, max = {values[-1]:.3f}"
    )

    # --- 2. Threshold optimality ------------------------------------------------
    print("\n=== Threshold audit (metric/metric diagrams) ===")
    for pipeline in solutions:
        scored = pipeline.scored_experiment(dataset, keep_all=True)
        points = compute_diagram_optimized(dataset, scored, gold, samples=60)
        candidates = [
            (f1_score(p.matrix), p.threshold)
            for p in points
            if p.threshold is not None
        ]
        best_f1, best_thr = max(candidates)
        actual = f1s[pipeline.name]
        gain = best_f1 - actual
        verdict = (
            f"suboptimal: threshold {best_thr:.2f} would gain "
            f"{gain * 100:.1f} f1 points"
            if gain > 0.02
            else "threshold is near-optimal"
        )
        print(f"  {pipeline.name} (thr={pipeline.threshold:.2f}): {verdict}")

    # --- 3. Hardest pairs (N-Intersection viewer) -------------------------------
    print("\n=== True pairs missed by most solutions ===")
    from repro.exploration.setops import pairs_missed_by_most

    hard = pairs_missed_by_most(gold, experiments, minimum_missing=4)
    print(f"  {len(hard)} true pair(s) missed by at least 4 of 5 teams")
    involved = Counter(record_id for pair in hard for record_id in pair)
    if involved:
        record_id, count = involved.most_common(1)[0]
        if count > 1:
            print(
                f"  record {record_id!r} appears in {count} of them — "
                "especially difficult to match (the paper's "
                "altosight.com//1420 observation)"
            )
        for first, second in sorted(hard)[:3]:
            left, right = dataset[first], dataset[second]
            print(f"    {first} vs {second}")
            print(f"      name: {left.value('name')!r}")
            print(f"        vs  {right.value('name')!r}")


if __name__ == "__main__":
    main()
