#!/usr/bin/env python3
"""Pick a benchmark, predict a solution, explain its errors (§7 outlook).

This example exercises the features Frost's outlook section sketches,
all implemented in this reproduction:

1. *Selecting benchmark datasets*: rank candidate benchmarks by a
   suitability score for a use-case dataset that has no ground truth.
2. *Recommending matching solutions*: predict which known solution is
   promising for the use case, from a central evaluation repository.
3. *Categorizing errors*: explain what error class defeats the chosen
   solution ("especially weak in the handling of typos").
4. The Appendix D *timeline*: show the new true/false positives gained
   between two similarity thresholds, with cheap backwards jumps.

Run with::

    python examples/benchmark_selection.py
"""

from __future__ import annotations

from repro.core.confusion import ConfusionMatrix
from repro.core.timeline import DiagramTimeline
from repro.datagen import (
    make_cora_like_benchmark,
    make_freedb_like_benchmark,
    make_person_benchmark,
)
from repro.exploration import categorize_errors
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    first_token_key,
    standard_blocking,
)
from repro.metrics.pairwise import f1_score, precision, recall
from repro.profiling import (
    BenchmarkCandidate,
    EvaluationRepository,
    recommend_benchmarks,
    recommend_solutions,
)


def person_pipeline(threshold: float, name: str) -> MatchingPipeline:
    return MatchingPipeline(
        candidate_generator=lambda ds: standard_blocking(
            ds, first_token_key("last_name")
        ),
        comparator=AttributeComparator(
            {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "city": "levenshtein",
                "zip": "exact",
            }
        ),
        decision_model=WeightedAverageModel(
            {"first_name": 2, "last_name": 2, "city": 1, "zip": 2}
        ),
        threshold=threshold,
        name=name,
        solution=name,
    )


def main() -> None:
    # The "use case": a customer dataset without ground truth.  (We
    # generate it with a gold standard, but only the final evaluation
    # peeks at it — selection and recommendation never do.)
    use_case_benchmark = make_person_benchmark(400, seed=99)
    use_case = use_case_benchmark.dataset

    # --- 1. Benchmark selection by suitability ---------------------------------
    person_bench = make_person_benchmark(500, seed=5)
    cora_bench = make_cora_like_benchmark(400)
    freedb_bench = make_freedb_like_benchmark(400)
    candidates = [
        BenchmarkCandidate(person_bench.dataset, person_bench.gold, domain="person"),
        BenchmarkCandidate(cora_bench.dataset, cora_bench.gold, domain="citation"),
        BenchmarkCandidate(freedb_bench.dataset, freedb_bench.gold, domain="music"),
    ]
    # Estimate the use case's duplicate-cluster structure from a 50%
    # sample (Heise et al. [33]) — the feature §3.1.3 says "has to be
    # estimated" because use-case datasets lack a ground truth.
    from repro.core import Clustering
    from repro.profiling import estimate_from_sample, sample_dataset

    sample = sample_dataset(use_case, 0.5, seed=8)
    sample_run = person_pipeline(0.72, "estimator").run(sample)
    estimate = estimate_from_sample(
        sample_run.experiment.clustering(), fraction=0.5
    )
    print(
        f"estimated duplicate structure of the use case (from a 50% sample): "
        f"{estimate.duplicate_cluster_count:.0f} clusters, "
        f"{estimate.duplicate_pair_count:.0f} pairs, "
        f"mean size {estimate.mean_cluster_size:.2f}"
    )

    print("\n=== Benchmark suitability for the use-case dataset ===")
    reports = recommend_benchmarks(use_case, candidates, use_case_domain="person")
    for report in reports:
        print(f"  {report.candidate_name}: {report.score:.3f}")
    chosen = next(
        candidate
        for candidate in candidates
        if candidate.dataset.name == reports[0].candidate_name
    )
    print(f"  -> evaluating solutions on {chosen.dataset.name!r}")

    # --- 2. Solution recommendation from a central repository -------------------
    repository = EvaluationRepository()
    for candidate in candidates:
        repository.add_benchmark(candidate)
    solutions = {
        "strict-rules": person_pipeline(0.85, "strict-rules"),
        "balanced-rules": person_pipeline(0.70, "balanced-rules"),
        "lax-rules": person_pipeline(0.55, "lax-rules"),
    }
    for candidate in candidates:
        for name, pipeline in solutions.items():
            experiment = pipeline.run(candidate.dataset).experiment
            matrix = ConfusionMatrix.from_clusterings(
                experiment.clustering(),
                candidate.gold.clustering,
                candidate.dataset.total_pairs(),
            )
            repository.add_result(
                name,
                candidate.dataset.name,
                {
                    "precision": precision(matrix),
                    "recall": recall(matrix),
                    "f1": f1_score(matrix),
                },
            )

    print("\n=== Predicted f1 on the use case (suitability-weighted) ===")
    # benchmarks far from the use case would only add noise; require a
    # minimum suitability before a result counts as evidence
    recommendations = recommend_solutions(
        use_case, repository, use_case_domain="person", minimum_suitability=0.6
    )
    for recommendation in recommendations:
        print(
            f"  {recommendation.solution}: predicted f1 = "
            f"{recommendation.predicted_metric:.3f} "
            f"(from {recommendation.support} benchmarks)"
        )
    best = recommendations[0].solution

    # --- verify against the (held-back) use-case gold ----------------------------
    gold = use_case_benchmark.gold
    actual = {}
    for name, pipeline in solutions.items():
        experiment = pipeline.run(use_case).experiment
        matrix = ConfusionMatrix.from_clusterings(
            experiment.clustering(), gold.clustering, use_case.total_pairs()
        )
        actual[name] = f1_score(matrix)
    print("\nactual f1 on the use case (gold revealed):")
    for name, value in sorted(actual.items(), key=lambda kv: -kv[1]):
        marker = "  <- recommended" if name == best else ""
        print(f"  {name}: {value:.3f}{marker}")

    # --- 3. Error categorization of the recommended solution ---------------------
    print(f"\n=== Error categorization of {best!r} on the use case ===")
    experiment = solutions[best].run(use_case).experiment
    categorization = categorize_errors(use_case, experiment, gold, limit=500)
    print(categorization.render_report())
    weakness = categorization.dominant_weakness()
    if weakness is not None:
        print(f"  dominant weakness: {weakness.value}")

    # --- 4. Timeline between two thresholds ---------------------------------------
    print("\n=== Timeline: what changes between thresholds 0.9 and 0.7? ===")
    scored = solutions[best].scored_experiment(use_case)
    timeline = DiagramTimeline(use_case, scored, gold)
    segment = timeline.segment(0.9, 0.7)
    print(
        f"  lowering the threshold from 0.90 to 0.70 adds "
        f"{len(segment.new_true_positives)} true and "
        f"{len(segment.new_false_positives)} false positives"
    )
    for first, second in sorted(segment.new_false_positives)[:3]:
        left, right = use_case[first], use_case[second]
        print(
            f"    FP: {left.value('first_name')} {left.value('last_name')}"
            f" ~ {right.value('first_name')} {right.value('last_name')}"
        )


if __name__ == "__main__":
    main()
