#!/usr/bin/env python3
"""Continuous entity resolution with the streaming subsystem.

The batch pipeline recomputes everything whenever a record arrives; a
:class:`~repro.streaming.StreamingMatcher` instead keeps the blocking
index and the clustering alive between batches and performs only the
*delta* work.  This example:

1. creates a durable streaming session (config + state in SQLite);
2. ingests three daily record batches, showing the versioned snapshot
   (delta candidates, accepted matches, cluster counts) after each;
3. simulates a process restart by resuming the session from the store
   and ingesting one more batch;
4. verifies the incremental clustering equals a full batch recompute
   over all records — the subsystem's core guarantee.

Run with::

    python examples/streaming_ingest.py
"""

from __future__ import annotations

from repro.core.records import Dataset
from repro.datagen import make_person_benchmark
from repro.storage.database import FrostStore
from repro.streaming import build_pipeline_and_index, build_session, open_session

# The stream config is plain JSON: the same document drives the CLI
# (`repro stream init ...`), the API (`POST /streams`), and — because it
# is persisted with the session — resume after a restart.
CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "city": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.82,
}


def main() -> None:
    benchmark = make_person_benchmark(400, seed=11)
    records = list(benchmark.dataset)
    batches = [records[:250], records[250:300], records[300:350]]
    final_batch = records[350:]

    store = FrostStore(":memory:")
    session = build_session(CONFIG, store=store, name="customers")

    print("== ingesting daily batches ==")
    for batch in batches:
        snapshot = session.ingest(batch)
        print(
            f"v{snapshot.version}: +{len(batch)} records "
            f"({snapshot.record_count} total), "
            f"{snapshot.delta_candidates} delta candidates, "
            f"{snapshot.accepted_matches} accepted, "
            f"{snapshot.cluster_count} clusters"
        )

    print("\n== resuming the session (simulated restart) ==")
    resumed = open_session(store, "customers")
    print(
        f"resumed at v{resumed.version} with {resumed.record_count} records"
    )
    snapshot = resumed.ingest(final_batch)
    print(
        f"v{snapshot.version}: +{len(final_batch)} records, "
        f"{snapshot.accepted_matches} accepted"
    )

    print("\n== equivalence against a full batch recompute ==")
    pipeline, _ = build_pipeline_and_index(CONFIG)
    full_run = pipeline.run(Dataset(records, name="union"))
    stream_clusters = set(resumed.clusters().clusters)
    batch_clusters = set(full_run.experiment.clustering().clusters)
    assert stream_clusters == batch_clusters, "clusterings must be identical"
    compared = sum(s.delta_candidates for s in resumed.snapshots)
    print(
        f"identical clusters: {len(stream_clusters)} duplicate groups\n"
        f"streaming compared {compared} pairs across "
        f"{resumed.version} ingests; every full re-run would have "
        f"compared {len(full_run.candidates)} pairs *per batch*"
    )

    print("\n== snapshot lineage ==")
    for entry in store.stream_snapshot_lineage("customers"):
        print(
            f"v{entry['version']} (parent "
            f"{entry['parent_version']}): records={entry['record_count']} "
            f"clusters={entry['cluster_count']} "
            f"pairs={entry['pair_count']}"
        )


if __name__ == "__main__":
    main()
