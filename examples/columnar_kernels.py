#!/usr/bin/env python3
"""Columnar comparison kernels: batch-score candidate pairs.

The matching pipeline's comparison stage can run in two modes that
produce byte-identical similarity vectors:

- the scalar loop — one Python call per (pair, attribute), and
- the columnar path (:mod:`repro.columnar`) — records re-laid-out as
  interned per-attribute id columns, whole candidate blocks scored by
  vectorized kernels that compute each *distinct* value pair once.

This example builds both, shows the store's layout, proves the scores
are bitwise equal, and reads the kernel telemetry counters to show how
much scoring work deduplication saved.

Run with::

    python examples/columnar_kernels.py
"""

from __future__ import annotations

import struct
import time

from repro.datagen import make_person_benchmark
from repro.streaming import build_pipeline_and_index
from repro.telemetry.metrics import get_metrics

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "monge_elkan",
        "street": "token_jaccard",
        "city": "ngram_jaccard",
        "zip": "numeric",
    },
    "threshold": 0.82,
}


def main() -> None:
    benchmark = make_person_benchmark(600, seed=11)

    columnar_pipeline, _ = build_pipeline_and_index(CONFIG)
    scalar_pipeline, _ = build_pipeline_and_index(
        {**CONFIG, "columnar": False}
    )

    # --- 1. The columnar layout ---------------------------------------------
    prepared = columnar_pipeline.prepare(benchmark.dataset)
    store = prepared.columnar_store()
    print("=== Columnar store ===")
    print(f"  rows:            {len(store)}")
    print(f"  attributes:      {', '.join(store.attributes)}")
    print(f"  distinct values: {store.distinct_values}")
    column = store.column("last_name")
    print(f"  last_name column head: {column[:8].tolist()}  (interned ids)")

    # --- 2. Score the same block both ways ----------------------------------
    candidates = columnar_pipeline.generate_candidates(prepared)
    metrics = get_metrics()
    pairs_before = metrics.counter("frost_kernel_pairs_total").value
    distinct_before = metrics.counter("frost_kernel_distinct_pairs_total").value

    started = time.perf_counter()
    fast = columnar_pipeline.compare_candidates(prepared, candidates)
    columnar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    slow = scalar_pipeline.compare_candidates(prepared, candidates)
    scalar_seconds = time.perf_counter() - started

    # --- 3. Byte-identity ----------------------------------------------------
    def bits(value):
        return None if value is None else struct.pack("<d", value)

    mismatches = sum(
        1
        for fast_vector, slow_vector in zip(fast, slow)
        for attribute in slow_vector.values
        if bits(fast_vector.values[attribute])
        != bits(slow_vector.values[attribute])
    )
    print("\n=== Scores ===")
    print(f"  candidate pairs: {len(candidates)}")
    print(f"  scalar loop:     {scalar_seconds * 1000:7.1f} ms")
    print(f"  columnar:        {columnar_seconds * 1000:7.1f} ms")
    print(f"  bitwise mismatches: {mismatches} (must be 0)")

    # --- 4. What deduplication saved ----------------------------------------
    pairs_scored = metrics.counter("frost_kernel_pairs_total").value - pairs_before
    distinct = (
        metrics.counter("frost_kernel_distinct_pairs_total").value
        - distinct_before
    )
    comparisons = pairs_scored * len(CONFIG["similarities"])
    print("\n=== Kernel telemetry ===")
    print(f"  pairs through kernels:        {pairs_scored}")
    print(f"  raw (pair, attribute) scores: {comparisons}")
    print(f"  distinct value-pair scores:   {distinct}")
    if comparisons:
        print(f"  deduplication factor:         {comparisons / max(distinct, 1):.1f}x")


if __name__ == "__main__":
    main()
