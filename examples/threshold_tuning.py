#!/usr/bin/env python3
"""Find the best similarity threshold with metric/metric diagrams.

The similarity threshold has a large impact on matching quality
(Appendix D).  This example builds a synthetic person benchmark, runs a
real matching pipeline that scores every candidate pair, and then uses
Frost's optimized diagram algorithm to sweep thresholds:

* an ASCII precision/recall curve (Figure 3),
* the threshold maximizing f1,
* how much f1 the pipeline's configured threshold left on the table —
  the §5.4 insight ("two matching solutions had not selected the
  optimal similarity threshold; selecting a higher similarity threshold
  would have increased their f1 score by 8% and 6%").

Run with::

    python examples/threshold_tuning.py
"""

from __future__ import annotations

from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import compute_diagram_optimized
from repro.datagen import make_person_benchmark
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    first_token_key,
    standard_blocking,
)
from repro.metrics.pairwise import f1_score, precision, recall


def main() -> None:
    benchmark = make_person_benchmark(400, seed=7)
    dataset, gold = benchmark.dataset, benchmark.gold
    print(f"dataset: {len(dataset)} records, {gold.pair_count()} true pairs")

    # A deliberately mis-configured pipeline: its threshold (0.5) is far
    # from optimal for this dataset.
    pipeline = MatchingPipeline(
        candidate_generator=lambda ds: standard_blocking(
            ds, first_token_key("last_name")
        ),
        comparator=AttributeComparator(
            {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "street": "token_jaccard",
                "city": "levenshtein",
                "zip": "exact",
            }
        ),
        decision_model=WeightedAverageModel(
            {"first_name": 2, "last_name": 2, "street": 1, "city": 1, "zip": 1}
        ),
        threshold=0.5,
        name="person-run",
        solution="weighted-average",
    )

    # An experiment carrying *all* scored candidates lets the diagram
    # sweep thresholds meaningfully (§4.5.1).
    experiment = pipeline.scored_experiment(dataset)
    points = compute_diagram_optimized(dataset, experiment, gold, samples=40)

    # --- ASCII precision/recall curve -----------------------------------------
    print("\n=== Precision/recall curve (40 thresholds) ===")
    width = 50
    print(f"  {'thr':>5}  {'recall':>6}  {'prec':>5}  precision bar")
    for point in points:
        if point.threshold is None:
            continue
        p, r = precision(point.matrix), recall(point.matrix)
        bar = "#" * round(p * width)
        print(f"  {point.threshold:5.2f}  {r:6.3f}  {p:5.3f}  {bar}")

    # --- Optimal threshold -----------------------------------------------------
    def f1_at(matrix: ConfusionMatrix) -> float:
        return f1_score(matrix)

    scored = [
        (f1_at(point.matrix), point.threshold)
        for point in points
        if point.threshold is not None
    ]
    best_f1, best_thr = max(scored)
    configured = pipeline.threshold
    configured_f1 = max(
        (f1 for f1, thr in scored if thr is not None and thr <= configured),
        default=0.0,
    )

    print("\n=== Threshold tuning verdict ===")
    print(f"  configured threshold: {configured:.2f}  ->  f1 = {configured_f1:.3f}")
    print(f"  optimal threshold:    {best_thr:.2f}  ->  f1 = {best_f1:.3f}")
    gain = best_f1 - configured_f1
    if gain > 0.005:
        print(f"  selecting the optimal threshold gains {gain * 100:.1f} f1 points")
    else:
        print("  the configured threshold is already (near-)optimal")


if __name__ == "__main__":
    main()
