#!/usr/bin/env python3
"""Choose a matching solution with soft KPIs (§3.3, §5.5).

Quality metrics alone do not decide a purchase: costs, configuration
effort, deployment types, and interfaces matter too.  This example

1. measures the *hard* quality of three candidate solutions on a
   reference benchmark,
2. attaches their *soft* KPI sheets (lifecycle expenditures,
   categorical KPIs),
3. renders Frost's decision matrix,
4. aggregates hard and soft KPIs into a use-case-specific score,
5. runs the effort-study simulator and answers the FEVER question
   "how much effort is needed to reach 80% f1?" (Figure 6).

Run with::

    python examples/soft_kpi_decision.py
"""

from __future__ import annotations

from repro.core.confusion import ConfusionMatrix
from repro.datagen import make_person_benchmark
from repro.kpis import (
    DeploymentType,
    Effort,
    EffortStudySimulator,
    InterfaceType,
    KpiDecisionMatrix,
    LifecycleExpenditures,
    MatchingTechnique,
    SolutionEntry,
    SolutionProfile,
    SolutionProperties,
    effort_to_reach,
    render_effort_diagram,
)
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    first_token_key,
    standard_blocking,
)
from repro.metrics.pairwise import f1_score, precision, recall


def measure_quality(pipeline: MatchingPipeline, dataset, gold) -> dict[str, float]:
    """Hard quality metrics of one pipeline on the reference benchmark."""
    experiment = pipeline.run(dataset).experiment
    matrix = ConfusionMatrix.from_clusterings(
        experiment.clustering(), gold.clustering, dataset.total_pairs()
    )
    return {
        "precision": precision(matrix),
        "recall": recall(matrix),
        "f1": f1_score(matrix),
    }


def make_pipeline(threshold: float, name: str) -> MatchingPipeline:
    return MatchingPipeline(
        candidate_generator=lambda ds: standard_blocking(
            ds, first_token_key("last_name")
        ),
        comparator=AttributeComparator(
            {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "street": "token_jaccard",
                "city": "levenshtein",
                "zip": "exact",
                "phone": "exact",
            }
        ),
        decision_model=WeightedAverageModel(
            {
                "first_name": 2,
                "last_name": 2,
                "street": 1,
                "city": 1,
                "zip": 2,
                "phone": 2,
            }
        ),
        threshold=threshold,
        name=name,
        solution=name,
    )


def main() -> None:
    benchmark = make_person_benchmark(500, seed=13)
    dataset, gold = benchmark.dataset, benchmark.gold

    # --- Solution KPI sheets (values supplied by the user, §3.3) -----------------
    solutions = [
        (
            make_pipeline(0.72, "rules-pro"),
            SolutionProperties(
                name="rules-pro",
                lifecycle=LifecycleExpenditures(
                    general_costs=25_000.0,
                    production_readiness=Effort(hr_amount=40, expertise=60),
                    domain_configuration=Effort(hr_amount=60, expertise=80),
                    technical_configuration=Effort(hr_amount=20, expertise=70),
                ),
                deployment_types=frozenset({DeploymentType.ON_PREMISE}),
                interfaces=frozenset({InterfaceType.GUI, InterfaceType.API}),
                techniques=frozenset({MatchingTechnique.RULE_BASED}),
            ),
        ),
        (
            make_pipeline(0.66, "ml-cloud"),
            SolutionProperties(
                name="ml-cloud",
                lifecycle=LifecycleExpenditures(
                    general_costs=60_000.0,
                    production_readiness=Effort(hr_amount=15, expertise=50),
                    domain_configuration=Effort(hr_amount=100, expertise=40),
                    technical_configuration=Effort(hr_amount=10, expertise=90),
                ),
                deployment_types=frozenset({DeploymentType.CLOUD}),
                interfaces=frozenset({InterfaceType.API}),
                techniques=frozenset({MatchingTechnique.MACHINE_LEARNING}),
            ),
        ),
        (
            make_pipeline(0.80, "oss-toolkit"),
            SolutionProperties(
                name="oss-toolkit",
                lifecycle=LifecycleExpenditures(
                    general_costs=0.0,
                    production_readiness=Effort(hr_amount=120, expertise=85),
                    domain_configuration=Effort(hr_amount=80, expertise=85),
                    technical_configuration=Effort(hr_amount=60, expertise=90),
                ),
                deployment_types=frozenset(
                    {DeploymentType.ON_PREMISE, DeploymentType.HYBRID}
                ),
                interfaces=frozenset({InterfaceType.CLI, InterfaceType.API}),
                techniques=frozenset(
                    {MatchingTechnique.RULE_BASED, MatchingTechnique.CLUSTERING}
                ),
            ),
        ),
    ]

    # --- Decision matrix ----------------------------------------------------------
    entries = [
        SolutionEntry(
            properties=properties,
            quality_metrics=measure_quality(pipeline, dataset, gold),
        )
        for pipeline, properties in solutions
    ]
    matrix = KpiDecisionMatrix(entries)
    print("=== KPI decision matrix ===")
    print(matrix.render(metrics=("precision", "recall", "f1")))

    # --- Use-case-specific aggregation ---------------------------------------------
    # This buyer weighs f1 heavily, penalizes cost, and requires an API.
    def buyer_score(entry: SolutionEntry) -> float:
        if InterfaceType.API not in entry.properties.interfaces:
            return float("-inf")
        cost = entry.properties.lifecycle.total_cost()
        return entry.quality_metrics["f1"] * 100 - cost / 10_000

    print("\n=== Aggregated buyer scores (higher is better) ===")
    for name, score in sorted(
        matrix.aggregate(buyer_score).items(), key=lambda kv: -kv[1]
    ):
        print(f"  {name}: {score:.2f}")
    print(f"  -> recommended: {matrix.best(buyer_score).name}")

    # --- Effort diagrams (Figure 6) --------------------------------------------------
    print("\n=== Effort study: f1 against configuration effort ===")
    simulator = EffortStudySimulator(
        dataset=dataset,
        gold=gold,
        profiles=[
            SolutionProfile("rules-pro", out_of_box=0.35, plateau=0.82,
                            breakthrough_hours=6.0),
            SolutionProfile("ml-cloud", out_of_box=0.20, plateau=0.93,
                            breakthrough_hours=9.0),
            SolutionProfile("oss-toolkit", out_of_box=0.45, plateau=0.78,
                            breakthrough_hours=4.0),
        ],
        total_hours=24.0,
        seed=2,
    )
    curves = simulator.run()
    print(render_effort_diagram(curves))
    print("\nEffort needed to reach 80% f1 (the FEVER question [38]):")
    for curve in curves:
        hours = effort_to_reach(curve, 0.80)
        answer = f"{hours:.0f} h" if hours is not None else "never reached"
        print(f"  {curve.solution}: {answer}")


if __name__ == "__main__":
    main()
