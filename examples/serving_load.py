"""Serving layer walkthrough: cache, coalescing, and /stats.

Starts the concurrent HTTP front-end over a small generated benchmark,
fires concurrent clients at the expensive evaluation routes, and shows
what the serving layer (repro.serving) did about it: cold requests
compute once, warm requests are served from the read-through payload
cache, concurrent identical requests coalesce into a single
computation, and a registry write invalidates exactly the touched
dataset's entries.

Run with::

    PYTHONPATH=src python examples/serving_load.py
"""

import http.client
import json
import threading

from repro.core import Experiment
from repro.core.platform import FrostPlatform
from repro.datagen import make_person_benchmark, scored_benchmark_experiment
from repro.server.api import FrostApi
from repro.server.http import FrostHttpServer

CLIENTS = 6


def fetch(port: int, path: str) -> dict:
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        connection.request("GET", path)
        return json.loads(connection.getresponse().read())
    finally:
        connection.close()


def main() -> None:
    benchmark = make_person_benchmark(300, seed=11)
    platform = FrostPlatform()
    platform.add_dataset(benchmark.dataset)
    platform.add_gold(benchmark.dataset.name, benchmark.gold)
    experiment = scored_benchmark_experiment(
        benchmark, target_matches=200, seed=3, name="run-a"
    )
    platform.add_experiment(benchmark.dataset.name, experiment)
    dataset, gold = benchmark.dataset.name, benchmark.gold.name

    api = FrostApi(platform)
    with FrostHttpServer(api, port=0) as server:
        print(f"serving on http://127.0.0.1:{server.port} (ephemeral port)")
        path = f"/datasets/{dataset}/metrics?gold={gold}"

        # -- 1. concurrent identical cold requests coalesce ------------------
        barrier = threading.Barrier(CLIENTS)
        results = []

        def client() -> None:
            barrier.wait(timeout=30)
            results.append(fetch(server.port, path))

        threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        stats = fetch(server.port, "/stats")["serving"]
        print(
            f"{CLIENTS} concurrent identical requests -> "
            f"{stats['computations']} computation "
            f"({stats['coalescer']['followers']} coalesced, "
            f"{stats['cache']['hits']} cache hits)"
        )
        assert all(result == results[0] for result in results)

        # -- 2. warm traffic is served from the payload cache ----------------
        for _ in range(20):
            fetch(server.port, path)
        stats = fetch(server.port, "/stats")["serving"]
        print(
            f"after 20 warm reads: computations still {stats['computations']}, "
            f"cache hits {stats['cache']['hits']}"
        )

        # -- 3. a registry write invalidates the dataset's entries -----------
        platform.add_experiment(
            dataset, Experiment([("p1", "p2", 0.9)], name="run-b")
        )
        refreshed = fetch(server.port, path)
        stats = fetch(server.port, "/stats")["serving"]
        print(
            f"registered 'run-b' -> invalidations "
            f"{stats['cache']['invalidations']}, metrics table now covers "
            f"{sorted(refreshed['metrics'])} "
            f"(computations {stats['computations']})"
        )
    print("shut down cleanly; socket released")


if __name__ == "__main__":
    main()
