#!/usr/bin/env python3
"""Threshold parameter sweep through the experiment execution engine.

The engine (:mod:`repro.engine`) runs declarative jobs on a worker pool
and serves identical re-runs from a content-addressed result cache.
This example:

1. builds a synthetic person benchmark and scores every candidate pair
   with a real matching pipeline (submitted as an engine job);
2. fans a **batch threshold sweep** out over the worker pool — one
   metrics job per threshold, executed concurrently;
3. re-runs the identical sweep and shows that every job is answered
   from the cache (zero recomputation), the paper's "efficient
   exploration" hot path.

Run with::

    python examples/engine_sweep.py
"""

from __future__ import annotations

import time

from repro.core.platform import FrostPlatform
from repro.datagen import make_person_benchmark
from repro.engine import ExperimentEngine, JobSpec
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    first_token_key,
    standard_blocking,
)


def block_on_last_name(dataset):
    """Candidate generation: standard blocking on the last name."""
    return standard_blocking(dataset, first_token_key("last_name"))


def main() -> None:
    benchmark = make_person_benchmark(400, seed=7)
    dataset, gold = benchmark.dataset, benchmark.gold

    platform = FrostPlatform()
    platform.add_dataset(dataset)
    platform.add_gold(dataset.name, gold)
    print(f"dataset: {len(dataset)} records, {gold.pair_count()} true pairs")

    pipeline = MatchingPipeline(
        candidate_generator=block_on_last_name,
        comparator=AttributeComparator(
            {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "street": "token_jaccard",
                "city": "levenshtein",
                "zip": "exact",
            }
        ),
        decision_model=WeightedAverageModel(
            {"first_name": 2, "last_name": 2, "street": 1, "city": 1, "zip": 1}
        ),
        threshold=0.5,
        name="person-run",
    )

    engine = ExperimentEngine(platform, max_workers=4)

    # 1. The pipeline run itself is an engine job; the experiment it
    #    produces is registered on the platform for the sweep below.
    engine.run(
        [JobSpec("pipeline", {"pipeline": pipeline, "dataset": dataset.name},
                 job_id="pipeline")]
    )
    print(f"pipeline registered: {platform.experiment_names(dataset.name)}")

    # 2. Fan a threshold sweep out over the worker pool.
    thresholds = [round(0.50 + step * 0.05, 2) for step in range(9)]

    def run_sweep(label: str, sweep_id: str) -> None:
        base = JobSpec(
            "metrics",
            {
                "dataset": dataset.name,
                "gold": gold.name,
                "experiments": ["person-run"],
                "metrics": ["precision", "recall", "f1"],
            },
            job_id=sweep_id,
        )
        started = time.perf_counter()
        job_ids = engine.sweep(base, "threshold", thresholds)
        engine.start()
        engine.join(job_ids)
        elapsed = time.perf_counter() - started
        cached = sum(engine.result(job_id).cached for job_id in job_ids)
        print(f"\n{label}: {len(job_ids)} jobs in {elapsed * 1000:.1f}ms "
              f"({cached} served from cache)")
        print("threshold  precision  recall  f1")
        best = None
        for job_id, threshold in zip(job_ids, thresholds):
            row = engine.result(job_id).value["metrics"]["person-run"]
            print(f"{threshold:9.2f}  {row['precision']:9.4f}  "
                  f"{row['recall']:6.4f}  {row['f1']:.4f}")
            if best is None or row["f1"] > best[1]:
                best = (threshold, row["f1"])
        print(f"best threshold: {best[0]:.2f} (f1={best[1]:.4f})")

    run_sweep("cold sweep", "sweep")

    # 3. Identical re-run (fresh job ids, same content): every job is
    #    content-addressed to the same cache keys, so nothing is
    #    recomputed.
    run_sweep("cached re-run", "sweep-rerun")

    stats = engine.cache.stats()
    print(f"\ncache: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['puts']} stored payloads")


if __name__ == "__main__":
    main()
