#!/usr/bin/env python3
"""Systematically explore one matching result (§4).

Real result sets are too large for manual inspection, so Frost reduces
the pairs shown, sorts them by interestingness, and enriches them with
error context.  This example runs one pipeline on a person benchmark
and walks every §4 technique:

1. pair selection: pairs around the threshold (§4.2.1), misclassified
   outliers (§4.2.2), percentile partitions with representatives
   (§4.2.3), plain result pairs (§4.2.4),
2. sorting by column entropy (§4.3.2),
3. nearest-correct-pair error analysis (§4.4),
4. attribute sparsity (nullRatio, §4.5.2) and attribute equality
   (equalRatio, §4.5.3) bar charts,
5. error categorization (§7) as the summary.

Run with::

    python examples/result_exploration.py
"""

from __future__ import annotations

from repro.datagen import make_person_benchmark
from repro.exploration import (
    ColumnEntropyModel,
    ErrorAnalysis,
    categorize_errors,
    equal_ratios,
    misclassified_outliers,
    null_ratios,
    pairs_around_threshold,
    percentile_partitions,
    plain_result_pairs,
    render_bar_chart,
)
from repro.matching import (
    AttributeComparator,
    MatchingPipeline,
    WeightedAverageModel,
    first_token_key,
    standard_blocking,
)

THRESHOLD = 0.74


def describe(dataset, pair) -> str:
    left, right = dataset[pair[0]], dataset[pair[1]]
    return (
        f"{left.value('first_name')} {left.value('last_name')} "
        f"({left.value('city')}) ~ "
        f"{right.value('first_name')} {right.value('last_name')} "
        f"({right.value('city')})"
    )


def main() -> None:
    benchmark = make_person_benchmark(500, seed=31)
    dataset, gold = benchmark.dataset, benchmark.gold
    pipeline = MatchingPipeline(
        candidate_generator=lambda ds: standard_blocking(
            ds, first_token_key("last_name")
        ),
        comparator=AttributeComparator(
            {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "street": "token_jaccard",
                "city": "levenshtein",
                "zip": "exact",
            }
        ),
        decision_model=WeightedAverageModel(
            {"first_name": 2, "last_name": 2, "street": 1, "city": 1, "zip": 2}
        ),
        threshold=THRESHOLD,
        name="explored-run",
    )
    run = pipeline.run(dataset)
    experiment = run.experiment
    scored = run.scored_pairs
    print(
        f"{len(dataset)} records, {len(scored)} scored candidates, "
        f"{len(experiment)} matches at threshold {THRESHOLD}"
    )

    # --- 1a. pairs around the threshold (§4.2.1) -------------------------------
    print("\n=== Uncertain pairs around the threshold ===")
    for sp in pairs_around_threshold(scored, THRESHOLD, k=6):
        marker = "MATCH   " if sp.score >= THRESHOLD else "NO MATCH"
        truth = "dup" if gold.is_duplicate(*sp.pair) else "non-dup"
        print(f"  {sp.score:.3f} {marker} ({truth})  {describe(dataset, sp.pair)}")

    # --- 1b. misclassified outliers (§4.2.2) ------------------------------------
    print("\n=== Confident mistakes (misclassified outliers) ===")
    for sp in misclassified_outliers(scored, THRESHOLD, gold, k=4):
        kind = "false positive" if sp.score >= THRESHOLD else "false negative"
        print(f"  {sp.score:.3f} {kind}:  {describe(dataset, sp.pair)}")

    # --- 1c. percentile partitions (§4.2.3) --------------------------------------
    print("\n=== Percentile partitions with class-based representatives ===")
    partitions = percentile_partitions(
        scored, partitions=4, budget_per_partition=2,
        gold=gold, threshold=THRESHOLD, sampler="class",
    )
    for partition in partitions:
        matrix = partition.matrix
        confidence = (
            "confident" if matrix and matrix.false_positives + matrix.false_negatives == 0
            else "needs attention"
        )
        low, high = partition.low_score, partition.high_score
        print(f"  scores [{low:.2f}, {high:.2f}] — {confidence}")
        for sp in partition.representatives:
            print(f"    {sp.score:.3f}  {describe(dataset, sp.pair)}")

    # --- 1d. plain result pairs (§4.2.4) ------------------------------------------
    original = plain_result_pairs(experiment)
    added = len(experiment) - len(original)
    print(
        f"\n{len(original)} pairs labeled by the decision model; "
        f"{added} added by transitive closure (hidden by §4.2.4)"
    )

    # --- 2. column-entropy sorting (§4.3.2) ----------------------------------------
    print("\n=== False negatives sorted by column entropy (rare-token pairs first) ===")
    entropy = ColumnEntropyModel(dataset)
    false_negatives = sorted(gold.pairs() - experiment.pairs())
    ranked = sorted(
        false_negatives, key=lambda p: -entropy.pair_entropy(p)
    )
    for pair in ranked[:3]:
        print(f"  entropy {entropy.pair_entropy(pair):7.2f}  {describe(dataset, pair)}")

    # --- 3. nearest-correct-pair error analysis (§4.4) ------------------------------
    print("\n=== Why was this pair missed? (nearest correct pair) ===")
    analysis = ErrorAnalysis(dataset)
    true_positives = sorted(experiment.pairs() & gold.pairs())
    if false_negatives and true_positives:
        failed = false_negatives[0]
        explanation = analysis.explain(failed, true_positives[:200])
        print(f"  failed:  {describe(dataset, failed)}")
        if explanation.nearest_correct_pair:
            print(f"  nearest correctly classified pair "
                  f"(score {explanation.score:.3f}):")
            print(f"           {describe(dataset, explanation.nearest_correct_pair)}")

    # --- 4. attribute sparsity & equality (§4.5.2, §4.5.3) ---------------------------
    population = {sp.pair for sp in scored}
    print("\n=== nullRatio per attribute (missing values vs errors) ===")
    print(render_bar_chart(
        null_ratios(dataset, experiment, gold, pair_population=population),
        title="nullRatio",
    ))
    print("\n=== equalRatio per attribute (equal values vs errors) ===")
    print(render_bar_chart(
        equal_ratios(dataset, experiment, gold, pair_population=population),
        title="equalRatio",
    ))

    # --- 5. error categorization (§7) --------------------------------------------------
    print("\n=== Error categorization summary ===")
    categorization = categorize_errors(dataset, experiment, gold, limit=300)
    print(categorization.render_report())
    weakness = categorization.dominant_weakness()
    if weakness:
        print(f"  -> the solution is especially weak on: {weakness.value}")


if __name__ == "__main__":
    main()
