#!/usr/bin/env python3
"""Quickstart: benchmark two matching runs against a gold standard.

This walks the core Frost workflow end-to-end on a ten-record customer
dataset:

1. build a :class:`~repro.core.records.Dataset` and its gold standard,
2. register two experiments (matching-solution outputs) on the
   :class:`~repro.FrostPlatform`,
3. read the N-Metrics viewer table (precision / recall / f1 / ...),
4. compare the runs set-wise (the interactive Venn diagram of Figure 1),
5. plot a precision/recall curve over similarity thresholds (Figure 3).

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Dataset, Experiment, FrostPlatform, GoldStandard, Record
from repro.core.diagrams import compute_diagram_optimized, metric_metric_series
from repro.metrics.pairwise import precision, recall


def build_dataset() -> Dataset:
    """Ten customer records; c1/c2/c3, c4/c5, and c8/c9 are duplicates."""
    rows = [
        ("c1", "john", "smith", "12 oak st", "springfield"),
        ("c2", "jon", "smith", "12 oak street", "springfield"),
        ("c3", "john", "smyth", "12 oak st.", "springfield"),
        ("c4", "mary", "jones", "5 elm ave", "riverside"),
        ("c5", "mary", "jones", "5 elm avenue", "riverside"),
        ("c6", "alice", "brown", "77 pine rd", "salem"),
        ("c7", "robert", "taylor", "3 main st", "georgetown"),
        ("c8", "bob", "taylor jr", "41 lake dr", "fairview"),
        ("c9", "bob", "taylor", "41 lake drive", "fairview"),
        ("c10", "carol", "white", "9 hill ct", "madison"),
    ]
    return Dataset(
        [
            Record(rid, {"first": f, "last": l, "street": s, "city": c})
            for rid, f, l, s, c in rows
        ],
        name="customers",
    )


def main() -> None:
    dataset = build_dataset()
    gold = GoldStandard.from_pairs(
        [("c1", "c2"), ("c2", "c3"), ("c4", "c5"), ("c8", "c9")],
        name="gold",
    )

    # Two runs of (hypothetical) matching solutions.  Frost does not
    # execute solutions itself; it takes their results as input (§1.1).
    run_1 = Experiment(
        [
            ("c1", "c2", 0.95),
            ("c2", "c3", 0.81),
            ("c1", "c3", 0.78),
            ("c4", "c5", 0.92),
            ("c8", "c9", 0.67),
            ("c6", "c10", 0.55),  # false positive
        ],
        name="run-1",
        solution="rule-based",
    )
    run_2 = Experiment(
        [
            ("c1", "c2", 0.97),
            ("c4", "c5", 0.88),
            ("c7", "c9", 0.61),  # false positive
        ],
        name="run-2",
        solution="ml-model",
    )

    platform = FrostPlatform()
    platform.add_dataset(dataset)
    platform.add_gold(dataset.name, gold)
    platform.add_experiment(dataset.name, run_1)
    platform.add_experiment(dataset.name, run_2)

    # --- 1. N-Metrics viewer -------------------------------------------------
    print("=== Quality metrics (N-Metrics viewer) ===")
    table = platform.metrics_table(
        dataset.name, "gold", metric_names=["precision", "recall", "f1", "matthews_correlation"]
    )
    header = ["experiment", "precision", "recall", "f1", "matthews_correlation"]
    print("  ".join(h.ljust(10) for h in header))
    for experiment_name, metrics in sorted(table.items()):
        cells = [experiment_name] + [
            f"{metrics[m]:.3f}" for m in ("precision", "recall", "f1", "matthews_correlation")
        ]
        print("  ".join(c.ljust(10) for c in cells))

    # --- 2. Set-based comparison (Figure 1) ----------------------------------
    print("\n=== Venn regions: run-1 vs run-2 vs gold ===")
    comparison = platform.compare_sets(dataset.name, ["run-1", "run-2", "gold"])
    for label, size in sorted(comparison.region_sizes().items()):
        print(f"  {label}: {size} pair(s)")

    missed_by_run_2 = comparison.select(include=["gold", "run-1"], exclude=["run-2"])
    print("\nGround-truth matches run-1 found and run-2 did not (Figure 1):")
    for first, second in comparison.enriched(missed_by_run_2):
        print(f"  {first.record_id}: {first.values}")
        print(f"  {second.record_id}: {second.values}")
        print()

    # --- 3. Precision/recall curve (Figure 3) --------------------------------
    print("=== Precision/recall over similarity thresholds (run-1) ===")
    points = compute_diagram_optimized(dataset, run_1, gold, samples=7)
    series = metric_metric_series(points, recall, precision)
    print("  threshold  recall  precision")
    for point, (recall_value, precision_value) in zip(points, series):
        threshold = "inf" if point.threshold is None else f"{point.threshold:.2f}"
        print(f"  {threshold:>9}  {recall_value:6.3f}  {precision_value:9.3f}")


if __name__ == "__main__":
    main()
