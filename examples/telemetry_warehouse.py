#!/usr/bin/env python3
"""The telemetry warehouse: persist, query, and diff traced runs.

Span trees and metric snapshots are ephemeral — they die with the
process.  The warehouse (:mod:`repro.telemetry.store`) persists them
into indexed SQLite tables so performance questions become SQL
queries.  This example:

1. runs a traced + sampled matching pipeline twice (the second run is
   faster: the comparison work is already cached) and records each run
   into a warehouse file, profiler samples included;
2. lists the stored runs and asks the warehouse for the slowest spans —
   the sort happens in SQLite over a ``(run_id, seconds DESC)`` index;
3. diffs the two runs per stage, the answer to "which stage regressed
   between yesterday's run and today's?";
4. round-trips one run's span tree back out of the warehouse and
   renders it.

Run with::

    python examples/telemetry_warehouse.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.platform import FrostPlatform
from repro.datagen import make_person_benchmark
from repro.engine import ExperimentEngine, JobSpec
from repro.streaming import build_pipeline_and_index
from repro.telemetry import (
    SamplingProfiler,
    TelemetryStore,
    get_metrics,
    get_tracer,
    render_span_tree,
)

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "city": "jaro_winkler",
    },
    "threshold": 0.8,
}


def traced_run(platform: FrostPlatform, dataset_name: str, tag: str) -> None:
    pipeline, _ = build_pipeline_and_index(CONFIG)
    engine = ExperimentEngine(platform, max_workers=2)
    tracer = get_tracer()
    with tracer.span("warehouse.example", run=tag):
        engine.submit(
            JobSpec(
                "pipeline",
                {"pipeline": pipeline, "dataset": dataset_name},
                job_id=f"warehouse:{tag}",
            )
        )
        engine.run()


def main() -> None:
    benchmark = make_person_benchmark(300, seed=7)
    platform = FrostPlatform()
    platform.add_dataset(benchmark.dataset)

    tracer = get_tracer()
    registry = get_metrics()
    tracer.reset()
    registry.reset()
    tracer.enable()

    with tempfile.TemporaryDirectory() as tmp:
        warehouse_path = Path(tmp) / "telemetry.db"
        with TelemetryStore(warehouse_path, max_runs=10) as warehouse:
            run_ids = []
            for tag in ("baseline", "candidate"):
                tracer.reset()
                profiler = SamplingProfiler(interval=0.002)
                try:
                    with profiler:
                        traced_run(platform, benchmark.dataset.name, tag)
                finally:
                    profiler.stop()
                run_ids.append(
                    warehouse.record_run(
                        tag,
                        tracer.roots(),
                        registry,
                        profile_samples=profiler.samples() or None,
                        context={"records": len(benchmark.dataset)},
                    )
                )
            tracer.disable()

            print("stored runs:")
            for run in warehouse.list_runs():
                print(
                    f"  run {run['run_id']}: {run['name']}, "
                    f"{run['spans']} spans, "
                    f"{run['profile_samples']} profile samples"
                )

            print()
            print("slowest spans (SQL pushdown):")
            for row in warehouse.slowest_spans(limit=5):
                print(
                    f"  run {row['run_id']}: {row['name']}  "
                    f"{row['seconds'] * 1000:.2f} ms"
                )

            print()
            print("per-stage diff (baseline -> candidate):")
            for row in warehouse.diff_runs(run_ids[0], run_ids[1]):
                if row["delta_seconds"] is None:
                    continue
                print(
                    f"  {row['stage']}: {row['seconds_a'] * 1000:.2f} -> "
                    f"{row['seconds_b'] * 1000:.2f} ms"
                )

            print()
            print("round-tripped baseline trace:")
            for root in warehouse.run_spans(run_ids[0]):
                print(render_span_tree(root))


if __name__ == "__main__":
    main()
