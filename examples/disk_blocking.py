#!/usr/bin/env python3
"""Disk-backed blocking: push candidate generation into SQLite.

Every in-memory blocker keeps its block membership lists *and* the full
candidate set in Python memory, so RAM bounds the corpus you can block.
With ``blocking_storage="disk"`` the pipeline spills ``(block_key,
record_id)`` rows into indexed SQLite tables and generates pairs with a
SQL self-join, streamed back in bounded chunks — identical candidates,
O(chunk) Python memory.

This example shows:

1. the pipeline knob — same config, same fingerprint, same output;
2. the streaming piecewise API — spill batches, then stream candidate
   chunks without ever materializing the set;
3. the telemetry the disk path emits (rows spilled, chunks, runs).

Run with::

    python examples/disk_blocking.py
"""

from __future__ import annotations

import time

from repro.blocking_disk import DiskBlockingStore, spill_records, standard_plan
from repro.datagen import make_person_benchmark
from repro.matching.blocking import first_token_key
from repro.streaming import build_pipeline_and_index
from repro.telemetry.metrics import get_metrics

CONFIG = {
    "key": {"kind": "first_token", "attribute": "zip"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "city": "jaro_winkler",
    },
    "threshold": 0.85,
}


def main() -> None:
    benchmark = make_person_benchmark(2_000, seed=23)
    dataset = benchmark.dataset

    # --- 1. The pipeline knob ------------------------------------------------
    memory_pipeline, _ = build_pipeline_and_index(CONFIG)
    disk_pipeline, _ = build_pipeline_and_index(
        {**CONFIG, "blocking_storage": "disk"}
    )
    assert (
        memory_pipeline.config_fingerprint()
        == disk_pipeline.config_fingerprint()
    ), "an execution knob must not split the engine's result cache"

    prepared = memory_pipeline.prepare(dataset)
    started = time.perf_counter()
    memory_pairs = memory_pipeline.generate_candidates(prepared)
    memory_seconds = time.perf_counter() - started
    started = time.perf_counter()
    disk_pairs = disk_pipeline.generate_candidates(prepared)
    disk_seconds = time.perf_counter() - started

    print("=== Pipeline knob ===")
    print(f"  records:            {len(dataset)}")
    print(f"  memory candidates:  {len(memory_pairs)} "
          f"({memory_seconds * 1000:.1f} ms)")
    print(f"  disk candidates:    {len(disk_pairs)} "
          f"({disk_seconds * 1000:.1f} ms)")
    print(f"  set-identical:      {disk_pairs == memory_pairs} (must be True)")

    # --- 2. Piecewise spilling for larger-than-memory corpora ----------------
    # The real point of the disk path: the corpus arrives (or is
    # generated) in slices, each slice is spilled and dropped, and the
    # join output is consumed chunk by chunk — nothing scales with the
    # corpus except the SQLite file.
    plan = standard_plan(first_token_key("zip"), {"attribute": "zip"})
    with DiskBlockingStore(chunk_size=10_000) as store:
        run_id = store.begin_run(plan.scheme, dict(plan.config))
        for start in range(0, 3):
            batch = make_person_benchmark(1_000, seed=100 + start).dataset
            spill_records(store, run_id, plan, batch)
        candidate_count = 0
        chunk_count = 0
        for chunk in store.iter_candidate_chunks(run_id):
            candidate_count += len(chunk)
            chunk_count += 1
        print("\n=== Piecewise spill + streamed join ===")
        print(f"  membership rows:  {store.key_count(run_id)}")
        print(f"  distinct blocks:  {store.block_count(run_id)}")
        print(f"  candidate pairs:  {candidate_count} "
              f"in {chunk_count} chunk(s)")

    # --- 3. Telemetry --------------------------------------------------------
    metrics = get_metrics()
    print("\n=== Telemetry ===")
    for name in (
        "frost_blocking_disk_runs_total",
        "frost_blocking_rows_spilled_total",
        "frost_blocking_chunks_total",
        "frost_blocking_disk_fallback_total",
    ):
        print(f"  {name}: {metrics.counter(name).value}")


if __name__ == "__main__":
    main()
