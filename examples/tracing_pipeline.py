#!/usr/bin/env python3
"""End-to-end tracing of a matching pipeline run.

The telemetry subsystem (:mod:`repro.telemetry`) records every pipeline
stage as a span — including the engine job that wraps it and the
process-pool comparison shards inside it — and counts cache hits,
candidate pairs, and compared pairs in a process-wide metrics registry.
This example:

1. enables the default tracer and runs a parallel matching pipeline
   through the execution engine, twice (the second run hits the
   engine's result cache);
2. prints the resulting span tree — one line per stage, with wall time
   and annotations like pair counts and ``cached=True``;
3. prints the metrics registry in Prometheus text format, the same
   document ``GET /metrics`` serves.

Run with::

    python examples/tracing_pipeline.py
"""

from __future__ import annotations

from repro.datagen import make_person_benchmark
from repro.engine import ExperimentEngine, JobSpec
from repro.core.platform import FrostPlatform
from repro.streaming import build_pipeline_and_index
from repro.telemetry import get_metrics, get_tracer, render_span_tree
from repro.telemetry.export import render_prometheus

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "city": "jaro_winkler",
    },
    "threshold": 0.8,
}


def main() -> None:
    benchmark = make_person_benchmark(300, seed=7)
    dataset, gold = benchmark.dataset, benchmark.gold

    platform = FrostPlatform()
    platform.add_dataset(dataset)
    platform.add_gold(dataset.name, gold)

    pipeline, _ = build_pipeline_and_index(CONFIG)
    # Force the sharded process-pool comparison path so the trace shows
    # spans recorded inside pool workers and merged into the tree.
    pipeline = pipeline.with_parallelism(workers=2, shards=4, min_pairs=0)

    tracer = get_tracer()
    registry = get_metrics()
    tracer.reset()
    registry.reset()
    tracer.enable()
    try:
        engine = ExperimentEngine(platform, max_workers=2)
        with tracer.span("example.trace", records=len(dataset)):
            # Two identical jobs, chained so the second one finds the
            # first one's result in the content-addressed cache.
            first = engine.submit(
                JobSpec(
                    "pipeline",
                    {"pipeline": pipeline, "dataset": dataset.name},
                    job_id="traced#0",
                )
            )
            engine.submit(
                JobSpec(
                    "pipeline",
                    {"pipeline": pipeline, "dataset": dataset.name},
                    job_id="traced#1",
                    depends_on=(first,),
                )
            )
            results = engine.run()
    finally:
        tracer.disable()

    for job_id, result in sorted(results.items()):
        print(f"{job_id}: {result.state.value} (cached={result.cached})")

    for root in tracer.roots():
        print()
        print(render_span_tree(root))

    print()
    print(render_prometheus(registry), end="")


if __name__ == "__main__":
    main()
