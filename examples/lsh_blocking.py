#!/usr/bin/env python3
"""Approximate blocking with MinHash-LSH: tuning, pipeline, streaming.

Exact blockers sever a duplicate pair the moment a typo lands in the
blocking key; the quadratic ``full_pairs`` fallback does not scale.
MinHash-LSH (:mod:`repro.matching.lsh`) prunes the comparison space
*probabilistically* instead.  This example:

1. sweeps ``(num_perm, bands, rows)`` configurations on a dirty
   generated corpus and reports pairs completeness (gold pairs kept)
   against reduction ratio (comparison space pruned);
2. runs the full matching pipeline once with exact first-token blocking
   and once with LSH blocking, showing the recall a typo-robust
   candidate stage recovers;
3. streams the same records in batches through an
   ``IncrementalLshIndex`` session and verifies the incremental
   clusters equal the batch recompute — banding is append-only, so the
   delta decomposition is exact.

Run with::

    python examples/lsh_blocking.py
"""

from __future__ import annotations

from repro.core.records import Dataset
from repro.datagen import make_person_benchmark
from repro.matching.lsh import LshConfig, lsh_blocking
from repro.metrics.blocking_quality import evaluate_blocker
from repro.streaming import build_pipeline_and_index, build_session

SIMILARITIES = {
    "first_name": "jaro_winkler",
    "last_name": "jaro_winkler",
    "street": "monge_elkan",
    "city": "jaro_winkler",
    "zip": "exact",
}

EXACT_CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": SIMILARITIES,
    "threshold": 0.82,
}

LSH_CONFIG = {
    "key": {"kind": "lsh", "num_perm": 128, "bands": 32, "seed": 7},
    "similarities": SIMILARITIES,
    "threshold": 0.82,
}


def sweep_configs(benchmark) -> None:
    print("=== 1. blocking-quality sweep (pairs completeness vs reduction) ===")
    print(f"{'config':<18} {'~threshold':>10} {'candidates':>10} "
          f"{'completeness':>12} {'reduction':>10}")
    for config in (
        LshConfig(num_perm=128, bands=64),
        LshConfig(num_perm=96, bands=32),
        LshConfig(),
        LshConfig(num_perm=128, bands=16),
    ):
        quality = evaluate_blocker(
            benchmark.dataset,
            benchmark.gold,
            lambda dataset, c=config: lsh_blocking(dataset, c),
        )
        label = f"{config.num_perm}/{config.bands}x{config.rows}"
        print(
            f"{label:<18} {config.threshold_estimate():>10.2f} "
            f"{quality.candidate_count:>10} "
            f"{quality.pairs_completeness:>12.3f} "
            f"{quality.reduction_ratio:>10.3f}"
        )


def compare_pipelines(benchmark) -> None:
    print("\n=== 2. exact vs LSH blocking through the full pipeline ===")
    gold_pairs = set(benchmark.gold.clustering.pairs())
    for name, config in (("first_token", EXACT_CONFIG), ("lsh", LSH_CONFIG)):
        pipeline, _ = build_pipeline_and_index(config)
        run = pipeline.run(benchmark.dataset)
        matched = {match.pair for match in run.experiment}
        recall = len(matched & gold_pairs) / len(gold_pairs)
        print(
            f"{name:<12} candidates={len(run.candidates):>6} "
            f"matches={len(run.experiment.matches):>4} "
            f"duplicate recall={recall:.3f}"
        )


def stream_in_batches(benchmark) -> None:
    print("\n=== 3. streaming LSH: delta ingest == batch recompute ===")
    records = list(benchmark.dataset)
    session = build_session(LSH_CONFIG, name="lsh-demo")
    for start in range(0, len(records), 100):
        snapshot = session.ingest(records[start:start + 100])
        print(
            f"v{snapshot.version}: {snapshot.record_count} records, "
            f"{snapshot.delta_candidates} delta candidates, "
            f"{snapshot.cluster_count} clusters"
        )
    pipeline, _ = build_pipeline_and_index(LSH_CONFIG)
    batch_run = pipeline.run(Dataset(records, name="batch"))
    incremental = session.clusters().nontrivial_clusters()
    batch = batch_run.experiment.clustering().nontrivial_clusters()
    assert incremental == batch, "delta decomposition must be exact"
    print(f"incremental clusters == batch clusters ({len(batch)} clusters)")


def main() -> None:
    benchmark = make_person_benchmark(400, seed=7)
    sweep_configs(benchmark)
    compare_pipelines(benchmark)
    stream_in_batches(benchmark)


if __name__ == "__main__":
    main()
