#!/usr/bin/env python3
"""Explore a persisted match graph: traversal and evidence paths.

The pipeline's scored pairs form a weighted graph over the records —
nodes are records, edges carry the similarity score plus its
per-attribute breakdown, and connected components over the *accepted*
edges are exactly the duplicate clusters.  ``repro.graph`` persists
that structure in the store and answers traversal questions:

1. build a graph from a streaming session (updated per batch);
2. look around a record with a k-hop neighborhood query;
3. drill into a connected component (size, density, score bounds);
4. ask "why are these two records in one cluster?" — the evidence
   path maximises the weakest edge score and carries the
   attribute-level similarity evidence for every hop.

Run with::

    python examples/graph_explore.py
"""

from __future__ import annotations

from repro.datagen import make_person_benchmark
from repro.storage.database import FrostStore
from repro.streaming import build_session

CONFIG = {
    "key": {"kind": "first_token", "attribute": "last_name"},
    "similarities": {
        "first_name": "jaro_winkler",
        "last_name": "jaro_winkler",
        "street": "monge_elkan",
        "city": "jaro_winkler",
        "zip": "exact",
    },
    "threshold": 0.82,
    "graph": True,  # maintain the persisted match graph per batch
}


def main() -> None:
    benchmark = make_person_benchmark(300, seed=23)
    records = list(benchmark.dataset)

    store = FrostStore(":memory:")
    session = build_session(CONFIG, store=store, name="customers")
    print("== ingesting two batches (graph follows each one) ==")
    for batch in (records[:200], records[200:]):
        session.ingest(batch)
        meta = store.graph_meta("customers")
        print(
            f"batch {meta['batch_count']}: {meta['node_count']} nodes, "
            f"{meta['edge_count']} edges"
        )

    graph = session._graph.graph
    summary = graph.summary()
    print(
        f"\n== graph '{summary['name']}' ==\n"
        f"{summary['node_count']} records, {summary['edge_count']} scored "
        f"edges ({summary['accepted_edge_count']} accepted), "
        f"{summary['cluster_count']} duplicate clusters, largest component "
        f"{summary['largest_component']}"
    )

    # pick the biggest cluster to explore
    biggest = graph.components(limit=1)[0]
    anchor = biggest["records"][0]
    partner = biggest["records"][-1]

    print(f"\n== 2-hop neighborhood of {anchor!r} ==")
    hood = graph.neighbors(anchor, k=2)
    for row in hood["neighbors"]:
        print(f"  hop {row['hops']}: {row['record']}")

    print(f"\n== component of {anchor!r} ==")
    print(
        f"  {biggest['size']} records, {biggest['edge_count']} edges, "
        f"density {biggest['density']:.2f}, scores "
        f"{biggest['min_score']:.3f}..{biggest['max_score']:.3f}"
    )

    print(f"\n== why are {anchor!r} and {partner!r} one cluster? ==")
    explained = graph.evidence_path(anchor, partner)
    print("  " + " -> ".join(explained["path"]))
    if explained["bottleneck"] is not None:
        print(f"  weakest link: {explained['bottleneck']:.3f}")
    for edge in explained["edges"]:
        print(
            f"  {edge['first']} --[{edge['score']:.3f}]-- {edge['second']}"
        )
        for attribute, value in sorted((edge["evidence"] or {}).items()):
            rendered = "null" if value is None else f"{value:.3f}"
            print(f"      {attribute}: {rendered}")


if __name__ == "__main__":
    main()
