"""Command-line interface to the Frost platform.

Snowman exposes its functionality through a CLI next to GUI and API
(§3.3 lists CLI among the interface KPIs; Appendix A.5 describes
Snowman's CLI).  This module provides the same entry points over the
file-based import formats::

    python -m repro metrics  --dataset d.csv --gold g.csv --experiment e.csv
    python -m repro diagram  --dataset d.csv --gold g.csv --experiment e.csv
    python -m repro venn     --dataset d.csv --gold g.csv --experiment a.csv --experiment b.csv
    python -m repro profile  --dataset d.csv [--dataset other.csv]
    python -m repro categorize --dataset d.csv --gold g.csv --experiment e.csv

The ``engine`` commands route the same evaluations through the parallel
job engine (:mod:`repro.engine`) with its content-addressed result
cache; ``--store cache.db`` persists cached results across invocations::

    python -m repro engine run    --dataset d.csv --gold g.csv --experiment e.csv --job metrics
    python -m repro engine sweep  --dataset d.csv --gold g.csv --experiment e.csv --thresholds 0.5:0.9:5
    python -m repro engine status --store cache.db

The ``stream`` commands manage durable incremental matching sessions
(:mod:`repro.streaming`): ``init`` registers a session in a store,
``ingest`` folds a CSV batch in (delta blocking + incremental
clustering), ``snapshot`` prints the current duplicate clusters, and
``status`` shows the snapshot lineage::

    python -m repro stream init    --store s.db --name crm --key-attribute last_name --similarity first_name=jaro_winkler --similarity last_name=jaro_winkler
    python -m repro stream ingest  --store s.db --name crm --dataset day1.csv
    python -m repro stream snapshot --store s.db --name crm
    python -m repro stream status  --store s.db

``--workers``/``--shards`` (on ``stream init`` and ``stream ingest``)
shard the comparison stage over a process pool
(:mod:`repro.matching.parallel`); output is byte-identical to serial.
``--blocker lsh --num-perm 128 --bands 32`` (on ``stream init``)
selects approximate MinHash-LSH blocking (:mod:`repro.matching.lsh`)
instead of an exact key scheme — typo-robust candidate generation whose
banding stays exactly delta-decomposable.

The ``serve`` command exposes a store over the concurrent HTTP
front-end (:mod:`repro.server.http` + :mod:`repro.serving`): every
dataset/experiment/gold in the store is loaded into a platform and
served with read-through payload caching and request coalescing.
``--port 0`` binds an ephemeral port (announced on stdout) and SIGINT/
SIGTERM shut the server down gracefully::

    python -m repro serve --store results.db --port 0 --workers 8 --cache-size 2048

The ``trace`` command runs a fully traced matching pipeline through the
engine (:mod:`repro.telemetry`): the span tree — pipeline stages,
engine jobs with cache-hit annotations, per-shard process-pool timings
— prints to stdout together with the Prometheus metric snapshot, and
``--output DIR`` persists both as ``spans.jsonl``/``metrics.json``::

    python -m repro trace --generate 600 --workers 2 --repeat 2
    python -m repro trace --dataset d.csv --gold g.csv --similarity name=jaro_winkler

Every command reads CSV files (``--separator`` configures the dialect)
and prints plain text to stdout.  Diagnostics go through :mod:`logging`
(stderr; ``--log-level`` selects verbosity) — the only machine-read
lines, like ``serve``'s bound-port announcement, stay on stdout.
"""

from __future__ import annotations

import argparse
import logging
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import compute_diagram_optimized
from repro.core.experiment import Experiment, GoldStandard
from repro.core.records import Dataset
from repro.io.csvio import CsvFormat
from repro.io.importers import (
    PairFormatImporter,
    import_dataset,
    import_gold_standard,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frost: benchmark and explore data matching results.",
    )
    parser.add_argument(
        "--separator", default=",", help="CSV separator (default ',')"
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="logging verbosity on stderr (default info)",
    )
    parser.add_argument(
        "--log-format",
        choices=("text", "json"),
        default="text",
        help="log line format on stderr: human-readable text (default) "
        "or structured JSON with request ids",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_io_arguments(sub: argparse.ArgumentParser, experiments: str) -> None:
        sub.add_argument("--dataset", required=True, help="dataset CSV path")
        sub.add_argument("--id-column", default="id")
        sub.add_argument("--gold", required=True, help="gold standard CSV path")
        sub.add_argument(
            "--gold-format", choices=("pairs", "clusters"), default="pairs"
        )
        if experiments == "one":
            sub.add_argument("--experiment", required=True, help="result CSV path")
        elif experiments == "many":
            sub.add_argument(
                "--experiment",
                action="append",
                required=True,
                help="result CSV path (repeatable)",
            )

    metrics = commands.add_parser(
        "metrics", help="quality metrics of experiments against a gold standard"
    )
    add_io_arguments(metrics, experiments="many")
    metrics.add_argument(
        "--metric",
        action="append",
        help="metric name (repeatable; default: precision, recall, f1)",
    )

    diagram = commands.add_parser(
        "diagram", help="precision/recall/f1 over similarity thresholds"
    )
    add_io_arguments(diagram, experiments="one")
    diagram.add_argument("--samples", type=int, default=20)

    venn = commands.add_parser(
        "venn", help="set-based comparison of experiments and the gold standard"
    )
    add_io_arguments(venn, experiments="many")

    profile = commands.add_parser(
        "profile", help="profile one dataset, or compare two"
    )
    profile.add_argument(
        "--dataset",
        action="append",
        required=True,
        help="dataset CSV path (repeat to compare two datasets)",
    )
    profile.add_argument("--id-column", default="id")

    categorize = commands.add_parser(
        "categorize", help="categorize the errors of an experiment"
    )
    add_io_arguments(categorize, experiments="one")
    categorize.add_argument(
        "--limit", type=int, default=None, help="categorize at most N FNs and FPs"
    )

    engine = commands.add_parser(
        "engine", help="run evaluations through the cached parallel job engine"
    )
    engine_commands = engine.add_subparsers(dest="engine_command", required=True)

    def add_engine_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            default=None,
            help="SQLite path persisting the result cache across invocations",
        )
        sub.add_argument(
            "--workers", type=int, default=4, help="worker pool width (default 4)"
        )

    engine_run = engine_commands.add_parser(
        "run", help="run metrics/diagram jobs for each experiment"
    )
    add_io_arguments(engine_run, experiments="many")
    engine_run.add_argument(
        "--job", choices=("metrics", "diagram"), default="metrics"
    )
    engine_run.add_argument(
        "--metric", action="append", help="metric name (repeatable)"
    )
    engine_run.add_argument("--samples", type=int, default=20)
    engine_run.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit the same jobs N times (re-runs are served from cache)",
    )
    add_engine_arguments(engine_run)

    engine_sweep = engine_commands.add_parser(
        "sweep", help="batch threshold sweep of the metrics of one experiment"
    )
    add_io_arguments(engine_sweep, experiments="one")
    engine_sweep.add_argument(
        "--thresholds",
        default="0.5:0.9:5",
        help="LOW:HIGH:STEPS threshold grid (default 0.5:0.9:5)",
    )
    engine_sweep.add_argument(
        "--metric", action="append", help="metric name (repeatable)"
    )
    add_engine_arguments(engine_sweep)

    engine_status = engine_commands.add_parser(
        "status", help="inspect a persisted result cache"
    )
    engine_status.add_argument(
        "--store", required=True, help="SQLite path of the result cache"
    )

    stream = commands.add_parser(
        "stream", help="incremental streaming matching sessions"
    )
    stream_commands = stream.add_subparsers(dest="stream_command", required=True)

    stream_init = stream_commands.add_parser(
        "init", help="create a durable streaming session"
    )
    stream_init.add_argument(
        "--store", required=True, help="SQLite path holding the session state"
    )
    stream_init.add_argument("--name", required=True, help="stream name")
    stream_init.add_argument(
        "--blocker",
        choices=("key", "lsh"),
        default="key",
        help="candidate generation family: exact key-based blocking "
             "(--key-kind) or approximate MinHash-LSH (default key)",
    )
    stream_init.add_argument(
        "--key-kind",
        choices=("first_token", "prefix", "soundex", "token"),
        default=None,
        help="key-based delta blocking scheme "
             "(default first_token; needs --blocker key)",
    )
    stream_init.add_argument(
        "--num-perm",
        type=int,
        default=None,
        help="LSH signature length (default 128; needs --blocker lsh)",
    )
    stream_init.add_argument(
        "--bands",
        type=int,
        default=None,
        help="LSH band count; rows = num-perm / bands "
             "(default 32; needs --blocker lsh)",
    )
    stream_init.add_argument(
        "--lsh-seed",
        type=int,
        default=None,
        help="seed of the MinHash permutations (default 1; needs --blocker lsh)",
    )
    stream_init.add_argument(
        "--key-attribute", help="blocking attribute (key-based kinds)"
    )
    stream_init.add_argument(
        "--prefix-length",
        type=int,
        default=None,
        help="prefix key length (default 3; needs --key-kind prefix)",
    )
    stream_init.add_argument(
        "--token-attributes",
        help="comma-separated attributes considered by token and lsh "
             "blocking (default: all)",
    )
    stream_init.add_argument(
        "--min-token-length",
        type=int,
        default=None,
        help="shortest token considered by token/lsh blocking "
             "(defaults: 3 for token, 2 for lsh)",
    )
    stream_init.add_argument(
        "--max-block-size",
        type=int,
        default=None,
        help="stop emitting pairs once a block reaches this size",
    )
    stream_init.add_argument(
        "--similarity",
        action="append",
        required=True,
        metavar="ATTR=MEASURE",
        help="per-attribute similarity, e.g. name=jaro_winkler (repeatable)",
    )
    stream_init.add_argument(
        "--threshold", type=float, default=0.5, help="match threshold"
    )
    stream_init.add_argument(
        "--lowercase",
        action="store_true",
        help="also lowercase values during preparation",
    )
    stream_init.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for sharded delta scoring (0 = all cores, default serial)",
    )
    stream_init.add_argument(
        "--shards",
        type=int,
        default=None,
        help="comparison shard count (default: 4 x workers; implies "
             "--workers 0 when given alone)",
    )
    stream_init.add_argument(
        "--no-columnar",
        action="store_true",
        help="score deltas with the scalar per-pair loop instead of the "
             "columnar batch kernels (output is identical either way)",
    )
    stream_init.add_argument(
        "--blocking-storage",
        choices=("memory", "disk"),
        default=None,
        help="where block membership lives: 'disk' spills blocking keys "
             "into SQLite and joins candidates there (identical output, "
             "bounded Python memory; default memory)",
    )
    stream_init.add_argument(
        "--graph",
        action="store_true",
        help="maintain a persisted match graph, updated per batch "
             "(query it with 'repro graph ...')",
    )

    stream_ingest = stream_commands.add_parser(
        "ingest", help="fold one CSV record batch into a session"
    )
    stream_ingest.add_argument("--store", required=True)
    stream_ingest.add_argument("--name", required=True)
    stream_ingest.add_argument(
        "--dataset", required=True, help="batch CSV path"
    )
    stream_ingest.add_argument("--id-column", default="id")
    stream_ingest.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the stream's scoring workers for this ingest",
    )
    stream_ingest.add_argument(
        "--shards",
        type=int,
        default=None,
        help="override the stream's comparison shard count for this ingest",
    )
    stream_ingest.add_argument(
        "--no-columnar",
        action="store_true",
        help="disable columnar batch-kernel scoring for this ingest",
    )

    stream_snapshot = stream_commands.add_parser(
        "snapshot", help="print the clusters of the latest snapshot"
    )
    stream_snapshot.add_argument("--store", required=True)
    stream_snapshot.add_argument("--name", required=True)
    stream_snapshot.add_argument(
        "--limit", type=int, default=None, help="print at most N clusters"
    )

    stream_status = stream_commands.add_parser(
        "status", help="list sessions and their snapshot lineage"
    )
    stream_status.add_argument("--store", required=True)
    stream_status.add_argument(
        "--name", default=None, help="show one stream's full lineage"
    )

    graph = commands.add_parser(
        "graph", help="query persisted match graphs (traversal, evidence)"
    )
    graph_commands = graph.add_subparsers(dest="graph_command", required=True)

    def add_graph_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store", required=True, help="SQLite path holding the graph"
        )
        sub.add_argument("--name", required=True, help="graph name")

    graph_build = graph_commands.add_parser(
        "build", help="build a graph from a stored experiment's matches"
    )
    add_graph_arguments(graph_build)
    graph_build.add_argument(
        "--dataset", required=True, help="stored dataset name"
    )
    graph_build.add_argument(
        "--experiment", required=True, help="stored experiment name"
    )
    graph_build.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="edge acceptance threshold (default: weakest stored match)",
    )

    graph_neighbors = graph_commands.add_parser(
        "neighbors", help="k-hop BFS neighborhood of one record"
    )
    add_graph_arguments(graph_neighbors)
    graph_neighbors.add_argument("--record", required=True)
    graph_neighbors.add_argument("--k", type=int, default=1, help="hop limit")
    graph_neighbors.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="traverse ALL candidate edges scoring >= this instead of "
             "only accepted ones",
    )

    graph_path = graph_commands.add_parser(
        "path", help="fewest-hops path between two records"
    )
    add_graph_arguments(graph_path)
    graph_path.add_argument("--from", dest="from_record", required=True)
    graph_path.add_argument("--to", dest="to_record", required=True)
    graph_path.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="traverse ALL candidate edges scoring >= this instead of "
             "only accepted ones",
    )

    graph_component = graph_commands.add_parser(
        "component", help="one record's connected component with stats"
    )
    add_graph_arguments(graph_component)
    graph_component.add_argument("--record", required=True)

    graph_explain = graph_commands.add_parser(
        "explain",
        help="why are two records in one cluster? (max-min-score "
             "evidence path)",
    )
    add_graph_arguments(graph_explain)
    graph_explain.add_argument("--from", dest="from_record", required=True)
    graph_explain.add_argument("--to", dest="to_record", required=True)

    serve = commands.add_parser(
        "serve", help="serve a store over the concurrent HTTP front-end"
    )
    serve.add_argument(
        "--store",
        required=True,
        help="SQLite path holding the datasets/experiments/golds to serve",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8080,
        help="TCP port; 0 binds an ephemeral port (announced on stdout)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=4,
        help="engine worker-pool width behind /jobs (default 4)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=1024,
        help="serving-layer payload cache capacity (default 1024)",
    )

    trace = commands.add_parser(
        "trace",
        help="run a fully traced matching pipeline and print the span tree",
    )
    trace.add_argument(
        "--generate",
        type=int,
        default=None,
        metavar="N",
        help="generate an N-record synthetic person benchmark "
             "(alternative to --dataset)",
    )
    trace.add_argument(
        "--seed", type=int, default=42, help="generator seed (default 42)"
    )
    trace.add_argument("--dataset", default=None, help="dataset CSV path")
    trace.add_argument("--id-column", default="id")
    trace.add_argument(
        "--gold", default=None, help="gold standard CSV path (enables metrics)"
    )
    trace.add_argument(
        "--gold-format", choices=("pairs", "clusters"), default="pairs"
    )
    trace.add_argument(
        "--similarity",
        action="append",
        metavar="ATTR=MEASURE",
        help="per-attribute similarity, e.g. name=jaro_winkler "
             "(repeatable; default: person-benchmark measures)",
    )
    trace.add_argument(
        "--key-kind",
        choices=("first_token", "prefix", "soundex", "token"),
        default="first_token",
        help="blocking key scheme (default first_token)",
    )
    trace.add_argument(
        "--key-attribute",
        default="last_name",
        help="blocking attribute (default last_name)",
    )
    trace.add_argument(
        "--threshold", type=float, default=0.8, help="match threshold"
    )
    trace.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for sharded comparison scoring (traced as "
             "comparison.shard spans; default serial)",
    )
    trace.add_argument(
        "--shards",
        type=int,
        default=None,
        help="comparison shard count (default: 4 x workers)",
    )
    trace.add_argument(
        "--no-columnar",
        action="store_true",
        help="trace the scalar comparison loop instead of the columnar "
             "batch kernels",
    )
    trace.add_argument(
        "--blocking-storage",
        choices=("memory", "disk"),
        default=None,
        help="run candidate generation through the SQL-pushdown disk "
             "path (identical candidates; default memory)",
    )
    trace.add_argument(
        "--repeat",
        type=int,
        default=2,
        help="submit the pipeline job N times — re-runs are engine "
             "cache hits and show up as such (default 2)",
    )
    trace.add_argument(
        "--output",
        default=None,
        metavar="DIR",
        help="also write spans.jsonl and metrics.json to this directory",
    )
    trace.add_argument(
        "--profile",
        action="store_true",
        help="sample wall-clock stacks during the run and print the "
        "hottest collapsed stacks",
    )
    trace.add_argument(
        "--profile-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="sampling interval for --profile (default 0.005)",
    )
    trace.add_argument(
        "--store",
        default=None,
        metavar="DB",
        help="persist the run (spans, metrics, profile) into this "
        "telemetry warehouse database",
    )
    trace.add_argument(
        "--run-name",
        default="trace",
        help="run name recorded in the warehouse (default 'trace')",
    )

    telemetry = commands.add_parser(
        "telemetry",
        help="query and curate a persisted telemetry warehouse",
    )
    telemetry_commands = telemetry.add_subparsers(
        dest="telemetry_command", required=True
    )

    def add_store_argument(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--store",
            required=True,
            metavar="DB",
            help="telemetry warehouse database path",
        )

    telemetry_list = telemetry_commands.add_parser(
        "list", help="stored runs, newest first"
    )
    add_store_argument(telemetry_list)
    telemetry_show = telemetry_commands.add_parser(
        "show", help="one run's span tree, metrics, and profile"
    )
    add_store_argument(telemetry_show)
    telemetry_show.add_argument("run", help="run id or run name (latest)")
    telemetry_slowest = telemetry_commands.add_parser(
        "slowest", help="slowest spans, warehouse-wide or per run"
    )
    add_store_argument(telemetry_slowest)
    telemetry_slowest.add_argument(
        "--run", default=None, help="restrict to one run id or name"
    )
    telemetry_slowest.add_argument(
        "--limit", type=int, default=10, help="rows to print (default 10)"
    )
    telemetry_diff = telemetry_commands.add_parser(
        "diff", help="per-stage wall-time deltas between two runs"
    )
    add_store_argument(telemetry_diff)
    telemetry_diff.add_argument("run_a", help="baseline run id or name")
    telemetry_diff.add_argument("run_b", help="candidate run id or name")
    telemetry_prune = telemetry_commands.add_parser(
        "prune", help="delete old runs by count and/or age"
    )
    add_store_argument(telemetry_prune)
    telemetry_prune.add_argument(
        "--keep", type=int, default=None, help="retain only the newest N runs"
    )
    telemetry_prune.add_argument(
        "--older-than",
        type=float,
        default=None,
        metavar="SECONDS",
        help="delete runs recorded more than SECONDS ago",
    )
    return parser


def _load_dataset(path: str, id_column: str, fmt: CsvFormat) -> Dataset:
    return import_dataset(
        Path(path), id_column=id_column, fmt=fmt, name=Path(path).stem
    )


def _load_gold(path: str, format_: str, fmt: CsvFormat) -> GoldStandard:
    return import_gold_standard(Path(path), format_=format_, fmt=fmt)


def _load_experiment(path: str, fmt: CsvFormat) -> Experiment:
    importer = PairFormatImporter(fmt=fmt)
    return importer.import_experiment(Path(path), name=Path(path).stem)


def _matrix(
    dataset: Dataset, experiment: Experiment, gold: GoldStandard
) -> ConfusionMatrix:
    return ConfusionMatrix.from_clusterings(
        experiment.clustering(), gold.clustering, dataset.total_pairs()
    )


def _command_metrics(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.metrics.registry import default_registry

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    names = args.metric or ["precision", "recall", "f1"]
    registry = default_registry()
    print("experiment  " + "  ".join(names))
    for path in args.experiment:
        experiment = _load_experiment(path, fmt)
        values = registry.evaluate(_matrix(dataset, experiment, gold), names)
        cells = "  ".join(f"{values[name]:.4f}" for name in names)
        print(f"{experiment.name}  {cells}")
    return 0


def _command_diagram(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.metrics.pairwise import f1_score, precision, recall

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    experiment = _load_experiment(args.experiment, fmt)
    points = compute_diagram_optimized(dataset, experiment, gold, args.samples)
    print("threshold  precision  recall  f1")
    for point in points:
        threshold = (
            "inf" if point.threshold == float("inf") else f"{point.threshold:.4f}"
        )
        print(
            f"{threshold}  {precision(point.matrix):.4f}  "
            f"{recall(point.matrix):.4f}  {f1_score(point.matrix):.4f}"
        )
    return 0


def _command_venn(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.exploration.setops import SetComparison

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    inputs: dict[str, Experiment | GoldStandard] = {"gold": gold}
    for path in args.experiment:
        experiment = _load_experiment(path, fmt)
        inputs[experiment.name] = experiment
    comparison = SetComparison(dataset, inputs)
    for label, size in sorted(comparison.region_sizes().items()):
        print(f"{label}: {size}")
    return 0


def _command_profile(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.profiling import profile_dataset, vocabulary_similarity

    datasets = [_load_dataset(p, args.id_column, fmt) for p in args.dataset]
    for dataset in datasets:
        profile = profile_dataset(dataset)
        print(
            f"{dataset.name}: records={profile.tuple_count} "
            f"sparsity={profile.sparsity:.3f} textuality={profile.textuality:.2f} "
            f"schema_complexity={profile.schema_complexity}"
        )
    if len(datasets) == 2:
        similarity = vocabulary_similarity(datasets[0], datasets[1])
        print(f"vocabulary similarity: {similarity:.3f}")
    return 0


def _command_categorize(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.exploration.error_categories import categorize_errors

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    experiment = _load_experiment(args.experiment, fmt)
    categorization = categorize_errors(
        dataset, experiment, gold, limit=args.limit
    )
    print(categorization.render_report())
    weakness = categorization.dominant_weakness()
    if weakness is not None:
        print(f"dominant weakness among missed duplicates: {weakness.value}")
    return 0


def _engine_platform(args: argparse.Namespace, fmt: CsvFormat):
    """Platform + engine over the CLI's file-based inputs."""
    from repro.core.platform import FrostPlatform
    from repro.engine.runner import ExperimentEngine

    platform = FrostPlatform()
    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    platform.add_dataset(dataset)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    platform.add_gold(dataset.name, gold)
    paths = args.experiment if isinstance(args.experiment, list) else [args.experiment]
    experiment_names = []
    for path in paths:
        experiment = _load_experiment(path, fmt)
        platform.add_experiment(dataset.name, experiment)
        experiment_names.append(experiment.name)
    store = None
    if args.store:
        from repro.storage.database import FrostStore

        store = FrostStore(args.store)
    engine = ExperimentEngine(platform, store=store, max_workers=args.workers)
    return engine, dataset.name, gold.name, experiment_names


def _print_engine_summary(engine) -> None:
    stats = engine.cache.stats()
    print(
        f"engine: {engine.computed_jobs} computed, {engine.cached_jobs} cached "
        f"(cache hits={stats['hits']} misses={stats['misses']})"
    )


def _command_engine_run(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.engine.jobs import JobSpec

    engine, dataset_name, gold_name, experiment_names = _engine_platform(args, fmt)
    metric_names = args.metric or ["precision", "recall", "f1"]
    for round_index in range(max(1, args.repeat)):
        specs = []
        for name in experiment_names:
            if args.job == "metrics":
                params = {
                    "dataset": dataset_name,
                    "gold": gold_name,
                    "experiments": [name],
                    "metrics": metric_names,
                }
            else:
                params = {
                    "dataset": dataset_name,
                    "gold": gold_name,
                    "experiment": name,
                    "samples": args.samples,
                }
            specs.append(
                JobSpec(args.job, params, job_id=f"{args.job}:{name}#{round_index}")
            )
        results = engine.run(specs)
        for job_id, result in results.items():
            if result.state.value != "succeeded":
                print(f"{job_id}: {result.state.value} ({result.error})")
                continue
            tag = "cached" if result.cached else "computed"
            if args.job == "metrics":
                for name, row in result.value["metrics"].items():
                    cells = "  ".join(
                        f"{metric}={row[metric]:.4f}" for metric in metric_names
                    )
                    print(f"{name}  {cells}  [{tag}]")
            else:
                print(
                    f"{result.value['experiment']}: "
                    f"{len(result.value['points'])} diagram points  [{tag}]"
                )
    _print_engine_summary(engine)
    return 0


def _parse_threshold_grid(grid: str) -> list[float]:
    try:
        low_text, high_text, steps_text = grid.split(":")
        low, high, steps = float(low_text), float(high_text), int(steps_text)
    except ValueError:
        raise ValueError(
            f"--thresholds must be LOW:HIGH:STEPS, got {grid!r}"
        ) from None
    if steps < 1:
        raise ValueError("--thresholds needs at least one step")
    if steps == 1:
        return [round(low, 6)]
    width = (high - low) / (steps - 1)
    grid = [round(low + index * width, 6) for index in range(steps)]
    # A degenerate grid (low == high) would fan out duplicate job ids.
    return list(dict.fromkeys(grid))


def _command_engine_sweep(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.engine.jobs import JobSpec

    engine, dataset_name, gold_name, experiment_names = _engine_platform(args, fmt)
    metric_names = args.metric or ["precision", "recall", "f1"]
    thresholds = _parse_threshold_grid(args.thresholds)
    base = JobSpec(
        "metrics",
        {
            "dataset": dataset_name,
            "gold": gold_name,
            "experiments": experiment_names,
            "metrics": metric_names,
        },
        job_id="sweep",
    )
    job_ids = engine.sweep(base, "threshold", thresholds)
    engine.start()
    engine.join(job_ids)
    print("threshold  " + "  ".join(metric_names))
    for job_id, threshold in zip(job_ids, thresholds):
        result = engine.result(job_id)
        if result.state.value != "succeeded":
            print(f"{threshold:.4f}  {result.state.value} ({result.error})")
            continue
        row = result.value["metrics"][experiment_names[0]]
        cells = "  ".join(f"{row[metric]:.4f}" for metric in metric_names)
        suffix = "  [cached]" if result.cached else ""
        print(f"{threshold:.4f}  {cells}{suffix}")
    _print_engine_summary(engine)
    return 0


def _command_engine_status(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        entries = store.cache_entries()
        by_kind: dict[str, int] = {}
        for _, kind in entries:
            by_kind[kind] = by_kind.get(kind, 0) + 1
        print(f"cached results: {len(entries)}")
        for kind in sorted(by_kind):
            print(f"  {kind}: {by_kind[kind]}")
    return 0


def _command_engine(args: argparse.Namespace, fmt: CsvFormat) -> int:
    handlers = {
        "run": _command_engine_run,
        "sweep": _command_engine_sweep,
        "status": _command_engine_status,
    }
    return handlers[args.engine_command](args, fmt)


def _stream_config_from_args(args: argparse.Namespace) -> dict:
    """The JSON stream config described by the ``stream init`` flags.

    Flags of the family that was *not* selected fail loudly instead of
    being dropped — a silently ignored blocking flag yields a very
    different candidate set with nothing to point at the mistake.
    """
    if args.blocker == "lsh":
        if args.key_attribute:
            raise ValueError(
                "--key-attribute does not apply to --blocker lsh "
                "(it hashes whole records); restrict attributes with "
                "--token-attributes instead"
            )
        for flag, value in (("--key-kind", args.key_kind),
                            ("--prefix-length", args.prefix_length)):
            if value is not None:
                raise ValueError(f"{flag} needs --blocker key")
        key: dict[str, object] = {"kind": "lsh"}
        if args.num_perm is not None:
            key["num_perm"] = args.num_perm
        if args.bands is not None:
            key["bands"] = args.bands
        if args.lsh_seed is not None:
            key["seed"] = args.lsh_seed
        if args.token_attributes:
            key["attributes"] = [
                name for name in args.token_attributes.split(",") if name
            ]
        if args.min_token_length is not None:
            key["min_token_length"] = args.min_token_length
    else:
        for flag, value in (("--num-perm", args.num_perm),
                            ("--bands", args.bands),
                            ("--lsh-seed", args.lsh_seed)):
            if value is not None:
                raise ValueError(f"{flag} needs --blocker lsh")
        kind = args.key_kind or "first_token"
        if args.prefix_length is not None and kind != "prefix":
            raise ValueError("--prefix-length needs --key-kind prefix")
        key = {"kind": kind}
        if kind == "token":
            if args.key_attribute:
                raise ValueError(
                    "--key-attribute does not apply to --key-kind token; "
                    "restrict attributes with --token-attributes instead"
                )
            if args.token_attributes:
                key["attributes"] = [
                    name for name in args.token_attributes.split(",") if name
                ]
            key["min_token_length"] = (
                3 if args.min_token_length is None else args.min_token_length
            )
        else:
            if args.token_attributes:
                raise ValueError(
                    "--token-attributes needs --key-kind token or "
                    "--blocker lsh"
                )
            if args.min_token_length is not None:
                raise ValueError(
                    "--min-token-length needs --key-kind token or "
                    "--blocker lsh"
                )
            if not args.key_attribute:
                raise ValueError(
                    f"--key-kind {kind} needs --key-attribute"
                )
            key["attribute"] = args.key_attribute
            if kind == "prefix":
                key["length"] = (
                    3 if args.prefix_length is None else args.prefix_length
                )
    if args.max_block_size is not None:
        key["max_block_size"] = args.max_block_size
    similarities: dict[str, str] = {}
    for entry in args.similarity:
        attribute, separator, measure = entry.partition("=")
        if not separator or not attribute or not measure:
            raise ValueError(
                f"--similarity must be ATTR=MEASURE, got {entry!r}"
            )
        similarities[attribute] = measure
    preparers = ["normalize_whitespace"]
    if args.lowercase:
        preparers.append("lowercase_values")
    config: dict = {
        "key": key,
        "similarities": similarities,
        "threshold": args.threshold,
        "preparers": preparers,
    }
    # Only the flags actually given land in the config;
    # ParallelConfig.from_dict turns a bare shard count into
    # "all cores" so --shards alone engages.
    parallelism = {}
    if args.workers is not None:
        parallelism["workers"] = args.workers
    if args.shards is not None:
        parallelism["shards"] = args.shards
    if parallelism:
        config["parallelism"] = parallelism
    if getattr(args, "no_columnar", False):
        config["columnar"] = False
    if getattr(args, "blocking_storage", None):
        config["blocking_storage"] = args.blocking_storage
    if getattr(args, "graph", False):
        config["graph"] = True
    return config


def _command_stream_init(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.storage.database import FrostStore
    from repro.streaming import build_session

    config = _stream_config_from_args(args)
    with FrostStore(args.store) as store:
        session = build_session(config, store=store, name=args.name)
        print(
            f"stream {session.name!r} created "
            f"(key={config['key']['kind']}, threshold={config['threshold']})"
        )
    return 0


def _command_stream_ingest(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.storage.database import FrostStore
    from repro.streaming import open_session

    with FrostStore(args.store) as store:
        session = open_session(store, args.name)
        if args.workers is not None or args.shards is not None:
            # with_parallelism handles a bare --shards (engages all cores)
            session.pipeline = session.pipeline.with_parallelism(
                workers=args.workers, shards=args.shards
            )
        if args.no_columnar:
            session.pipeline = session.pipeline.with_columnar(False)
        batch = _load_dataset(args.dataset, args.id_column, fmt)
        snapshot = session.ingest(batch)
        print(
            f"stream {args.name!r} v{snapshot.version}: "
            f"+{len(batch)} records ({snapshot.record_count} total), "
            f"{snapshot.delta_candidates} delta candidates, "
            f"{snapshot.accepted_matches} accepted, "
            f"{snapshot.cluster_count} clusters"
        )
    return 0


def _command_stream_snapshot(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.storage.database import FrostStore
    from repro.streaming import open_session

    with FrostStore(args.store) as store:
        session = open_session(store, args.name)
        clusters = sorted(session.clusters().clusters)
        print(
            f"stream {args.name!r} v{session.version}: "
            f"{session.record_count} records, "
            f"{len(clusters)} duplicate clusters"
        )
        shown = clusters if args.limit is None else clusters[: args.limit]
        for members in shown:
            print("  " + " ".join(members))
        if len(shown) < len(clusters):
            print(f"  ... {len(clusters) - len(shown)} more")
    return 0


def _command_stream_status(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        names = [args.name] if args.name else store.stream_names()
        if not names:
            print("no streams stored")
            return 0
        for name in names:
            lineage = store.stream_snapshot_lineage(name)
            if not lineage:
                print(f"{name}: empty (no batches ingested)")
                continue
            latest = lineage[-1]
            print(
                f"{name}: v{latest['version']}, "
                f"{latest['record_count']} records, "
                f"{latest['cluster_count']} clusters, "
                f"{latest['pair_count']} intra-cluster pairs"
            )
            if args.name:
                for snapshot in lineage:
                    print(
                        f"  v{snapshot['version']}: "
                        f"records={snapshot['record_count']} "
                        f"delta_candidates={snapshot['delta_candidates']} "
                        f"accepted={snapshot['accepted_matches']} "
                        f"clusters={snapshot['cluster_count']}"
                    )
    return 0


def _command_serve(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.engine.runner import ExperimentEngine
    from repro.server.api import FrostApi
    from repro.server.http import serve
    from repro.serving import ServingLayer, platform_from_store
    from repro.storage.database import FrostStore

    logger = logging.getLogger("repro.serve")

    def announce(message: str) -> None:
        # The port line is machine-read contract output and stays on
        # stdout; everything else the server says goes through logging.
        # Flushed eagerly: integration tests read the bound port from a
        # pipe before the first request, and the process blocks next.
        print(message, flush=True)

    # serve is a read surface: opening a mistyped path would silently
    # create and serve a brand-new empty database.
    if not Path(args.store).exists():
        raise ValueError(f"store {args.store!r} does not exist")
    with FrostStore(args.store) as store:
        platform = platform_from_store(store)
        engine = ExperimentEngine(
            platform, store=store, max_workers=args.workers
        )
        serving = ServingLayer(platform, max_entries=args.cache_size)
        api = FrostApi(platform, engine=engine, store=store, serving=serving)
        logger.info(
            "serving %d dataset(s) from %s (workers=%d, cache_size=%d)",
            len(platform.dataset_names()),
            args.store,
            args.workers,
            args.cache_size,
        )
        serve(api, host=args.host, port=args.port, announce=announce)
        logger.info("shut down cleanly")
    return 0


def _command_trace(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.core.platform import FrostPlatform
    from repro.engine.jobs import JobSpec
    from repro.engine.runner import ExperimentEngine
    from repro.streaming import build_pipeline_and_index
    from repro.telemetry import (
        get_metrics,
        get_tracer,
        maybe_profile,
        render_prometheus,
        render_span_tree,
        write_metrics_json,
        write_spans_jsonl,
    )
    from repro.telemetry.profile import DEFAULT_INTERVAL_SECONDS

    if (args.generate is None) == (args.dataset is None):
        raise ValueError("trace needs exactly one of --generate N or --dataset")

    tracer = get_tracer()
    registry = get_metrics()
    tracer.reset()
    registry.reset()
    tracer.enable()
    profiler = maybe_profile(
        args.profile,
        interval=args.profile_interval or DEFAULT_INTERVAL_SECONDS,
    )
    try:
        platform = FrostPlatform()
        if args.generate is not None:
            from repro.datagen import make_person_benchmark

            benchmark = make_person_benchmark(args.generate, seed=args.seed)
            dataset, gold = benchmark.dataset, benchmark.gold
        else:
            dataset = _load_dataset(args.dataset, args.id_column, fmt)
            gold = (
                _load_gold(args.gold, args.gold_format, fmt)
                if args.gold
                else None
            )
        platform.add_dataset(dataset)
        if gold is not None:
            platform.add_gold(dataset.name, gold)

        similarities: dict[str, str] = {}
        for entry in args.similarity or []:
            attribute, separator, measure = entry.partition("=")
            if not separator or not attribute or not measure:
                raise ValueError(
                    f"--similarity must be ATTR=MEASURE, got {entry!r}"
                )
            similarities[attribute] = measure
        if not similarities:
            # the attributes of the generated person benchmark
            similarities = {
                "first_name": "jaro_winkler",
                "last_name": "jaro_winkler",
                "city": "jaro_winkler",
            }
        trace_config: dict[str, object] = {
            "key": {"kind": args.key_kind, "attribute": args.key_attribute},
            "similarities": similarities,
            "threshold": args.threshold,
        }
        if args.blocking_storage:
            trace_config["blocking_storage"] = args.blocking_storage
        pipeline, _ = build_pipeline_and_index(trace_config)
        if args.workers is not None or args.shards is not None:
            # min_pairs=0: tracing runs exist to show the parallel path,
            # so the small-batch serial fast path must not swallow it.
            pipeline = pipeline.with_parallelism(
                workers=args.workers, shards=args.shards, min_pairs=0
            )
        if args.no_columnar:
            pipeline = pipeline.with_columnar(False)

        engine = ExperimentEngine(platform, max_workers=2)
        with tracer.span(
            "trace.run", dataset=dataset.name, records=len(dataset)
        ), profiler:
            # Chained, not fanned out: each re-run starts after the
            # previous one finished, so it is a genuine cache hit
            # instead of a concurrent duplicate computation.
            pipeline_ids: list[str] = []
            for index in range(max(1, args.repeat)):
                pipeline_ids.append(engine.submit(JobSpec(
                    "pipeline",
                    {
                        "pipeline": pipeline,
                        "dataset": dataset.name,
                        "register_as": "traced",
                    },
                    job_id=f"trace:pipeline#{index}",
                    depends_on=tuple(pipeline_ids[-1:]),
                )))
            if gold is not None:
                engine.submit(JobSpec(
                    "metrics",
                    {
                        "dataset": dataset.name,
                        "gold": gold.name,
                        "experiments": ["traced"],
                    },
                    job_id="trace:metrics",
                    depends_on=(pipeline_ids[0],),
                ))
            results = engine.run()
    finally:
        tracer.disable()

    failures = 0
    for job_id, result in results.items():
        if result.state.value != "succeeded":
            failures += 1
            print(f"{job_id}: {result.state.value} ({result.error})")
    for root in tracer.roots():
        print(render_span_tree(root))
    print()
    print(render_prometheus(registry), end="")
    if args.profile:
        samples = profiler.samples()
        print()
        print(
            f"profile: {sum(samples.values())} samples across "
            f"{len(samples)} distinct stacks"
        )
        for stack, count in list(samples.items())[:10]:
            leaf = stack.rsplit(";", 1)[-1]
            print(f"  {count:6d}  {leaf}  ({stack.count(';') + 1} frames)")
    if args.store:
        from repro.telemetry.store import TelemetryStore

        with TelemetryStore(args.store) as warehouse:
            run_id = warehouse.record_run(
                args.run_name,
                tracer.roots(),
                registry,
                profile_samples=profiler.samples() or None,
                context={
                    "dataset": dataset.name,
                    "records": len(dataset),
                    "workers": args.workers,
                    "shards": args.shards,
                    "columnar": not args.no_columnar,
                    "repeat": args.repeat,
                },
            )
        print()
        print(f"run {run_id} recorded in {args.store}")
    if args.output:
        output = Path(args.output)
        output.mkdir(parents=True, exist_ok=True)
        write_spans_jsonl(output / "spans.jsonl", tracer.roots())
        write_metrics_json(output / "metrics.json", registry)
        logging.getLogger("repro.trace").info(
            "telemetry written to %s", output
        )
    return 1 if failures else 0


def _command_stream(args: argparse.Namespace, fmt: CsvFormat) -> int:
    handlers = {
        "init": _command_stream_init,
        "ingest": _command_stream_ingest,
        "snapshot": _command_stream_snapshot,
        "status": _command_stream_status,
    }
    return handlers[args.stream_command](args, fmt)


def _command_graph_build(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.graph import build_graph_from_experiment
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        dataset = store.load_dataset(args.dataset)
        experiment = store.load_experiment(args.dataset, args.experiment)
        graph = build_graph_from_experiment(
            store, args.name, dataset, experiment, threshold=args.threshold
        )
        summary = graph.summary()
        print(
            f"graph {args.name!r} built from {args.experiment!r}: "
            f"{summary['node_count']} nodes, {summary['edge_count']} edges, "
            f"{summary['cluster_count']} clusters "
            f"(threshold {summary['threshold']:g})"
        )
    return 0


def _format_edge(edge: dict) -> str:
    mark = "=" if edge["accepted"] else "~"
    return f"{edge['first']} {mark}[{edge['score']:.3f}]{mark} {edge['second']}"


def _command_graph_neighbors(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.graph import load_graph
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        graph = load_graph(store, args.name)
        result = graph.neighbors(args.record, k=args.k, threshold=args.threshold)
    print(
        f"{result['record']}: {len(result['neighbors']) - 1} records "
        f"within {result['k']} hops"
    )
    for row in result["neighbors"]:
        print(f"  hop {row['hops']}: {row['record']}")
    for edge in result["edges"]:
        print(f"  {_format_edge(edge)}")
    return 0


def _command_graph_path(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.graph import load_graph
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        graph = load_graph(store, args.name)
        result = graph.path(
            args.from_record, args.to_record, threshold=args.threshold
        )
    if not result["found"]:
        print(
            f"no path from {args.from_record!r} to {args.to_record!r} "
            "(different components)"
        )
        return 1
    print(" -> ".join(result["path"]))
    for edge in result["edges"]:
        print(f"  {_format_edge(edge)}")
    return 0


def _command_graph_component(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.graph import load_graph
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        graph = load_graph(store, args.name)
        result = graph.component_of(args.record)
    bounds = (
        f", scores {result['min_score']:.3f}..{result['max_score']:.3f}"
        if result["min_score"] is not None
        else ""
    )
    print(
        f"component of {args.record!r}: {result['size']} records, "
        f"{result['edge_count']} edges, density {result['density']:.2f}"
        f"{bounds}"
    )
    print("  " + " ".join(result["records"]))
    return 0


def _command_graph_explain(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.graph import load_graph
    from repro.storage.database import FrostStore

    with FrostStore(args.store) as store:
        graph = load_graph(store, args.name)
        result = graph.evidence_path(args.from_record, args.to_record)
    if not result["found"]:
        print(
            f"{args.from_record!r} and {args.to_record!r} are not in "
            "the same cluster"
        )
        return 1
    print(
        " -> ".join(result["path"])
        + (
            f"  (weakest link {result['bottleneck']:.3f})"
            if result["bottleneck"] is not None
            else ""
        )
    )
    for edge in result["edges"]:
        print(f"  {_format_edge(edge)}")
        for attribute, value in sorted((edge.get("evidence") or {}).items()):
            rendered = "null" if value is None else f"{value:.3f}"
            print(f"      {attribute}: {rendered}")
    return 0


def _command_graph(args: argparse.Namespace, fmt: CsvFormat) -> int:
    handlers = {
        "build": _command_graph_build,
        "neighbors": _command_graph_neighbors,
        "path": _command_graph_path,
        "component": _command_graph_component,
        "explain": _command_graph_explain,
    }
    return handlers[args.graph_command](args, fmt)


def _format_ms(seconds: float | None) -> str:
    return "?" if seconds is None else f"{seconds * 1000:.2f}ms"


def _command_telemetry_list(args: argparse.Namespace, warehouse) -> int:
    runs = warehouse.list_runs()
    if not runs:
        print("no runs recorded")
        return 0
    for run in runs:
        profiled = (
            f", {run['profile_samples']} profile samples"
            if run["profile_samples"]
            else ""
        )
        print(
            f"run {run['run_id']}: {run['name']}, {run['spans']} spans, "
            f"{_format_ms(run['wall_seconds'])}{profiled}"
        )
    return 0


def _command_telemetry_show(args: argparse.Namespace, warehouse) -> int:
    from repro.telemetry import render_span_tree

    run_id = warehouse.resolve_run(args.run)
    print(f"run {run_id}")
    for root in warehouse.run_spans(run_id):
        print(render_span_tree(root))
    metrics = warehouse.run_metrics(run_id)
    if metrics:
        print()
        for name, snapshot in metrics.items():
            print(f"{name}: {snapshot}")
    profile = warehouse.run_profile(run_id)
    if profile:
        print()
        print(
            f"profile: {sum(profile.values())} samples across "
            f"{len(profile)} distinct stacks"
        )
        for stack, count in list(profile.items())[:10]:
            print(f"  {count:6d}  {stack.rsplit(';', 1)[-1]}")
    return 0


def _command_telemetry_slowest(args: argparse.Namespace, warehouse) -> int:
    rows = warehouse.slowest_spans(run=args.run, limit=args.limit)
    if not rows:
        print("no spans recorded")
        return 0
    for row in rows:
        print(
            f"run {row['run_id']} ({row['run_name']}): {row['name']}  "
            f"{_format_ms(row['seconds'])}"
        )
    return 0


def _command_telemetry_diff(args: argparse.Namespace, warehouse) -> int:
    run_a = warehouse.resolve_run(args.run_a)
    run_b = warehouse.resolve_run(args.run_b)
    print(f"run {run_a} -> run {run_b} (per-stage wall time)")
    for row in warehouse.diff_runs(run_a, run_b):
        if row["delta_seconds"] is None:
            side = "only in A" if row["seconds_a"] is not None else "only in B"
            seconds = (
                row["seconds_a"]
                if row["seconds_a"] is not None
                else row["seconds_b"]
            )
            print(f"  {row['stage']}: {side} ({_format_ms(seconds)})")
            continue
        sign = "+" if row["delta_seconds"] >= 0 else "-"
        ratio = (
            f" ({row['ratio']:.2f}x)" if row["ratio"] is not None else ""
        )
        print(
            f"  {row['stage']}: {_format_ms(row['seconds_a'])} -> "
            f"{_format_ms(row['seconds_b'])}  "
            f"{sign}{_format_ms(abs(row['delta_seconds']))}{ratio}"
        )
    return 0


def _command_telemetry_prune(args: argparse.Namespace, warehouse) -> int:
    if args.keep is None and args.older_than is None:
        raise ValueError("prune needs --keep and/or --older-than")
    deleted = warehouse.prune(
        keep=args.keep, older_than_seconds=args.older_than
    )
    print(f"pruned {deleted} run(s), {len(warehouse.list_runs())} kept")
    return 0


def _command_telemetry(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.telemetry.store import TelemetryError, TelemetryStore

    handlers = {
        "list": _command_telemetry_list,
        "show": _command_telemetry_show,
        "slowest": _command_telemetry_slowest,
        "diff": _command_telemetry_diff,
        "prune": _command_telemetry_prune,
    }
    # A warehouse query against a mistyped path must not silently
    # create and inspect a brand-new empty database.
    if not Path(args.store).exists():
        raise ValueError(f"telemetry store {args.store!r} does not exist")
    try:
        with TelemetryStore(args.store) as warehouse:
            return handlers[args.telemetry_command](args, warehouse)
    except TelemetryError as error:
        raise ValueError(str(error)) from None


_COMMANDS = {
    "metrics": _command_metrics,
    "diagram": _command_diagram,
    "venn": _command_venn,
    "profile": _command_profile,
    "categorize": _command_categorize,
    "engine": _command_engine,
    "stream": _command_stream,
    "graph": _command_graph,
    "serve": _command_serve,
    "trace": _command_trace,
    "telemetry": _command_telemetry,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    from repro.engine.runner import EngineError
    from repro.storage.database import StorageError
    from repro.streaming import StreamError

    parser = build_parser()
    args = parser.parse_args(argv)
    # force=True: each CLI invocation (tests call main() repeatedly in
    # one process) re-binds the handler to the *current* stderr.
    if args.log_format == "json":
        from repro.telemetry.logging import configure_structured_logging

        configure_structured_logging(
            level=getattr(logging, args.log_level.upper()), stream=sys.stderr
        )
    else:
        logging.basicConfig(
            level=getattr(logging, args.log_level.upper()),
            stream=sys.stderr,
            format="%(levelname)s %(name)s: %(message)s",
            force=True,
        )
    fmt = CsvFormat(separator=args.separator)
    try:
        return _COMMANDS[args.command](args, fmt)
    except (
        OSError, ValueError, KeyError, EngineError, StorageError, StreamError
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
