"""Command-line interface to the Frost platform.

Snowman exposes its functionality through a CLI next to GUI and API
(§3.3 lists CLI among the interface KPIs; Appendix A.5 describes
Snowman's CLI).  This module provides the same entry points over the
file-based import formats::

    python -m repro metrics  --dataset d.csv --gold g.csv --experiment e.csv
    python -m repro diagram  --dataset d.csv --gold g.csv --experiment e.csv
    python -m repro venn     --dataset d.csv --gold g.csv --experiment a.csv --experiment b.csv
    python -m repro profile  --dataset d.csv [--dataset other.csv]
    python -m repro categorize --dataset d.csv --gold g.csv --experiment e.csv

Every command reads CSV files (``--separator`` configures the dialect)
and prints plain text to stdout.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import compute_diagram_optimized
from repro.core.experiment import Experiment, GoldStandard
from repro.core.records import Dataset
from repro.io.csvio import CsvFormat
from repro.io.importers import (
    PairFormatImporter,
    import_dataset,
    import_gold_standard,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser behind ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Frost: benchmark and explore data matching results.",
    )
    parser.add_argument(
        "--separator", default=",", help="CSV separator (default ',')"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    def add_io_arguments(sub: argparse.ArgumentParser, experiments: str) -> None:
        sub.add_argument("--dataset", required=True, help="dataset CSV path")
        sub.add_argument("--id-column", default="id")
        sub.add_argument("--gold", required=True, help="gold standard CSV path")
        sub.add_argument(
            "--gold-format", choices=("pairs", "clusters"), default="pairs"
        )
        if experiments == "one":
            sub.add_argument("--experiment", required=True, help="result CSV path")
        elif experiments == "many":
            sub.add_argument(
                "--experiment",
                action="append",
                required=True,
                help="result CSV path (repeatable)",
            )

    metrics = commands.add_parser(
        "metrics", help="quality metrics of experiments against a gold standard"
    )
    add_io_arguments(metrics, experiments="many")
    metrics.add_argument(
        "--metric",
        action="append",
        help="metric name (repeatable; default: precision, recall, f1)",
    )

    diagram = commands.add_parser(
        "diagram", help="precision/recall/f1 over similarity thresholds"
    )
    add_io_arguments(diagram, experiments="one")
    diagram.add_argument("--samples", type=int, default=20)

    venn = commands.add_parser(
        "venn", help="set-based comparison of experiments and the gold standard"
    )
    add_io_arguments(venn, experiments="many")

    profile = commands.add_parser(
        "profile", help="profile one dataset, or compare two"
    )
    profile.add_argument(
        "--dataset",
        action="append",
        required=True,
        help="dataset CSV path (repeat to compare two datasets)",
    )
    profile.add_argument("--id-column", default="id")

    categorize = commands.add_parser(
        "categorize", help="categorize the errors of an experiment"
    )
    add_io_arguments(categorize, experiments="one")
    categorize.add_argument(
        "--limit", type=int, default=None, help="categorize at most N FNs and FPs"
    )
    return parser


def _load_dataset(path: str, id_column: str, fmt: CsvFormat) -> Dataset:
    return import_dataset(
        Path(path), id_column=id_column, fmt=fmt, name=Path(path).stem
    )


def _load_gold(path: str, format_: str, fmt: CsvFormat) -> GoldStandard:
    return import_gold_standard(Path(path), format_=format_, fmt=fmt)


def _load_experiment(path: str, fmt: CsvFormat) -> Experiment:
    importer = PairFormatImporter(fmt=fmt)
    return importer.import_experiment(Path(path), name=Path(path).stem)


def _matrix(
    dataset: Dataset, experiment: Experiment, gold: GoldStandard
) -> ConfusionMatrix:
    return ConfusionMatrix.from_clusterings(
        experiment.clustering(), gold.clustering, dataset.total_pairs()
    )


def _command_metrics(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.metrics.registry import default_registry

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    names = args.metric or ["precision", "recall", "f1"]
    registry = default_registry()
    print("experiment  " + "  ".join(names))
    for path in args.experiment:
        experiment = _load_experiment(path, fmt)
        values = registry.evaluate(_matrix(dataset, experiment, gold), names)
        cells = "  ".join(f"{values[name]:.4f}" for name in names)
        print(f"{experiment.name}  {cells}")
    return 0


def _command_diagram(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.metrics.pairwise import f1_score, precision, recall

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    experiment = _load_experiment(args.experiment, fmt)
    points = compute_diagram_optimized(dataset, experiment, gold, args.samples)
    print("threshold  precision  recall  f1")
    for point in points:
        threshold = (
            "inf" if point.threshold == float("inf") else f"{point.threshold:.4f}"
        )
        print(
            f"{threshold}  {precision(point.matrix):.4f}  "
            f"{recall(point.matrix):.4f}  {f1_score(point.matrix):.4f}"
        )
    return 0


def _command_venn(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.exploration.setops import SetComparison

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    inputs: dict[str, Experiment | GoldStandard] = {"gold": gold}
    for path in args.experiment:
        experiment = _load_experiment(path, fmt)
        inputs[experiment.name] = experiment
    comparison = SetComparison(dataset, inputs)
    for label, size in sorted(comparison.region_sizes().items()):
        print(f"{label}: {size}")
    return 0


def _command_profile(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.profiling import profile_dataset, vocabulary_similarity

    datasets = [_load_dataset(p, args.id_column, fmt) for p in args.dataset]
    for dataset in datasets:
        profile = profile_dataset(dataset)
        print(
            f"{dataset.name}: records={profile.tuple_count} "
            f"sparsity={profile.sparsity:.3f} textuality={profile.textuality:.2f} "
            f"schema_complexity={profile.schema_complexity}"
        )
    if len(datasets) == 2:
        similarity = vocabulary_similarity(datasets[0], datasets[1])
        print(f"vocabulary similarity: {similarity:.3f}")
    return 0


def _command_categorize(args: argparse.Namespace, fmt: CsvFormat) -> int:
    from repro.exploration.error_categories import categorize_errors

    dataset = _load_dataset(args.dataset, args.id_column, fmt)
    gold = _load_gold(args.gold, args.gold_format, fmt)
    experiment = _load_experiment(args.experiment, fmt)
    categorization = categorize_errors(
        dataset, experiment, gold, limit=args.limit
    )
    print(categorization.render_report())
    weakness = categorization.dominant_weakness()
    if weakness is not None:
        print(f"dominant weakness among missed duplicates: {weakness.value}")
    return 0


_COMMANDS = {
    "metrics": _command_metrics,
    "diagram": _command_diagram,
    "venn": _command_venn,
    "profile": _command_profile,
    "categorize": _command_categorize,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    fmt = CsvFormat(separator=args.separator)
    try:
        return _COMMANDS[args.command](args, fmt)
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
