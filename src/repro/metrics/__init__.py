"""Quality metrics: pair-based, cluster-based, blocking, ground-truth-free."""

from repro.metrics import blocking_quality, clusterwise, noground, pairwise
from repro.metrics.blocking_quality import (
    BlockingQuality,
    evaluate_blocker,
    evaluate_blocking,
)
from repro.metrics.pairwise import f1_score, precision, recall
from repro.metrics.registry import MetricRegistry, default_registry

__all__ = [
    "BlockingQuality",
    "MetricRegistry",
    "blocking_quality",
    "clusterwise",
    "default_registry",
    "evaluate_blocker",
    "evaluate_blocking",
    "f1_score",
    "noground",
    "pairwise",
    "precision",
    "recall",
]
