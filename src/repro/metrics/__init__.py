"""Quality metrics: pair-based, cluster-based, and ground-truth-free."""

from repro.metrics import clusterwise, noground, pairwise
from repro.metrics.pairwise import f1_score, precision, recall
from repro.metrics.registry import MetricRegistry, default_registry

__all__ = [
    "MetricRegistry",
    "clusterwise",
    "default_registry",
    "f1_score",
    "noground",
    "pairwise",
    "precision",
    "recall",
]
