"""Quality estimation without ground truth (§3.2.3).

Real-world use cases frequently lack labeled data; these estimators
judge a matching result from its inherent structure or by comparison to
other results on the same dataset:

* transitive-closure distance — inconsistency of the raw match set;
* identity-link-network redundancy (following the intuition of
  Idrissou et al.'s eQ metric [34]: redundant links within a component
  corroborate it, bridges make it suspect);
* cluster compactness and neighborhood sparsity (Chaudhuri et al. [7]);
* agreement between duplicate-clustering algorithms applied to the same
  scored matches;
* deviation from the majority vote of several matching solutions [59].
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.clustering import Clustering, closure_distance
from repro.core.experiment import Experiment
from repro.core.pairs import Pair, make_pair

__all__ = [
    "transitive_closure_distance",
    "component_redundancy",
    "bridge_count",
    "link_network_quality",
    "cluster_compactness",
    "neighborhood_sparsity",
    "compactness_sparsity_ratio",
    "clustering_agreement",
    "majority_vote_pairs",
    "consensus_deviation",
]


# -- closure consistency ---------------------------------------------------------


def transitive_closure_distance(experiment: Experiment) -> int:
    """Pairs that must be added for the match set to be closed.

    "The larger this number, the more inconsistent the proposed
    matches" (§3.2.3).  Computed on the *original* (non-closure) pairs.
    """
    return closure_distance(experiment.original_pairs())


# -- identity link network structure ----------------------------------------------


def _adjacency(pairs: Iterable[Pair]) -> dict[str, set[str]]:
    adjacency: dict[str, set[str]] = {}
    for first, second in pairs:
        adjacency.setdefault(first, set()).add(second)
        adjacency.setdefault(second, set()).add(first)
    return adjacency


def _components(adjacency: dict[str, set[str]]) -> list[set[str]]:
    seen: set[str] = set()
    components: list[set[str]] = []
    for start in adjacency:
        if start in seen:
            continue
        stack = [start]
        component: set[str] = set()
        while stack:
            node = stack.pop()
            if node in component:
                continue
            component.add(node)
            stack.extend(adjacency[node] - component)
        seen.update(component)
        components.append(component)
    return components


def component_redundancy(pairs: Iterable[Iterable[str]]) -> float:
    """Average edge redundancy of the identity-link network's components.

    For a component with ``n`` nodes and ``m`` edges, redundancy is
    ``(m - (n-1)) / (C(n,2) - (n-1))`` — 0 for a spanning tree (every
    link is uncorroborated), 1 for a complete graph (maximal mutual
    corroboration).  Components of size 2 are complete by construction
    and score 1.  Higher redundancy correlates with higher matching
    quality [34].
    """
    canonical = {make_pair(*pair) for pair in pairs}
    if not canonical:
        return 1.0
    adjacency = _adjacency(canonical)
    edge_count: dict[frozenset[str], int] = {}
    components = _components(adjacency)
    edges_in: list[int] = []
    for component in components:
        edges = sum(
            1 for pair in canonical if pair[0] in component
        )
        edges_in.append(edges)
    total = 0.0
    for component, edges in zip(components, edges_in):
        n = len(component)
        possible = n * (n - 1) // 2
        tree = n - 1
        if possible == tree:
            total += 1.0
        else:
            total += (edges - tree) / (possible - tree)
    return total / len(components)


def bridge_count(pairs: Iterable[Iterable[str]]) -> int:
    """Number of bridge edges in the identity-link network.

    A bridge is a link whose removal disconnects its component; such
    links are uncorroborated and therefore suspect [34].  Iterative
    Tarjan bridge finding (no recursion, safe for long chains).
    """
    canonical = {make_pair(*pair) for pair in pairs}
    adjacency = _adjacency(canonical)
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    counter = 0
    bridges = 0
    for start in adjacency:
        if start in index:
            continue
        # iterative DFS: stack of (node, parent, iterator over neighbours)
        index[start] = low[start] = counter
        counter += 1
        stack = [(start, None, iter(adjacency[start]))]
        while stack:
            node, parent, neighbours = stack[-1]
            advanced = False
            for neighbour in neighbours:
                if neighbour == parent:
                    continue
                if neighbour in index:
                    low[node] = min(low[node], index[neighbour])
                else:
                    index[neighbour] = low[neighbour] = counter
                    counter += 1
                    stack.append((neighbour, node, iter(adjacency[neighbour])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                if parent is not None:
                    low[parent] = min(low[parent], low[node])
                    if low[node] > index[parent]:
                        bridges += 1
    return bridges


def link_network_quality(experiment: Experiment) -> float:
    """A [0, 1] eQ-style quality estimate of an experiment's link network.

    Combines component redundancy with the fraction of non-bridge links:
    both high redundancy and few bridges indicate mutually corroborated,
    and empirically correct, matches [34].
    """
    pairs = experiment.original_pairs()
    if not pairs:
        return 1.0
    redundancy = component_redundancy(pairs)
    bridge_fraction = bridge_count(pairs) / len(pairs)
    return (redundancy + (1.0 - bridge_fraction)) / 2.0


# -- compactness and sparsity [7] ------------------------------------------------------


def cluster_compactness(experiment: Experiment) -> float:
    """Mean similarity score over the experiment's matched pairs.

    "Duplicate records are typically closer to each other than to other
    records", so compact clusters indicate a good result (§3.2.3).
    Requires scores on the matches (compactness is undefined otherwise).
    """
    scored = experiment.scored_pairs()
    if not scored:
        raise ValueError(
            f"compactness needs similarity scores; {experiment.name!r} has none"
        )
    return sum(sp.score for sp in scored) / len(scored)


def neighborhood_sparsity(
    experiment: Experiment, near_miss_scores: Sequence[float]
) -> float:
    """Mean similarity of the closest *non*-matches around the clusters.

    ``near_miss_scores`` are the similarity scores the solution assigned
    to close non-match pairs (e.g. candidate pairs below the threshold).
    Low values mean sparse neighborhoods — desirable per [7].
    """
    if not near_miss_scores:
        return 0.0
    return sum(near_miss_scores) / len(near_miss_scores)


def compactness_sparsity_ratio(
    experiment: Experiment, near_miss_scores: Sequence[float]
) -> float:
    """compactness / sparsity — larger is better; ``inf`` when isolated."""
    compact = cluster_compactness(experiment)
    sparse = neighborhood_sparsity(experiment, near_miss_scores)
    if sparse == 0.0:
        return float("inf")
    return compact / sparse


# -- clustering agreement ----------------------------------------------------------------


def clustering_agreement(clusterings: Sequence[Clustering]) -> float:
    """Mean pairwise agreement of several clusterings of the same matches.

    "The more similar the resulting clusterings are, the more consistent
    are the initially discovered matches" (§3.2.3).  Agreement of a pair
    of clusterings is the Jaccard similarity of their pair sets.
    """
    if len(clusterings) < 2:
        return 1.0
    pair_sets = [clustering.pairs() for clustering in clusterings]
    total = 0.0
    count = 0
    for i in range(len(pair_sets)):
        for j in range(i + 1, len(pair_sets)):
            union = pair_sets[i] | pair_sets[j]
            if not union:
                total += 1.0
            else:
                total += len(pair_sets[i] & pair_sets[j]) / len(union)
            count += 1
    return total / count


# -- consensus across solutions [59] -------------------------------------------------------


def majority_vote_pairs(experiments: Sequence[Experiment]) -> set[Pair]:
    """Pairs matched by a strict majority of the given experiments.

    An "experimental ground truth" in the sense of Vogel et al. [59]
    and §4.1 — useful when no gold standard exists.
    """
    if not experiments:
        return set()
    counts: dict[Pair, int] = {}
    for experiment in experiments:
        for pair in experiment.pairs():
            counts[pair] = counts.get(pair, 0) + 1
    needed = len(experiments) // 2 + 1
    return {pair for pair, count in counts.items() if count >= needed}


def consensus_deviation(
    experiment: Experiment, others: Sequence[Experiment]
) -> int:
    """Number of decisions in which ``experiment`` deviates from the majority.

    The consensus on an individual matching decision is a good indicator
    of its correctness [59]; the total number of deviations estimates
    the quality of the whole matching result (§3.2.3).  Counted over the
    union of all matched pairs (non-matches agreed by everyone are not
    enumerable without the dataset).
    """
    panel = [experiment, *others]
    majority = majority_vote_pairs(panel)
    mine = experiment.pairs()
    considered = set().union(*(e.pairs() for e in panel))
    deviations = 0
    for pair in considered:
        in_majority = pair in majority
        in_mine = pair in mine
        if in_majority != in_mine:
            deviations += 1
    return deviations
