"""Cluster-based quality metrics (§3.2.2).

These metrics compare the *clusterings* of ground truth and experiment
rather than their pair sets, making them immune to the quadratic
true-negative imbalance.  They require the experiment to be transitively
closed (use :meth:`Experiment.clustering`).

Implemented: the closest-cluster f1 score [4], the Variation of
Information [41], the Generalized Merge Distance with pluggable cost
functions and its specializations (basic merge distance, pairwise
distance) [42], exact cluster precision/recall/f1, and the adjusted
Rand index as a convenience.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable

from repro.core.clustering import Clustering

__all__ = [
    "closest_cluster_precision",
    "closest_cluster_recall",
    "closest_cluster_f1",
    "variation_of_information",
    "generalized_merge_distance",
    "basic_merge_distance",
    "pairwise_merge_distance",
    "cluster_precision",
    "cluster_recall",
    "cluster_f1",
    "adjusted_rand_index",
]


def _universe(
    experiment: Clustering,
    truth: Clustering,
    records: Iterable[str] | None,
) -> list[str]:
    if records is not None:
        return list(records)
    return sorted(experiment.records() | truth.records())


def _overlap_table(
    experiment: Clustering, truth: Clustering, universe: list[str]
) -> tuple[dict[int, int], dict[int, int], dict[tuple[int, int], int]]:
    """Cluster sizes and the contingency (overlap) table over ``universe``.

    Records outside any explicit cluster get fresh singleton indices so
    every record contributes exactly once.
    """
    exp_sizes: dict[int, int] = {}
    truth_sizes: dict[int, int] = {}
    overlap: dict[tuple[int, int], int] = {}
    next_exp = len(experiment.clusters)
    next_truth = len(truth.clusters)
    for record_id in universe:
        exp_index = experiment.cluster_index(record_id)
        if exp_index is None:
            exp_index = next_exp
            next_exp += 1
        truth_index = truth.cluster_index(record_id)
        if truth_index is None:
            truth_index = next_truth
            next_truth += 1
        exp_sizes[exp_index] = exp_sizes.get(exp_index, 0) + 1
        truth_sizes[truth_index] = truth_sizes.get(truth_index, 0) + 1
        key = (exp_index, truth_index)
        overlap[key] = overlap.get(key, 0) + 1
    return exp_sizes, truth_sizes, overlap


# -- closest cluster f1 [4] -------------------------------------------------------


def _closest_cluster_score(
    from_sizes: dict[int, int],
    to_sizes: dict[int, int],
    overlap_by_from: dict[int, dict[int, int]],
) -> float:
    """Average, over 'from' clusters, of the best Jaccard match in 'to'."""
    if not from_sizes:
        return 1.0
    total = 0.0
    for from_index, size in from_sizes.items():
        best = 0.0
        for to_index, shared in overlap_by_from.get(from_index, {}).items():
            union = size + to_sizes[to_index] - shared
            best = max(best, shared / union)
        total += best
    return total / len(from_sizes)


def closest_cluster_precision(
    experiment: Clustering,
    truth: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """Average best-Jaccard of each experiment cluster against the truth."""
    universe = _universe(experiment, truth, records)
    exp_sizes, truth_sizes, overlap = _overlap_table(experiment, truth, universe)
    by_exp: dict[int, dict[int, int]] = {}
    for (exp_index, truth_index), shared in overlap.items():
        by_exp.setdefault(exp_index, {})[truth_index] = shared
    return _closest_cluster_score(exp_sizes, truth_sizes, by_exp)


def closest_cluster_recall(
    experiment: Clustering,
    truth: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """Average best-Jaccard of each truth cluster against the experiment."""
    universe = _universe(experiment, truth, records)
    exp_sizes, truth_sizes, overlap = _overlap_table(experiment, truth, universe)
    by_truth: dict[int, dict[int, int]] = {}
    for (exp_index, truth_index), shared in overlap.items():
        by_truth.setdefault(truth_index, {})[exp_index] = shared
    return _closest_cluster_score(truth_sizes, exp_sizes, by_truth)


def closest_cluster_f1(
    experiment: Clustering,
    truth: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """Harmonic mean of closest-cluster precision and recall [4]."""
    p = closest_cluster_precision(experiment, truth, records)
    r = closest_cluster_recall(experiment, truth, records)
    if p == 0.0 and r == 0.0:
        return 0.0
    return 2 * p * r / (p + r)


# -- variation of information [41] -------------------------------------------------


def variation_of_information(
    experiment: Clustering,
    truth: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """Meila's Variation of Information, ``VI = H(E|T) + H(T|E)`` (nats).

    Non-negative; zero exactly when the clusterings agree on the
    universe.  A true metric on the space of partitions.
    """
    universe = _universe(experiment, truth, records)
    n = len(universe)
    if n == 0:
        return 0.0
    exp_sizes, truth_sizes, overlap = _overlap_table(experiment, truth, universe)
    vi = 0.0
    for (exp_index, truth_index), shared in overlap.items():
        p_joint = shared / n
        p_exp = exp_sizes[exp_index] / n
        p_truth = truth_sizes[truth_index] / n
        vi -= p_joint * (
            math.log(p_joint / p_exp) + math.log(p_joint / p_truth)
        )
    # numerical noise can produce tiny negatives for identical clusterings
    return max(vi, 0.0)


# -- generalized merge distance [42] ------------------------------------------------

CostFunction = Callable[[int, int], float]


def generalized_merge_distance(
    source: Clustering,
    target: Clustering,
    merge_cost: CostFunction,
    split_cost: CostFunction,
    records: Iterable[str] | None = None,
) -> float:
    """Menestrina et al.'s GMD via the linear-time "Slice" algorithm.

    The cheapest sequence of cluster merges and splits transforming
    ``source`` into ``target``, where merging groups of sizes ``x`` and
    ``y`` costs ``merge_cost(x, y)`` and splitting a cluster into parts
    of sizes ``x`` and ``y`` costs ``split_cost(x, y)``.  Cost functions
    must be non-negative; the standard algorithm assumes they are
    monotone in both arguments.
    """
    universe = _universe(source, target, records)
    # partition each source cluster by target cluster
    target_index_of: dict[str, int] = {}
    next_target = len(target.clusters)
    for record_id in universe:
        index = target.cluster_index(record_id)
        if index is None:
            index = next_target
            next_target += 1
        target_index_of[record_id] = index

    source_index_of: dict[str, int] = {}
    next_source = len(source.clusters)
    groups: dict[int, dict[int, int]] = {}
    for record_id in universe:
        source_index = source.cluster_index(record_id)
        if source_index is None:
            source_index = next_source
            next_source += 1
        source_index_of[record_id] = source_index
        target_index = target_index_of[record_id]
        parts = groups.setdefault(source_index, {})
        parts[target_index] = parts.get(target_index, 0) + 1

    cost = 0.0
    # accumulated size per target cluster, across source clusters seen so far
    accumulated: dict[int, int] = {}
    for parts in groups.values():
        sizes = list(parts.values())
        total = sum(sizes)
        # split the source cluster into its parts, peeling one at a time
        remaining = total
        for size in sizes[:-1]:
            cost += split_cost(size, remaining - size)
            remaining -= size
        # merge each part into the growing target cluster
        for target_index, size in parts.items():
            seen = accumulated.get(target_index, 0)
            if seen > 0:
                cost += merge_cost(size, seen)
            accumulated[target_index] = seen + size
    return cost


def basic_merge_distance(
    source: Clustering,
    target: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """GMD with unit costs: the minimum number of merge/split operations."""
    return generalized_merge_distance(
        source, target, merge_cost=lambda x, y: 1.0, split_cost=lambda x, y: 1.0,
        records=records,
    )


def pairwise_merge_distance(
    source: Clustering,
    target: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """GMD with product costs ``f(x, y) = x·y``.

    Equals the number of pair-level disagreements ``FP + FN`` between
    the two clusterings — the bridge between the cluster and pair views
    shown by Menestrina et al.
    """
    return generalized_merge_distance(
        source, target, merge_cost=lambda x, y: float(x * y),
        split_cost=lambda x, y: float(x * y), records=records,
    )


# -- exact cluster matching -----------------------------------------------------------


def cluster_precision(experiment: Clustering, truth: Clustering) -> float:
    """Fraction of experiment clusters reproduced exactly in the truth.

    Only non-singleton clusters are considered, since singletons are
    representation-dependent.
    """
    experiment_clusters = experiment.nontrivial_clusters()
    if not experiment_clusters:
        return 1.0
    truth_clusters = truth.nontrivial_clusters()
    return len(experiment_clusters & truth_clusters) / len(experiment_clusters)


def cluster_recall(experiment: Clustering, truth: Clustering) -> float:
    """Fraction of truth clusters reproduced exactly by the experiment."""
    truth_clusters = truth.nontrivial_clusters()
    if not truth_clusters:
        return 1.0
    experiment_clusters = experiment.nontrivial_clusters()
    return len(experiment_clusters & truth_clusters) / len(truth_clusters)


def cluster_f1(experiment: Clustering, truth: Clustering) -> float:
    """Harmonic mean of exact cluster precision and recall."""
    p = cluster_precision(experiment, truth)
    r = cluster_recall(experiment, truth)
    if p == 0.0 and r == 0.0:
        return 0.0
    return 2 * p * r / (p + r)


# -- adjusted Rand index ---------------------------------------------------------------


def adjusted_rand_index(
    experiment: Clustering,
    truth: Clustering,
    records: Iterable[str] | None = None,
) -> float:
    """Hubert & Arabie's chance-corrected Rand index, in [-0.5, 1]."""
    universe = _universe(experiment, truth, records)
    n = len(universe)
    if n < 2:
        return 1.0
    exp_sizes, truth_sizes, overlap = _overlap_table(experiment, truth, universe)

    def comb2(k: int) -> int:
        return k * (k - 1) // 2

    sum_overlap = sum(comb2(v) for v in overlap.values())
    sum_exp = sum(comb2(v) for v in exp_sizes.values())
    sum_truth = sum(comb2(v) for v in truth_sizes.values())
    total = comb2(n)
    expected = sum_exp * sum_truth / total
    maximum = (sum_exp + sum_truth) / 2.0
    if maximum == expected:
        return 1.0
    return (sum_overlap - expected) / (maximum - expected)
