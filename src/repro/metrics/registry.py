"""Metric registry — Frost's extensibility point for quality metrics.

"To be universally useful but highly adaptable, Frost focuses on many
well-known metrics, but can be extended easily by any other metrics"
(§3.2).  The registry maps metric names to callables over confusion
matrices and powers the platform's N-Metrics viewer and the diagram
axes selection.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.confusion import ConfusionMatrix
from repro.metrics import pairwise

__all__ = ["MetricRegistry", "default_registry"]

PairMetric = Callable[[ConfusionMatrix], float]


class MetricRegistry:
    """Named collection of pair-based metrics.

    >>> registry = default_registry()
    >>> sorted(registry)[:3]
    ['accuracy', 'balanced_accuracy', 'bookmaker_informedness']
    """

    def __init__(self) -> None:
        self._metrics: dict[str, PairMetric] = {}

    def register(self, name: str, metric: PairMetric, replace: bool = False) -> None:
        """Register ``metric`` under ``name``.

        Raises ``ValueError`` on name collision unless ``replace`` is
        set — accidental shadowing of a well-known metric would corrupt
        comparisons silently.
        """
        if name in self._metrics and not replace:
            raise ValueError(f"metric {name!r} is already registered")
        self._metrics[name] = metric

    def get(self, name: str) -> PairMetric:
        """The metric callable registered under ``name``."""
        try:
            return self._metrics[name]
        except KeyError:
            known = ", ".join(sorted(self._metrics))
            raise KeyError(f"unknown metric {name!r}; known metrics: {known}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._metrics)

    def evaluate(
        self, matrix: ConfusionMatrix, names: Iterable[str] | None = None
    ) -> dict[str, float]:
        """Evaluate all (or the named) metrics on one confusion matrix."""
        selected = list(names) if names is not None else self.names()
        return {name: self.get(name)(matrix) for name in selected}


def default_registry() -> MetricRegistry:
    """A registry pre-populated with all metrics of §3.2.1."""
    registry = MetricRegistry()
    registry.register("precision", pairwise.precision)
    registry.register("recall", pairwise.recall)
    registry.register("f1", pairwise.f1_score)
    registry.register("f_star", pairwise.f_star)
    registry.register("accuracy", pairwise.accuracy)
    registry.register("balanced_accuracy", pairwise.balanced_accuracy)
    registry.register("specificity", pairwise.specificity)
    registry.register("false_positive_rate", pairwise.false_positive_rate)
    registry.register("false_negative_rate", pairwise.false_negative_rate)
    registry.register("negative_predictive_value", pairwise.negative_predictive_value)
    registry.register("fowlkes_mallows", pairwise.fowlkes_mallows)
    registry.register("matthews_correlation", pairwise.matthews_correlation)
    registry.register("reduction_ratio", pairwise.reduction_ratio)
    registry.register("pairs_completeness", pairwise.pairs_completeness)
    registry.register("pairs_quality", pairwise.pairs_quality)
    registry.register("prevalence", pairwise.prevalence)
    registry.register("jaccard_index", pairwise.jaccard_index)
    registry.register("bookmaker_informedness", pairwise.bookmaker_informedness)
    registry.register("markedness", pairwise.markedness)
    return registry
