"""Pair-based quality metrics (§3.2.1).

All metrics are pure functions of a :class:`ConfusionMatrix` and are
therefore computable at any intermediate stage of the matching pipeline
(candidate generation, decision model, ...), whether or not the match
set is transitively closed.

Conventions for degenerate denominators: a rate whose denominator is
zero is defined as 1.0 when the numerator side is "nothing to get
wrong" (e.g. precision with no predicted positives) — the solution made
no mistakes of that kind — matching the behaviour of most ER toolkits.
MCC with a zero denominator is defined as 0.0 (no correlation).
"""

from __future__ import annotations

import math

from repro.core.confusion import ConfusionMatrix

__all__ = [
    "precision",
    "recall",
    "f1_score",
    "f_beta",
    "f_star",
    "accuracy",
    "balanced_accuracy",
    "specificity",
    "false_positive_rate",
    "false_negative_rate",
    "negative_predictive_value",
    "fowlkes_mallows",
    "matthews_correlation",
    "reduction_ratio",
    "pairs_completeness",
    "pairs_quality",
    "prevalence",
    "jaccard_index",
    "bookmaker_informedness",
    "markedness",
]


def precision(matrix: ConfusionMatrix) -> float:
    """TP / (TP + FP): fraction of declared matches that are correct."""
    denominator = matrix.predicted_positives
    if denominator == 0:
        return 1.0
    return matrix.true_positives / denominator


def recall(matrix: ConfusionMatrix) -> float:
    """TP / (TP + FN): fraction of true duplicates that were found."""
    denominator = matrix.actual_positives
    if denominator == 0:
        return 1.0
    return matrix.true_positives / denominator


def f1_score(matrix: ConfusionMatrix) -> float:
    """Harmonic mean of precision and recall."""
    return f_beta(matrix, beta=1.0)


def f_beta(matrix: ConfusionMatrix, beta: float = 1.0) -> float:
    """Weighted harmonic mean; ``beta > 1`` weights recall higher."""
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")
    p = precision(matrix)
    r = recall(matrix)
    if p == 0.0 and r == 0.0:
        return 0.0
    beta2 = beta * beta
    return (1 + beta2) * p * r / (beta2 * p + r)


def f_star(matrix: ConfusionMatrix) -> float:
    """The f* score of Hand, Christen & Kirielle [30].

    ``f* = TP / (TP + FP + FN)`` — an interpretable transformation of
    the F-measure: the fraction of relevant pairs (matched by either
    experiment or ground truth) that are handled correctly.  Relates to
    f1 via ``f* = f1 / (2 - f1)``.
    """
    denominator = (
        matrix.true_positives + matrix.false_positives + matrix.false_negatives
    )
    if denominator == 0:
        return 1.0
    return matrix.true_positives / denominator


def accuracy(matrix: ConfusionMatrix) -> float:
    """(TP + TN) / all pairs.

    Considered unreliable for matching due to class imbalance: it can
    be close to 1 even when all pairs are classified as non-duplicates
    (§3.2.1).  Provided for completeness.
    """
    if matrix.total == 0:
        return 1.0
    return (matrix.true_positives + matrix.true_negatives) / matrix.total


def specificity(matrix: ConfusionMatrix) -> float:
    """TN / (TN + FP): true-negative rate (used by ROC curves, §4.5.1)."""
    denominator = matrix.actual_negatives
    if denominator == 0:
        return 1.0
    return matrix.true_negatives / denominator


def balanced_accuracy(matrix: ConfusionMatrix) -> float:
    """Mean of recall and specificity."""
    return (recall(matrix) + specificity(matrix)) / 2.0


def false_positive_rate(matrix: ConfusionMatrix) -> float:
    """FP / (FP + TN): x-axis of the ROC curve."""
    return 1.0 - specificity(matrix)


def false_negative_rate(matrix: ConfusionMatrix) -> float:
    """FN / (FN + TP)."""
    return 1.0 - recall(matrix)


def negative_predictive_value(matrix: ConfusionMatrix) -> float:
    """TN / (TN + FN)."""
    denominator = matrix.predicted_negatives
    if denominator == 0:
        return 1.0
    return matrix.true_negatives / denominator


def fowlkes_mallows(matrix: ConfusionMatrix) -> float:
    """Fowlkes–Mallows index [27]: geometric mean of precision and recall."""
    return math.sqrt(precision(matrix) * recall(matrix))


def matthews_correlation(matrix: ConfusionMatrix) -> float:
    """Matthews correlation coefficient [8], in [-1, 1].

    More reliable than accuracy and f1 under class imbalance; 0 when
    any marginal is empty.
    """
    tp, fp = matrix.true_positives, matrix.false_positives
    fn, tn = matrix.false_negatives, matrix.true_negatives
    denominator = math.sqrt(
        float(tp + fp) * float(tp + fn) * float(tn + fp) * float(tn + fn)
    )
    if denominator == 0.0:
        return 0.0
    return (tp * tn - fp * fn) / denominator


def reduction_ratio(matrix: ConfusionMatrix) -> float:
    """1 - |candidates| / |[D]^2| — candidate-generation efficiency [37].

    When the matrix describes the output of a blocking/candidate stage
    (candidates as "predicted positives"), this measures how much of the
    quadratic comparison space the stage pruned.
    """
    if matrix.total == 0:
        return 0.0
    return 1.0 - matrix.predicted_positives / matrix.total


def pairs_completeness(matrix: ConfusionMatrix) -> float:
    """Alias of recall in blocking evaluation contexts [37]."""
    return recall(matrix)


def pairs_quality(matrix: ConfusionMatrix) -> float:
    """Alias of precision in blocking evaluation contexts [37]."""
    return precision(matrix)


def prevalence(matrix: ConfusionMatrix) -> float:
    """(TP + FN) / all pairs — the positive ratio of the task."""
    if matrix.total == 0:
        return 0.0
    return matrix.actual_positives / matrix.total


def jaccard_index(matrix: ConfusionMatrix) -> float:
    """TP / (TP + FP + FN) — identical to f*; kept under its set name."""
    return f_star(matrix)


def bookmaker_informedness(matrix: ConfusionMatrix) -> float:
    """recall + specificity - 1, in [-1, 1]."""
    return recall(matrix) + specificity(matrix) - 1.0


def markedness(matrix: ConfusionMatrix) -> float:
    """precision + NPV - 1, in [-1, 1]."""
    return precision(matrix) + negative_predictive_value(matrix) - 1.0
