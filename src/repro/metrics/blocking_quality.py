"""Blocking-quality evaluation: pairs completeness vs. reduction ratio.

Candidate generation trades recall against pruning power [37]:

* **pairs completeness** — the fraction of true duplicate pairs that
  survive into the candidate set (the recall ceiling of every later
  pipeline stage: a duplicate dropped here is unrecoverable);
* **reduction ratio** — the fraction of the quadratic comparison space
  ``[D]^2`` the blocker pruned away (the work saved);
* **pairs quality** — the duplicate density of the candidate set
  (precision of the blocking stage).

:func:`evaluate_blocking` computes all three from explicit pair sets;
:func:`evaluate_blocker` runs a candidate generator against a dataset
and its gold standard — the harness behind
``benchmarks/bench_lsh_blocking.py``'s config sweeps.  Gold pairs whose
records are absent from the dataset are ignored (a gold standard may
cover records the current dataset slice does not).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.experiment import GoldStandard
from repro.core.pairs import Pair, pair_key
from repro.core.records import Dataset

__all__ = ["BlockingQuality", "evaluate_blocking", "evaluate_blocker"]


@dataclass(frozen=True)
class BlockingQuality:
    """The quality facts of one candidate set against a gold standard."""

    candidate_count: int
    gold_pair_count: int
    total_pairs: int
    true_positives: int

    def __post_init__(self) -> None:
        for name in ("candidate_count", "gold_pair_count", "total_pairs",
                     "true_positives"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.true_positives > min(self.candidate_count, self.gold_pair_count):
            raise ValueError(
                "true_positives cannot exceed either pair set"
            )

    @property
    def pairs_completeness(self) -> float:
        """Gold pairs retained; 1.0 when there is nothing to retain."""
        if self.gold_pair_count == 0:
            return 1.0
        return self.true_positives / self.gold_pair_count

    @property
    def reduction_ratio(self) -> float:
        """Comparison-space fraction pruned; 0.0 on an empty space."""
        if self.total_pairs == 0:
            return 0.0
        return 1.0 - self.candidate_count / self.total_pairs

    @property
    def pairs_quality(self) -> float:
        """Duplicate density of the candidates; 1.0 when none emitted."""
        if self.candidate_count == 0:
            return 1.0
        return self.true_positives / self.candidate_count

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable summary (benchmark tables, job payloads)."""
        return {
            "candidates": self.candidate_count,
            "gold_pairs": self.gold_pair_count,
            "total_pairs": self.total_pairs,
            "true_positives": self.true_positives,
            "pairs_completeness": self.pairs_completeness,
            "reduction_ratio": self.reduction_ratio,
            "pairs_quality": self.pairs_quality,
        }


def evaluate_blocking(
    candidates: Iterable[Iterable[str]],
    gold_pairs: Iterable[Iterable[str]],
    total_pairs: int,
) -> BlockingQuality:
    """Blocking quality from explicit candidate and gold pair sets.

    ``total_pairs`` is ``C(|D|, 2)`` — required for the reduction
    ratio, which is measured against the full comparison space.
    """
    if total_pairs < 0:
        raise ValueError(f"total_pairs must be non-negative, got {total_pairs}")
    candidate_set = {pair_key(pair) for pair in candidates}
    gold_set = {pair_key(pair) for pair in gold_pairs}
    return BlockingQuality(
        candidate_count=len(candidate_set),
        gold_pair_count=len(gold_set),
        total_pairs=total_pairs,
        true_positives=len(candidate_set & gold_set),
    )


def evaluate_blocker(
    dataset: Dataset,
    gold: GoldStandard,
    blocker: Callable[[Dataset], set[Pair]],
) -> BlockingQuality:
    """Run ``blocker`` on ``dataset`` and score it against ``gold``.

    Gold pairs touching records outside the dataset are excluded — no
    blocker over this dataset could emit them, so counting them would
    punish the blocker for the dataset slice.
    """
    known = set(dataset.record_ids)
    gold_pairs = {
        pair
        for pair in gold.pairs()
        if pair[0] in known and pair[1] in known
    }
    return evaluate_blocking(
        blocker(dataset), gold_pairs, dataset.total_pairs()
    )
