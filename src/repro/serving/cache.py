"""Thread-safe read-through cache for served evaluation payloads.

The serving layer's hot path is a GET for a metrics table, diagram, or
error categorization that was already computed for another client.
:class:`MetricResultCache` keeps those JSON payloads in a bounded LRU
keyed by the content fingerprints of
:func:`repro.engine.jobs.job_cache_key` — (dataset, gold, experiment,
metric, config) contents, not registry names — so identical requests
hit regardless of which client asked first.

Unlike the engine's :class:`~repro.engine.cache.ResultCache`, entries
here are *tagged* with the dataset they were derived from: a write to
the platform (new experiment, new gold standard) explicitly invalidates
every payload of that dataset, so a long-running server never serves a
table that silently omits the experiment registered a millisecond ago.
"""

from __future__ import annotations

import threading

from repro.engine.cache import MISS, LruTier
from repro.telemetry.metrics import get_metrics

__all__ = ["MetricResultCache"]

# Process-wide mirrors of the instance counters, feeding GET /metrics.
_SERVING_HITS = get_metrics().counter(
    "frost_serving_cache_hits_total", "Serving payload-cache hits"
)
_SERVING_MISSES = get_metrics().counter(
    "frost_serving_cache_misses_total", "Serving payload-cache misses"
)
_SERVING_PUTS = get_metrics().counter(
    "frost_serving_cache_puts_total", "Serving payload-cache inserts"
)
_SERVING_EVICTIONS = get_metrics().counter(
    "frost_serving_cache_evictions_total", "Serving payload-cache evictions"
)
_SERVING_INVALIDATIONS = get_metrics().counter(
    "frost_serving_cache_invalidations_total",
    "Serving payloads dropped by write invalidation",
)


class MetricResultCache:
    """Bounded LRU of served payloads with tag-scoped invalidation.

    Parameters
    ----------
    max_entries:
        Capacity; least recently used payloads are evicted first.

    All methods are safe to call from the HTTP server's request
    threads concurrently.
    """

    def __init__(self, max_entries: int = 1024) -> None:
        self._tier = LruTier(max_entries)
        self._lock = threading.Lock()
        # tag -> keys cached under it, and the reverse, kept in sync so
        # both invalidation and eviction stay O(affected entries).
        self._tag_keys: dict[str, set[str]] = {}
        self._key_tag: dict[str, str] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.invalidations = 0

    @property
    def max_entries(self) -> int:
        """The configured LRU capacity."""
        return self._tier.max_entries

    def get(self, key: str) -> object:
        """The payload under ``key``, or the :data:`MISS` sentinel."""
        with self._lock:
            payload = self._tier.get(key)
            if payload is MISS:
                self.misses += 1
                _SERVING_MISSES.inc()
            else:
                self.hits += 1
                _SERVING_HITS.inc()
            return payload

    def recheck(self, key: str) -> object:
        """Like :meth:`get`, but a miss is not re-counted.

        For double-checked lookups after a coalesced flight: finding a
        payload is a genuine hit (another flight landed it), while not
        finding one is the *same* logical miss that was already counted
        before the caller queued for the flight.
        """
        with self._lock:
            payload = self._tier.get(key)
            if payload is not MISS:
                self.hits += 1
                _SERVING_HITS.inc()
            return payload

    def put(self, key: str, payload: object, tag: str | None = None) -> None:
        """Cache ``payload`` under ``key``, optionally tagged.

        ``tag`` names the invalidation scope (the dataset the payload
        was computed from); :meth:`invalidate` drops every key of a
        tag at once.
        """
        with self._lock:
            self.puts += 1
            _SERVING_PUTS.inc()
            self._forget_tag(key)
            if tag is not None:
                self._key_tag[key] = tag
                self._tag_keys.setdefault(tag, set()).add(key)
            for evicted_key, _ in self._tier.put(key, payload):
                self.evictions += 1
                _SERVING_EVICTIONS.inc()
                self._forget_tag(evicted_key)

    def invalidate(self, tag: str) -> int:
        """Drop every payload tagged ``tag``; returns how many."""
        with self._lock:
            keys = self._tag_keys.pop(tag, set())
            for key in keys:
                self._tier.pop(key)
                self._key_tag.pop(key, None)
            self.invalidations += len(keys)
            _SERVING_INVALIDATIONS.inc(len(keys))
            return len(keys)

    def invalidate_key(self, key: str) -> bool:
        """Drop one payload by exact key; returns whether it existed."""
        with self._lock:
            existed = self._tier.pop(key) is not MISS
            if existed:
                self._forget_tag(key)
                self.invalidations += 1
                _SERVING_INVALIDATIONS.inc()
            return existed

    def clear(self) -> int:
        """Drop everything (counters are kept); returns how many."""
        with self._lock:
            dropped = len(self._tier)
            self._tier.clear()
            self._tag_keys.clear()
            self._key_tag.clear()
            self.invalidations += dropped
            _SERVING_INVALIDATIONS.inc(dropped)
            return dropped

    def _forget_tag(self, key: str) -> None:
        """Drop ``key`` from the tag index (lock held by caller)."""
        tag = self._key_tag.pop(key, None)
        if tag is not None:
            keys = self._tag_keys.get(tag)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._tag_keys[tag]

    def __len__(self) -> int:
        with self._lock:
            return len(self._tier)

    def stats(self) -> dict[str, int]:
        """Counters as a JSON-serializable dictionary."""
        with self._lock:
            return {
                "entries": len(self._tier),
                "max_entries": self._tier.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
