"""Request coalescing (single-flight) for identical concurrent work.

When N clients ask for the same uncached evaluation at once, computing
it N times is a cache *stampede*: the first miss triggers a computation
and every concurrent duplicate piles a redundant one onto the engine.
:class:`RequestCoalescer` collapses the stampede — the first request
for a key becomes the *leader* and runs the computation; concurrent
duplicates become *followers* that block until the leader finishes and
then share its result (or its exception).

The coalescer is deliberately independent of any cache: callers decide
what "identical" means by the key they pass, and what to do with the
result.  The serving layer keys flights by the same content
fingerprints as its read-through cache, so a flight's result lands in
the cache exactly once.
"""

from __future__ import annotations

import threading

from repro.telemetry.metrics import get_metrics

__all__ = ["RequestCoalescer"]

# Process-wide mirrors of the instance counters, feeding GET /metrics.
_COALESCER_LEADERS = get_metrics().counter(
    "frost_coalescer_leaders_total",
    "Coalesced computations actually run (flight leaders)",
)
_COALESCER_FOLLOWERS = get_metrics().counter(
    "frost_coalescer_followers_total",
    "Requests absorbed into an already-running flight",
)


class _Flight:
    """One in-progress computation and its rendezvous point."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: object = None
        self.error: BaseException | None = None


class RequestCoalescer:
    """Share one in-flight computation among concurrent duplicates.

    >>> coalescer = RequestCoalescer()
    >>> coalescer.run("answer", lambda: 42)
    42

    Counters: ``leaders`` is the number of computations actually run,
    ``followers`` the number of requests that were absorbed into an
    already-running flight.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}
        self.leaders = 0
        self.followers = 0

    def run(self, key: str, compute):
        """Return ``compute()``, sharing in-flight calls under ``key``.

        If another thread is already computing ``key``, block until it
        finishes and return (or re-raise) its outcome instead of
        computing again.  Once a flight lands, the next request for the
        same key starts a fresh one — coalescing only ever merges
        *concurrent* duplicates, it never serves stale results.
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                self.leaders += 1
                _COALESCER_LEADERS.inc()
                lead = True
            else:
                self.followers += 1
                _COALESCER_FOLLOWERS.inc()
                lead = False
        if not lead:
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            return flight.value
        try:
            flight.value = compute()
        except BaseException as error:
            flight.error = error
            raise
        finally:
            # Unpublish before waking followers: requests arriving after
            # this point must start a fresh flight (the leader's caller
            # has already cached the value, or wants the error retried).
            with self._lock:
                del self._flights[key]
            flight.done.set()
        return flight.value

    def in_flight(self) -> int:
        """How many computations are currently running."""
        with self._lock:
            return len(self._flights)

    def stats(self) -> dict[str, int]:
        """Counters as a JSON-serializable dictionary."""
        with self._lock:
            return {
                "leaders": self.leaders,
                "followers": self.followers,
                "in_flight": len(self._flights),
            }
