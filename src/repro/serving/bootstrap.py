"""Build a servable platform from a persistent store.

``python -m repro serve`` points the HTTP front-end at a SQLite store;
this module loads every dataset with its experiments and gold standards
into a :class:`~repro.core.platform.FrostPlatform` so the serving layer
has an in-memory registry to evaluate against, while the store keeps
backing the engine's persistent result cache and the stream sessions.
"""

from __future__ import annotations

from repro.core.platform import FrostPlatform
from repro.storage.database import FrostStore

__all__ = ["platform_from_store"]


def platform_from_store(store: FrostStore) -> FrostPlatform:
    """A platform populated with everything ``store`` holds.

    Loads all datasets and, per dataset, all experiments and gold
    standards.  Numeric-id mappings are rebuilt by the store loaders,
    so served evaluations are identical to ones over the original
    imports.
    """
    platform = FrostPlatform()
    for dataset_name in store.dataset_names():
        platform.add_dataset(store.load_dataset(dataset_name))
        for gold_name in store.gold_standard_names(dataset_name):
            platform.add_gold(
                dataset_name, store.load_gold_standard(dataset_name, gold_name)
            )
        for experiment_name in store.experiment_names(dataset_name):
            platform.add_experiment(
                dataset_name, store.load_experiment(dataset_name, experiment_name)
            )
    return platform
