"""Concurrent serving subsystem: cache, coalescing, bootstrap.

The layer between the HTTP API and the engine/store that makes the
platform *interactive under load*: a thread-safe read-through
:class:`MetricResultCache` over content-fingerprinted evaluation
payloads, a :class:`RequestCoalescer` collapsing concurrent identical
requests into one computation, and the :class:`ServingLayer` facade the
API routes its expensive GETs through.  See ``benchmarks/bench_serving.py``
for the latency/throughput harness that validates the design.
"""

from repro.serving.bootstrap import platform_from_store
from repro.serving.cache import MetricResultCache
from repro.serving.coalesce import RequestCoalescer
from repro.serving.service import ServingLayer

__all__ = [
    "MetricResultCache",
    "RequestCoalescer",
    "ServingLayer",
    "platform_from_store",
]
