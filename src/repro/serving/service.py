"""The serving layer: cached, coalesced evaluations for the front-end.

:class:`ServingLayer` sits between the HTTP API
(:mod:`repro.server.api`) and the platform/engine.  Every expensive
read — metrics tables, metric/metric diagrams, profiles, error
categorizations, threshold timelines, set intersections — flows
through :meth:`_fetch`, which gives it three serving properties:

* **read-through caching** — payloads are cached in a
  :class:`~repro.serving.cache.MetricResultCache` keyed by *content*
  fingerprints (:func:`repro.engine.jobs.job_cache_key` over the
  dataset, gold, experiment, and config contents), so renaming or
  re-registering identical artifacts still hits;
* **request coalescing** — concurrent identical requests share one
  in-flight computation via a
  :class:`~repro.serving.coalesce.RequestCoalescer` instead of
  stampeding the engine;
* **write invalidation** — the layer subscribes to
  :meth:`FrostPlatform.subscribe`, so any registry write (a new
  experiment, a new gold standard) drops the touched dataset's cached
  payloads before the next read.

Payloads returned here are exactly the JSON documents the API used to
compute inline; moving them behind the cache changes latency, never
bytes.
"""

from __future__ import annotations

import logging
import math
import threading
import time

from repro.core.platform import FrostPlatform
from repro.engine.cache import MISS
from repro.engine.jobs import job_cache_key
from repro.serving.cache import MetricResultCache
from repro.serving.coalesce import RequestCoalescer
from repro.telemetry.metrics import get_metrics

__all__ = ["ServingLayer"]

_LOG = logging.getLogger("repro.serving")

# Process-wide mirrors of the instance counters, feeding GET /metrics.
_SERVING_REQUESTS = get_metrics().counter(
    "frost_serving_requests_total", "Evaluations requested from the serving layer"
)
_SERVING_COMPUTATIONS = get_metrics().counter(
    "frost_serving_computations_total",
    "Evaluations actually computed (cache misses that led a flight)",
)
_SERVING_LATENCY = get_metrics().histogram(
    "frost_serving_request_seconds",
    "Wall time of serving-layer fetches (cache hits and computations)",
)


class ServingLayer:
    """Read-through, stampede-safe evaluation serving over a platform.

    Parameters
    ----------
    platform:
        The registry the evaluations read from.  The layer subscribes
        to its write notifications for cache invalidation.
    max_entries:
        LRU capacity of the payload cache.
    """

    def __init__(self, platform: FrostPlatform, max_entries: int = 1024) -> None:
        self.platform = platform
        self.cache = MetricResultCache(max_entries=max_entries)
        self.coalescer = RequestCoalescer()
        self._counter_lock = threading.Lock()
        self.requests = 0
        self.computations = 0
        self._store = None
        self._graph_lock = threading.Lock()
        # name -> (updated_at, batch_count, MatchGraph): rehydrated
        # graphs kept hot between requests, dropped on any write
        self._graphs: dict[str, tuple] = {}
        platform.subscribe(self.invalidate)

    # -- plumbing -----------------------------------------------------------------

    def invalidate(self, dataset_name: str) -> int:
        """Drop every cached payload derived from ``dataset_name``."""
        return self.cache.invalidate(dataset_name)

    def attach_store(self, store) -> None:
        """Serve match graphs out of ``store``.

        Subscribes to the store's graph-write notifications so a
        streaming ingest (or any other graph write) invalidates the
        graph's cached traversal payloads — the graph counterpart of
        the platform subscription above.
        """
        self._store = store
        store.subscribe_graph(self._invalidate_graph)

    def _invalidate_graph(self, graph_name: str) -> None:
        with self._graph_lock:
            self._graphs.pop(graph_name, None)
        self.cache.invalidate(f"graph:{graph_name}")

    def stats(self) -> dict[str, object]:
        """Serving counters: requests, computations, cache, coalescer."""
        with self._counter_lock:
            requests = self.requests
            computations = self.computations
        return {
            "requests": requests,
            "computations": computations,
            "cache": self.cache.stats(),
            "coalescer": self.coalescer.stats(),
        }

    def _fetch(self, kind: str, dataset_name: str, token: object, compute):
        """Serve ``compute()`` through the cache and the coalescer.

        ``token`` is hashed with the content fingerprints of any domain
        objects it carries, so the key identifies the *inputs* of the
        computation; ``dataset_name`` tags the entry for invalidation.
        """
        with self._counter_lock:
            self.requests += 1
        _SERVING_REQUESTS.inc()
        started = time.perf_counter()
        key = job_cache_key(kind, token)
        payload = self.cache.get(key)
        if payload is not MISS:
            _SERVING_LATENCY.observe(time.perf_counter() - started)
            return payload

        def fill():
            # Re-check under the flight: a follower of a finished
            # leader re-entering, or an invalidation race, may have
            # repopulated the key while this thread queued for it.
            cached = self.cache.recheck(key)
            if cached is not MISS:
                return cached
            with self._counter_lock:
                self.computations += 1
            _SERVING_COMPUTATIONS.inc()
            _LOG.debug("computing %s payload for dataset %s", kind, dataset_name)
            payload = compute()
            self.cache.put(key, payload, tag=dataset_name)
            return payload

        try:
            return self.coalescer.run(key, fill)
        finally:
            _SERVING_LATENCY.observe(time.perf_counter() - started)

    # -- served evaluations -------------------------------------------------------

    def metrics_payload(
        self,
        dataset_name: str,
        gold_name: str,
        experiments: list[str] | None,
        metrics: list[str] | None,
    ) -> dict:
        """The N-metrics table payload of ``GET /datasets/{d}/metrics``."""
        platform = self.platform
        names = (
            list(experiments)
            if experiments is not None
            else platform.experiment_names(dataset_name)
        )
        token = {
            "dataset": platform.dataset(dataset_name),
            "gold": platform.gold(dataset_name, gold_name),
            "experiments": [
                [name, platform.experiment(dataset_name, name)] for name in names
            ],
            "metrics": metrics,
        }

        def compute() -> dict:
            # Evaluate the `names` snapshot the key was built from, not
            # the raw `experiments` argument: with experiments=None a
            # concurrent registry write would otherwise be re-listed
            # here and cached under a key that does not describe it.
            return {
                "gold": gold_name,
                "metrics": platform.metrics_table(
                    dataset_name, gold_name, names, metrics
                ),
            }

        return self._fetch("serving:metrics", dataset_name, token, compute)

    def diagram_payload(
        self,
        dataset_name: str,
        experiment_name: str,
        gold_name: str,
        samples: int,
    ) -> dict:
        """The diagram payload of ``GET /datasets/{d}/diagram``."""
        platform = self.platform
        token = {
            "dataset": platform.dataset(dataset_name),
            "experiment": platform.experiment(dataset_name, experiment_name),
            "gold": platform.gold(dataset_name, gold_name),
            "samples": samples,
        }

        def compute() -> dict:
            points = platform.diagram(
                dataset_name, experiment_name, gold_name, samples=samples
            )
            return {
                "experiment": experiment_name,
                "gold": gold_name,
                "points": [
                    {
                        "threshold": (
                            None
                            if math.isinf(point.threshold)
                            else point.threshold
                        ),
                        "matches": point.matches_applied,
                        **point.matrix.as_dict(),
                    }
                    for point in points
                ],
            }

        return self._fetch("serving:diagram", dataset_name, token, compute)

    def profile_payload(self, dataset_name: str) -> dict:
        """The profiling payload of ``GET /datasets/{d}/profile``."""
        dataset = self.platform.dataset(dataset_name)
        token = {"dataset": dataset}

        def compute() -> dict:
            from repro.profiling import profile_dataset

            profile = profile_dataset(dataset)
            return {
                "name": profile.name,
                "tuple_count": profile.tuple_count,
                "sparsity": profile.sparsity,
                "textuality": profile.textuality,
                "schema_complexity": profile.schema_complexity,
            }

        return self._fetch("serving:profile", dataset_name, token, compute)

    def categorize_payload(
        self,
        dataset_name: str,
        experiment_name: str,
        gold_name: str,
        limit: int | None,
    ) -> dict:
        """The error-category payload of ``GET /datasets/{d}/categorize``."""
        platform = self.platform
        token = {
            "dataset": platform.dataset(dataset_name),
            "experiment": platform.experiment(dataset_name, experiment_name),
            "gold": platform.gold(dataset_name, gold_name),
            "limit": limit,
        }

        def compute() -> dict:
            from repro.exploration.error_categories import categorize_errors

            categorization = categorize_errors(
                platform.dataset(dataset_name),
                platform.experiment(dataset_name, experiment_name),
                platform.gold(dataset_name, gold_name),
                limit=limit,
            )
            weakness = categorization.dominant_weakness()
            return {
                "false_negatives": len(categorization.false_negatives),
                "false_positives": len(categorization.false_positives),
                "fn_relations": {
                    relation.value: count
                    for relation, count in
                    categorization.false_negative_relations.items()
                },
                "fp_relations": {
                    relation.value: count
                    for relation, count in
                    categorization.false_positive_relations.items()
                },
                "dominant_weakness": weakness.value if weakness else None,
            }

        return self._fetch("serving:categorize", dataset_name, token, compute)

    def timeline_payload(
        self,
        dataset_name: str,
        experiment_name: str,
        gold_name: str,
        high: float,
        low: float,
    ) -> dict:
        """The threshold-segment payload of ``GET /datasets/{d}/timeline``."""
        platform = self.platform
        token = {
            "dataset": platform.dataset(dataset_name),
            "experiment": platform.experiment(dataset_name, experiment_name),
            "gold": platform.gold(dataset_name, gold_name),
            "high": high,
            "low": low,
        }

        def compute() -> dict:
            from repro.core.timeline import DiagramTimeline

            timeline = DiagramTimeline(
                platform.dataset(dataset_name),
                platform.experiment(dataset_name, experiment_name),
                platform.gold(dataset_name, gold_name),
            )
            segment = timeline.segment(high, low)
            return {
                "high": high,
                "low": low,
                "new_true_positives": [
                    list(pair)
                    for pair in sorted(segment.new_true_positives)[:1000]
                ],
                "new_false_positives": [
                    list(pair)
                    for pair in sorted(segment.new_false_positives)[:1000]
                ],
            }

        return self._fetch("serving:timeline", dataset_name, token, compute)

    def intersection_payload(
        self, dataset_name: str, include: list[str], exclude: list[str]
    ) -> dict:
        """The set-selection payload of ``GET /datasets/{d}/intersection``."""
        platform = self.platform
        token = {
            "dataset": platform.dataset(dataset_name),
            "include": include,
            "exclude": exclude,
        }

        def compute() -> dict:
            comparison = platform.compare_sets(dataset_name, include + exclude)
            pairs = comparison.select(include=include, exclude=exclude)
            return {
                "include": include,
                "exclude": exclude,
                "size": len(pairs),
                "pairs": [list(pair) for pair in sorted(pairs)[:1000]],
            }

        return self._fetch("serving:intersection", dataset_name, token, compute)

    # -- served graph queries -----------------------------------------------------

    def graph_names(self) -> list[str]:
        """Stored graph names (empty without a store) — cheap, uncached."""
        if self._store is None:
            return []
        return self._store.graph_names()

    def _graph_meta(self, name: str) -> dict:
        from repro.storage.database import StorageError

        if self._store is None:
            raise KeyError("no store attached; no graphs are served")
        try:
            return self._store.graph_meta(name)
        except StorageError as missing:
            raise KeyError(str(missing)) from None

    def _graph(self, name: str, meta: dict):
        """The rehydrated graph, kept hot until its store rows change."""
        from repro.graph.build import load_graph

        stamp = (meta["updated_at"], meta["batch_count"], meta["node_count"])
        with self._graph_lock:
            cached = self._graphs.get(name)
            if cached is not None and cached[0] == stamp:
                return cached[1]
        graph = load_graph(self._store, name)
        with self._graph_lock:
            self._graphs[name] = (stamp, graph)
        return graph

    def _fetch_graph(self, kind: str, name: str, params: dict, compute):
        """:meth:`_fetch` with the graph's meta folded into the key.

        The meta row changes on every graph write, so stale keys die
        naturally even before the tag invalidation lands.
        """
        meta = self._graph_meta(name)
        token = {"graph": name, "meta": meta, **params}
        return self._fetch(
            kind, f"graph:{name}", token, lambda: compute(self._graph(name, meta))
        )

    def graph_summary_payload(self, name: str) -> dict:
        """The overview payload of ``GET /graph/{name}``."""
        return self._fetch_graph(
            "serving:graph-summary", name, {}, lambda graph: graph.summary()
        )

    def graph_neighbors_payload(
        self, name: str, record: str, k: int, threshold: float | None
    ) -> dict:
        """The k-hop payload of ``GET /graph/{name}/neighbors``."""
        return self._fetch_graph(
            "serving:graph-neighbors",
            name,
            {"record": record, "k": k, "threshold": threshold},
            lambda graph: graph.neighbors(record, k=k, threshold=threshold),
        )

    def graph_path_payload(
        self, name: str, source: str, target: str, threshold: float | None
    ) -> dict:
        """The fewest-hops payload of ``GET /graph/{name}/path``."""
        return self._fetch_graph(
            "serving:graph-path",
            name,
            {"from": source, "to": target, "threshold": threshold},
            lambda graph: graph.path(source, target, threshold=threshold),
        )

    def graph_components_payload(self, name: str, limit: int | None) -> dict:
        """The component listing of ``GET /graph/{name}/components``."""
        return self._fetch_graph(
            "serving:graph-components",
            name,
            {"limit": limit},
            lambda graph: {"components": graph.components(limit=limit)},
        )

    def graph_component_payload(self, name: str, record: str) -> dict:
        """The drill-down payload of ``GET /graph/{name}/component``."""
        return self._fetch_graph(
            "serving:graph-component",
            name,
            {"record": record},
            lambda graph: graph.component_of(record),
        )

    def graph_explain_payload(self, name: str, source: str, target: str) -> dict:
        """The evidence-path payload of ``GET /graph/{name}/explain``."""
        return self._fetch_graph(
            "serving:graph-explain",
            name,
            {"from": source, "to": target},
            lambda graph: graph.evidence_path(source, target),
        )
