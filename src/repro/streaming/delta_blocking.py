"""Incremental candidate generation: delta blocking.

Batch blockers (:mod:`repro.matching.blocking`) recompute the entire
candidate set on every run.  An :class:`IncrementalBlockingIndex`
instead keeps the block membership lists alive between ingests and, for
a batch of new records, emits only the *delta* candidate pairs — the
new-vs-existing and new-vs-new pairs inside each block.  For key-based
blocking schemes this decomposition is exact: the union of the deltas
over all ingests equals the batch candidate set over the union of the
records, which is what makes incremental clustering maintenance
(:mod:`repro.streaming.session`) equivalent to a full recompute.

The same decomposition covers approximate blocking:
:class:`IncrementalLshIndex` treats a record's MinHash-LSH band buckets
(:mod:`repro.matching.lsh`) as its block keys — banding is append-only
(a new record joins buckets, never reshuffles them), so the exact
delta/batch equivalence holds for LSH too.

The sorted-neighborhood method (and any windowed blocker) is
deliberately *not* supported — its windowed candidates depend on the
global sort order, so a new record can both add and remove pairs,
breaking the append-only delta model.  :func:`repro.streaming.config`
rejects such schemes with an explicit error instead of silently
misusing them.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.core.pairs import Pair, make_pair
from repro.core.records import Record
from repro.matching.blocking import BlockingKey
from repro.matching.lsh import LshConfig, MinHasher
from repro.matching.similarity import tokenize

__all__ = [
    "DeltaIngest",
    "IncrementalBlockingIndex",
    "IncrementalLshIndex",
    "single_key",
    "token_keys",
]

KeyEmitter = Callable[[Record], Sequence[str]]


@dataclass(frozen=True)
class DeltaIngest:
    """What one index ingest produced.

    ``pairs`` are the sorted delta candidate pairs; ``memberships`` the
    ``(block_key, record_id)`` rows this ingest added — exactly what a
    durable session must persist (and retract on a failed persist),
    without rescanning the whole index.
    """

    pairs: list[Pair]
    memberships: list[tuple[str, str]]
    record_ids: list[str]


def single_key(key: BlockingKey) -> KeyEmitter:
    """Adapt a standard blocking key into a key emitter.

    Records whose key is ``None`` emit no keys (they never become
    candidates), mirroring
    :func:`~repro.matching.blocking.standard_blocking`.
    """

    def keys(record: Record) -> Sequence[str]:
        value = key(record)
        return () if value is None else (value,)

    return keys


def token_keys(
    attributes: Iterable[str] | None = None, min_token_length: int = 3
) -> KeyEmitter:
    """Key emitter reproducing token blocking: one key per (long) token.

    Mirrors :func:`~repro.matching.blocking.token_blocking`: every
    token of at least ``min_token_length`` characters across the given
    attributes (default: all) becomes a block key.  Keys are emitted in
    sorted order for deterministic pair emission.
    """

    def keys(record: Record) -> Sequence[str]:
        names = attributes if attributes is not None else record.values.keys()
        seen: set[str] = set()
        for attribute in names:
            value = record.value(attribute)
            if not value:
                continue
            for token in tokenize(value):
                if len(token) >= min_token_length:
                    seen.add(token)
        return sorted(seen)

    return keys


class IncrementalBlockingIndex:
    """Live block index that emits only delta candidate pairs on ingest.

    Parameters
    ----------
    keys_for:
        Maps a record to its block keys (see :func:`single_key` and
        :func:`token_keys`).  A record may land in several blocks; the
        emitted pair set is deduplicated.
    max_block_size:
        Optional emission cap per block.  Once a block holds this many
        records, later arrivals still *join* the block but no longer
        emit pairs against it — the incremental analogue of batch block
        purging.  Note the semantics differ from the batch purge, which
        drops the entire oversized block retroactively; an incremental
        index cannot retract pairs it already emitted.
    """

    def __init__(
        self, keys_for: KeyEmitter, max_block_size: int | None = None
    ) -> None:
        if max_block_size is not None and max_block_size < 1:
            raise ValueError(
                f"max_block_size must be positive, got {max_block_size}"
            )
        self._keys_for = keys_for
        self.max_block_size = max_block_size
        self._blocks: dict[str, list[str]] = {}
        self._records: set[str] = set()

    # -- queries ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._records

    @property
    def block_count(self) -> int:
        """Number of non-empty blocks currently indexed."""
        return len(self._blocks)

    def block_items(self) -> list[tuple[str, str]]:
        """All ``(block_key, record_id)`` memberships, sorted (durable form)."""
        return sorted(
            (key, record_id)
            for key, members in self._blocks.items()
            for record_id in members
        )

    # -- mutation ---------------------------------------------------------------

    def ingest(self, records: Iterable[Record]) -> list[Pair]:
        """Index ``records`` and return the sorted delta candidate pairs.

        The delta contains every new-vs-existing and new-vs-new pair
        that shares a block key — exactly the candidates a batch blocker
        would add for these records.  Pairs are returned sorted so that
        downstream scoring is deterministic.
        """
        return self.ingest_delta(records).pairs

    def ingest_delta(self, records: Iterable[Record]) -> DeltaIngest:
        """Like :meth:`ingest`, also reporting the added memberships."""
        emitted: set[Pair] = set()
        memberships: list[tuple[str, str]] = []
        record_ids: list[str] = []
        for record in records:
            record_id = record.record_id
            if record_id in self._records:
                raise ValueError(
                    f"record {record_id!r} is already indexed"
                )
            self._records.add(record_id)
            record_ids.append(record_id)
            for key in self._keys_for(record):
                members = self._blocks.setdefault(key, [])
                if (
                    self.max_block_size is None
                    or len(members) < self.max_block_size
                ):
                    emitted.update(
                        make_pair(member, record_id) for member in members
                    )
                members.append(record_id)
                memberships.append((key, record_id))
        return DeltaIngest(
            pairs=sorted(emitted),
            memberships=memberships,
            record_ids=record_ids,
        )

    def retract(self, delta: DeltaIngest) -> None:
        """Undo one :meth:`ingest_delta` (used when durable persistence
        fails and the session must roll back to its pre-batch state).

        Only the *latest* ingest may be retracted — memberships were
        appended, so they sit at the tail of their block lists.
        """
        for key, record_id in reversed(delta.memberships):
            members = self._blocks.get(key)
            if members and members[-1] == record_id:
                members.pop()
            elif members is not None:  # defensive: not the latest ingest
                members.remove(record_id)
            if not members and members is not None:
                del self._blocks[key]
        self._records.difference_update(delta.record_ids)

    def restore(self, memberships: Iterable[tuple[str, str]]) -> None:
        """Rebuild the index from persisted ``(block_key, record_id)`` rows.

        Used when resuming a durable session; emits nothing.  Must be
        called on an empty index.
        """
        if self._records:
            raise ValueError("restore() requires an empty index")
        for key, record_id in memberships:
            self._blocks.setdefault(key, []).append(record_id)
            self._records.add(record_id)


class IncrementalLshIndex(IncrementalBlockingIndex):
    """Approximate delta blocking over MinHash-LSH band buckets.

    Each ingested record is MinHashed (seeded, ``PYTHONHASHSEED``- and
    process-independent — see :mod:`repro.matching.lsh`) and joins one
    bucket per LSH band; the delta pairs are the new-vs-existing and
    new-vs-new pairs within those buckets.  Because banding is
    append-only, the union of the deltas over all ingests equals the
    batch :func:`~repro.matching.lsh.lsh_blocking` candidate set over
    the union of the records — the same exactness guarantee the
    key-based index gives, now for approximate blocking.

    The equivalence requires ``config.max_block_size`` to be unset: a
    cap makes this index stop *emitting* once a bucket fills up, while
    the batch blocker purges the oversized bucket retroactively (the
    usual capped-stream trade-off, see :mod:`repro.streaming.config`).

    Durable sessions persist the emitted ``(bucket_key, record_id)``
    memberships like any other block rows; :meth:`restore` rebuilds the
    bucket lists without re-hashing, so resuming does not depend on
    signatures being recomputed (though with the same ``config`` they
    would come out identical).
    """

    def __init__(self, config: LshConfig | None = None) -> None:
        self.config = config or LshConfig()
        hasher = MinHasher(self.config)
        super().__init__(
            hasher.keys_for, max_block_size=self.config.max_block_size
        )

    def config_fingerprint(self) -> dict[str, object]:
        """Content token mirroring the batch blocker's fingerprint."""
        return {"lsh_blocking": self.config.as_dict()}
