"""Incremental streaming matching sessions.

A :class:`StreamingMatcher` ingests record batches into a live matching
session and maintains the duplicate clustering *incrementally*: each
ingest prepares only the new records, asks the
:class:`~repro.streaming.delta_blocking.IncrementalBlockingIndex` for
the delta candidate pairs, scores only those pairs through the existing
:class:`~repro.matching.pipeline.MatchingPipeline` stage methods, and
folds the accepted matches into a persistent
:class:`~repro.core.unionfind.PairCountingUnionFind`.  Every batch
yields a versioned :class:`StreamSnapshot`, and — because delta
blocking is exact for key-based schemes and connected components are
order-independent — the clustering after ``k`` ingests is identical to
a full batch recompute over the union of all ingested records.

Sessions are optionally durable: given a
:class:`~repro.storage.database.FrostStore`, every ingest persists the
new records, their block memberships, the accepted-match merge log, and
the snapshot lineage in one transaction, and
:meth:`StreamingMatcher.resume` rebuilds the live session from those
tables.
"""

from __future__ import annotations

import logging
import threading
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.clustering import Clustering
from repro.core.experiment import Experiment, Match
from repro.core.pairs import ScoredPair, make_pair
from repro.core.records import Dataset, Record
from repro.core.unionfind import PairCountingUnionFind
from repro.matching.attribute_matching import SimilarityVector
from repro.matching.pipeline import MatchingPipeline
from repro.streaming.delta_blocking import IncrementalBlockingIndex
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import get_tracer

__all__ = [
    "StreamSnapshot",
    "StreamingMatcher",
    "StreamError",
    "mean_similarity",
    "coerce_records",
]


_LOG = logging.getLogger("repro.streaming")

# Process-wide streaming-ingest traffic, feeding GET /metrics.
_STREAM_BATCHES = get_metrics().counter(
    "frost_stream_batches_total", "Record batches folded into live streams"
)
_STREAM_RECORDS = get_metrics().counter(
    "frost_stream_records_total", "Records ingested into live streams"
)


class StreamError(RuntimeError):
    """Raised for streaming-session misuse (duplicate ids, bad resume)."""


def mean_similarity(vector: SimilarityVector) -> float:
    """Decision model: mean of the non-missing attribute similarities.

    A module-level function (not a lambda) so sessions built from JSON
    configs stay content-fingerprintable by the engine.
    """
    return vector.mean()


def coerce_records(items: Iterable[Record | Mapping[str, object]]) -> list[Record]:
    """Records from a mixed iterable of :class:`Record` and JSON rows.

    JSON rows (as posted to ``POST /streams/{id}/batches``) carry the
    native id under ``"id"``; every other key is an attribute value.
    """
    records: list[Record] = []
    for item in items:
        if isinstance(item, Record):
            records.append(item)
            continue
        if not isinstance(item, Mapping) or "id" not in item:
            raise ValueError(
                "each record must be a Record or a mapping with an 'id' key"
            )
        values = {
            str(key): (None if value is None else str(value))
            for key, value in item.items()
            if key != "id"
        }
        records.append(Record(record_id=str(item["id"]), values=values))
    return records


@dataclass(frozen=True)
class StreamSnapshot:
    """The versioned clustering state produced by one ingest.

    Versions form a linear lineage (``parent_version`` is the previous
    snapshot's version, ``None`` for the first batch); the counts
    describe the session state *after* the batch was folded in.
    """

    version: int
    parent_version: int | None
    record_count: int
    cluster_count: int
    pair_count: int
    delta_candidates: int
    accepted_matches: int

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable snapshot summary (API / job payloads)."""
        return {
            "version": self.version,
            "parent_version": self.parent_version,
            "record_count": self.record_count,
            "cluster_count": self.cluster_count,
            "pair_count": self.pair_count,
            "delta_candidates": self.delta_candidates,
            "accepted_matches": self.accepted_matches,
        }


class _PreparedView:
    """Minimal mapping view so pipeline stage methods can index records.

    :meth:`MatchingPipeline.compare_candidates` only needs
    ``prepared[record_id]``; this avoids rebuilding a full
    :class:`Dataset` over all session records on every ingest (which
    would defeat the point of incrementality).
    """

    __slots__ = ("_records",)

    def __init__(self, records: Mapping[str, Record]) -> None:
        self._records = records

    def __getitem__(self, record_id: str) -> Record:
        return self._records[record_id]


class StreamingMatcher:
    """A live matching session with incremental cluster maintenance.

    Parameters
    ----------
    pipeline:
        Supplies preparation, attribute comparison, the decision model,
        and the acceptance threshold.  Its batch candidate generator is
        *not* used — delta candidates come from ``index``.
    index:
        The incremental blocking index (must be empty unless resuming).
    store / name / config:
        When ``store`` is given the session is durable under ``name``:
        construction registers the stream (persisting ``config``, a
        JSON document that :func:`repro.streaming.config.build_session`
        can rebuild the session from), and every ingest appends to the
        stream tables.  Use :meth:`resume` to reopen an existing
        stream.
    """

    def __init__(
        self,
        pipeline: MatchingPipeline,
        index: IncrementalBlockingIndex,
        store=None,
        name: str = "stream",
        config: Mapping[str, object] | None = None,
        _resuming: bool = False,
    ) -> None:
        self.pipeline = pipeline
        self.index = index
        self.name = name
        self.config = dict(config) if config is not None else None
        self._store = store
        self._numeric: dict[str, int] = {}
        self._native: list[str] = []
        self._raw: dict[str, Record] = {}
        self._prepared: dict[str, Record] = {}
        self._unionfind = PairCountingUnionFind(0)
        self._snapshots: list[StreamSnapshot] = []
        self._accepted: list[ScoredPair] = []
        self._graph = None
        self._lock = threading.Lock()
        if store is not None and not _resuming:
            from repro.storage.database import StorageError

            try:
                store.create_stream(name, dict(config or {}))
            except StorageError:
                raise StreamError(
                    f"stream {name!r} already exists in the store; "
                    "use StreamingMatcher.resume() to reopen it"
                ) from None

    def attach_graph(self, updater) -> None:
        """Feed every ingested batch into a persisted match graph.

        ``updater`` is a :class:`~repro.graph.build.GraphUpdater` whose
        graph must already mirror this session's records (empty for a
        fresh session, reloaded on resume).  Each batch appends the
        *full* scored delta — accepted and rejected candidate edges —
        so the graph keeps the below-threshold evidence the clustering
        discards.
        """
        if updater.graph.node_count != self.record_count:
            raise StreamError(
                f"graph {updater.graph.name!r} holds "
                f"{updater.graph.node_count} nodes but stream "
                f"{self.name!r} has {self.record_count} records; "
                "rebuild the graph before attaching it"
            )
        with self._lock:
            self._graph = updater

    # -- introspection ---------------------------------------------------------

    @property
    def version(self) -> int:
        """Version of the latest snapshot (0 before the first ingest)."""
        return self._snapshots[-1].version if self._snapshots else 0

    @property
    def record_count(self) -> int:
        """Number of records ingested so far."""
        return len(self._native)

    @property
    def snapshots(self) -> list[StreamSnapshot]:
        """The snapshot lineage, oldest first."""
        return list(self._snapshots)

    def status(self) -> dict[str, object]:
        """JSON-serializable session summary (the ``GET /streams/{id}`` body)."""
        with self._lock:
            latest = self._snapshots[-1].as_dict() if self._snapshots else None
            return {
                "name": self.name,
                "version": self.version,
                "records": len(self._native),
                "blocks": self.index.block_count,
                "clusters": self._unionfind.cluster_count,
                "intra_cluster_pairs": self._unionfind.pair_count,
                "durable": self._store is not None,
                "blocking": (self.config or {}).get("key"),
                "graph": (
                    self._graph.graph.name if self._graph is not None else None
                ),
                "parallelism": self.pipeline.parallelism.as_dict(),
                "columnar": self.pipeline.columnar,
                "blocking_storage": self.pipeline.blocking_storage,
                "latest": latest,
                "snapshots": [s.as_dict() for s in self._snapshots],
            }

    def dataset(self, name: str | None = None) -> Dataset:
        """The ingested records (raw, insertion order) as a dataset."""
        return Dataset(
            (self._raw[native] for native in self._native),
            name=name or f"{self.name}-records",
        )

    def clusters(self) -> Clustering:
        """The current clustering (non-singleton clusters, native ids)."""
        with self._lock:
            return self._clusters_locked()

    def _clusters_locked(self) -> Clustering:
        members = self._unionfind.clusters().values()
        return Clustering(
            [self._native[element] for element in cluster]
            for cluster in members
            if len(cluster) > 1
        )

    def experiment(self, name: str | None = None) -> Experiment:
        """The session's matches as an experiment (benchmark integration).

        Directly accepted pairs carry their scores; intra-cluster pairs
        implied only by transitivity are flagged ``from_clustering``,
        exactly as in :meth:`MatchingPipeline._cluster`.
        """
        with self._lock:
            score_of = {sp.pair: sp.score for sp in self._accepted}
            matches = [
                Match(
                    pair=pair,
                    score=score_of.get(pair),
                    from_clustering=pair not in score_of,
                )
                for pair in sorted(self._clusters_locked().pairs())
            ]
            return Experiment(
                matches,
                name=name or f"{self.name}-v{self.version}",
                solution="streaming",
                metadata={
                    "stream": self.name,
                    "version": self.version,
                    "threshold": self.pipeline.threshold,
                },
            )

    # -- ingestion -------------------------------------------------------------

    def ingest(
        self, records: Iterable[Record | Mapping[str, object]] | Dataset
    ) -> StreamSnapshot:
        """Fold one record batch into the session; returns the new snapshot.

        Only the delta work is performed: the batch is prepared, delta
        candidates are drawn from the index, scored with the pipeline's
        comparator and decision model, and accepted matches (``score >=
        threshold``) are unioned into the persistent clustering.  When
        the pipeline carries a parallelism config, large delta batches
        are scored on a sharded process pool
        (:mod:`repro.matching.parallel`) with output identical to the
        serial path.  Thread-safe (ingests serialize on an internal
        lock) so batches may be submitted through the engine's worker
        pool.
        """
        batch = (
            list(records)
            if isinstance(records, Dataset)
            else coerce_records(records)
        )
        with get_tracer().span(
            "stream.ingest", stream=self.name, records=len(batch)
        ) as ingest_span:
            with self._lock:
                snapshot = self._ingest_locked(batch)
            ingest_span.annotate(
                delta_candidates=snapshot.delta_candidates,
                accepted=snapshot.accepted_matches,
            )
            _LOG.debug(
                "stream %s ingested %d records (version %d, %d accepted)",
                self.name,
                len(batch),
                snapshot.version,
                snapshot.accepted_matches,
            )
        _STREAM_BATCHES.inc()
        _STREAM_RECORDS.inc(len(batch))
        return snapshot

    def _ingest_locked(self, batch: Sequence[Record]) -> StreamSnapshot:
        version = self.version + 1
        for record in batch:
            if record.record_id in self._numeric:
                raise StreamError(
                    f"record {record.record_id!r} was already ingested into "
                    f"stream {self.name!r}"
                )
        # Step 1 (preparation) via the pipeline stage method; Dataset
        # construction also rejects duplicate ids within the batch.
        batch_dataset = Dataset(batch, name=f"{self.name}-batch{version}")
        prepared = self.pipeline.prepare(batch_dataset)

        # A durable ingest must leave the live session untouched when
        # the store rejects the batch (e.g. another process appended
        # the same version concurrently) — keep what is needed to roll
        # every in-memory mutation back.
        unionfind_backup = (
            self._unionfind.copy() if self._store is not None else None
        )

        new_numeric = self._unionfind.grow(len(batch))
        for numeric_id, raw, clean in zip(new_numeric, batch, prepared):
            self._numeric[raw.record_id] = numeric_id
            self._native.append(raw.record_id)
            self._raw[raw.record_id] = raw
            self._prepared[raw.record_id] = clean

        # Steps 2-4 on the delta only.
        delta = self.index.ingest_delta(prepared)
        vectors = self.pipeline.compare_candidates(
            _PreparedView(self._prepared), delta.pairs
        )
        scored = self.pipeline.score_vectors(vectors)
        accepted = [
            sp for sp in scored if sp.score >= self.pipeline.threshold
        ]

        # Step 5, incrementally: fold accepted matches into the
        # persistent union-find (connected components maintenance).
        self._unionfind.tracked_union(
            (self._numeric[sp.pair[0]], self._numeric[sp.pair[1]])
            for sp in accepted
        )
        self._accepted.extend(accepted)

        snapshot = StreamSnapshot(
            version=version,
            parent_version=version - 1 if version > 1 else None,
            record_count=len(self._native),
            cluster_count=self._unionfind.cluster_count,
            pair_count=self._unionfind.pair_count,
            delta_candidates=len(delta.pairs),
            accepted_matches=len(accepted),
        )
        if self._store is not None:
            try:
                self._persist_batch(batch, delta.memberships, accepted,
                                    snapshot)
            except BaseException:
                self._unionfind = unionfind_backup
                self.index.retract(delta)
                del self._accepted[len(self._accepted) - len(accepted):]
                for record in batch:
                    del self._numeric[record.record_id]
                    del self._raw[record.record_id]
                    del self._prepared[record.record_id]
                del self._native[len(self._native) - len(batch):]
                raise
        if self._graph is not None:
            # After the stream batch is durable: the graph delta is a
            # second transaction, so a failure here leaves the graph
            # one batch behind — attach_graph() detects the node-count
            # gap on resume and demands a rebuild rather than silently
            # serving a stale graph.
            self._graph.apply_batch(
                list(zip(new_numeric, (r.record_id for r in batch))),
                scored,
                vectors,
            )
        self._snapshots.append(snapshot)
        return snapshot

    # -- durability ------------------------------------------------------------

    def _persist_batch(
        self,
        batch: Sequence[Record],
        memberships: Sequence[tuple[str, str]],
        accepted: Sequence[ScoredPair],
        snapshot: StreamSnapshot,
    ) -> None:
        self._store.append_stream_batch(
            self.name,
            batch_index=snapshot.version,
            records=[
                (
                    self._numeric[record.record_id],
                    record.record_id,
                    dict(record.values),
                )
                for record in batch
            ],
            blocks=[
                (key, self._numeric[record_id])
                for key, record_id in memberships
            ],
            merges=[
                (
                    self._numeric[sp.pair[0]],
                    self._numeric[sp.pair[1]],
                    sp.score,
                )
                for sp in accepted
            ],
            snapshot=snapshot.as_dict(),
        )

    @classmethod
    def resume(cls, store, name: str) -> "StreamingMatcher":
        """Reopen a durable session from its stream tables.

        Rebuilds the record registry, re-runs preparation on the stored
        raw records, restores the block index from the persisted
        memberships, and replays the merge log into a fresh union-find
        (the clustering — though not the internal generation ids — is
        identical to the original session's).
        """
        from repro.streaming.config import build_pipeline_and_index

        state = store.load_stream(name)
        pipeline, index = build_pipeline_and_index(state["config"])
        session = cls(
            pipeline,
            index,
            store=store,
            name=name,
            config=state["config"],
            _resuming=True,
        )
        records = [
            Record(record_id=native_id, values=payload)
            for _, native_id, payload in state["records"]
        ]
        session._unionfind.grow(len(records))
        for numeric_id, record in enumerate(records):
            session._numeric[record.record_id] = numeric_id
            session._native.append(record.record_id)
            session._raw[record.record_id] = record
        if records:
            prepared = pipeline.prepare(
                Dataset(records, name=f"{name}-resume")
            )
            for record in prepared:
                session._prepared[record.record_id] = record
        index.restore(
            (key, session._native[numeric_id])
            for key, numeric_id in state["blocks"]
        )
        for batch_index, first, second, score in state["merges"]:
            session._unionfind.union(first, second)
            session._accepted.append(
                ScoredPair(
                    score=score,
                    pair=make_pair(
                        session._native[first], session._native[second]
                    ),
                )
            )
        session._snapshots = [
            StreamSnapshot(**snapshot) for snapshot in state["snapshots"]
        ]
        if state["config"].get("graph"):
            from repro.graph.build import GraphUpdater

            session.attach_graph(GraphUpdater.attach(store, name))
        return session
