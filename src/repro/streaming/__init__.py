"""Incremental streaming matching: delta blocking + cluster maintenance.

The batch pipeline recomputes blocking, comparison, and clustering from
scratch on every run; this subsystem opens the *continuous entity
resolution* workload instead.  Record batches are ingested into a live
:class:`StreamingMatcher` whose
:class:`IncrementalBlockingIndex` emits only the delta candidate pairs,
which are scored through the existing pipeline stage methods and folded
into a persistent union-find — producing a versioned
:class:`StreamSnapshot` per batch at a fraction of the recompute cost,
with a clustering identical to the batch result on the record union.

>>> session = build_session(config)              # doctest: +SKIP
>>> snapshot = session.ingest(first_batch)       # doctest: +SKIP
>>> session.ingest(second_batch).version         # doctest: +SKIP
2
"""

from repro.streaming.config import (
    build_pipeline_and_index,
    build_session,
    candidate_generator_from_key,
    delta_index_from_key,
    open_session,
    validate_config,
    validate_key_config,
)
from repro.streaming.delta_blocking import (
    IncrementalBlockingIndex,
    IncrementalLshIndex,
    single_key,
    token_keys,
)
from repro.streaming.session import (
    StreamError,
    StreamSnapshot,
    StreamingMatcher,
    coerce_records,
    mean_similarity,
)

__all__ = [
    "IncrementalBlockingIndex",
    "IncrementalLshIndex",
    "StreamError",
    "StreamSnapshot",
    "StreamingMatcher",
    "build_pipeline_and_index",
    "build_session",
    "candidate_generator_from_key",
    "coerce_records",
    "delta_index_from_key",
    "mean_similarity",
    "open_session",
    "single_key",
    "token_keys",
    "validate_config",
    "validate_key_config",
]
