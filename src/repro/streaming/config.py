"""JSON-configurable streaming sessions (shared by CLI and API).

A stream's matching behaviour is described by a plain JSON document so
that sessions can be created over the wire (``POST /streams``), from
CLI flags (``repro stream init``), and — crucially — *rebuilt* from the
store when a durable session is resumed.  Schema::

    {
      "key": {                      # delta blocking scheme
        "kind": "first_token" | "prefix" | "soundex" | "token" | "lsh",
        "attribute": "name",        # key-based kinds
        "length": 3,                # prefix only
        "attributes": ["name"],     # token + lsh (optional: all)
        "min_token_length": 3,      # token + lsh
        "num_perm": 128,            # lsh only: signature length
        "bands": 32,                # lsh only: bands (rows derived)
        "seed": 1,                  # lsh only: permutation seed
        "shingle_size": 3,          # lsh only: null = word tokens
        "max_block_size": null      # optional emission cap
      },
      "similarities": {"name": "jaro_winkler", "zip": "exact"},
      "threshold": 0.6,
      "preparers": ["normalize_whitespace"],
      "parallelism": {                # optional sharded delta scoring
        "workers": 4,                 # 0/null = all cores, 1 = serial
        "shards": 16,                 # default: 4 x workers
        "min_pairs": 2048             # serial below this delta size
      },
      "columnar": true,               # optional: batch-kernel delta
                                      # scoring (default on; output is
                                      # byte-identical either way)
      "blocking_storage": "disk",     # optional: "memory" (default) or
                                      # "disk" — SQLite-backed blocking
                                      # (identical candidates, bounded
                                      # Python memory)
      "graph": true                   # optional: maintain a persisted
    }                                 # match graph (durable streams)

The same config also yields the *batch-equivalent* pipeline (via
``candidate_generator``), which the benchmarks use to verify that the
incremental clustering matches a full recompute.  The equivalence is
exact only while ``key.max_block_size`` is unset: a cap makes the
incremental index stop *emitting* once a block fills up (an
order-dependent effect no batch blocker reproduces — token blocking
purges oversized blocks retroactively, standard blocking has no cap at
all), so capped streams trade exactness for bounded ingest cost.

The ``"lsh"`` kind selects approximate MinHash-LSH blocking
(:mod:`repro.matching.lsh`): band buckets act as block keys, and —
banding being append-only — the delta/batch equivalence holds exactly
like for the key-based schemes.  Windowed schemes (sorted neighborhood)
are rejected with an explicit error: their candidates depend on the
global sort order, so no append-only delta decomposition exists.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.matching.attribute_matching import AttributeComparator
from repro.matching.blocking import (
    first_token_key,
    prefix_key,
    soundex_key,
    standard_blocking,
    token_blocking,
)
from repro.matching.lsh import LshBlocking, LshConfig
from repro.matching.pipeline import (
    MatchingPipeline,
    lowercase_values,
    normalize_whitespace,
)
from repro.matching.parallel import ParallelConfig
from repro.matching.similarity import SIMILARITY_FUNCTIONS
from repro.streaming.delta_blocking import (
    IncrementalBlockingIndex,
    IncrementalLshIndex,
    single_key,
    token_keys,
)
from repro.streaming.session import StreamingMatcher, mean_similarity

__all__ = [
    "build_pipeline_and_index",
    "build_session",
    "candidate_generator_from_key",
    "delta_index_from_key",
    "open_session",
    "validate_config",
    "validate_key_config",
]

PREPARERS = {
    "normalize_whitespace": normalize_whitespace,
    "lowercase_values": lowercase_values,
}

_KEY_KINDS = ("first_token", "prefix", "soundex", "token", "lsh")

# Recognized batch blockers that have no append-only delta model:
# windowed candidates depend on the global sort order, so ingesting a
# record can both add and remove pairs.  Named here so the error says
# *why* instead of pretending the scheme does not exist.
_WINDOWED_KINDS = ("sorted_neighborhood",)


def _lsh_config(key: Mapping[str, object]) -> LshConfig:
    """Parse the lsh fields of a key config (everything but ``kind``)."""
    return LshConfig.from_dict(
        {name: value for name, value in key.items() if name != "kind"}
    )


def validate_key_config(key: object) -> dict[str, object]:
    """Normalize and validate a delta blocking scheme; raises ``ValueError``.

    Windowed schemes are rejected with an explicit explanation — they
    are real batch blockers, just unusable in delta mode — while truly
    unknown kinds get the list of supported ones.
    """
    if not isinstance(key, Mapping) or not key.get("kind"):
        kinds = ", ".join(_KEY_KINDS)
        raise ValueError(f"config.key.kind must be one of: {kinds}")
    kind = key["kind"]
    if kind in _WINDOWED_KINDS:
        raise ValueError(
            f"blocker {kind!r} cannot run in delta mode: its windowed "
            "candidates depend on the global sort order, so a new record "
            "can both add and remove pairs — no append-only delta "
            f"decomposition exists; use one of: {', '.join(_KEY_KINDS)}"
        )
    if kind not in _KEY_KINDS:
        kinds = ", ".join(_KEY_KINDS)
        raise ValueError(f"config.key.kind must be one of: {kinds}")
    if kind == "lsh":
        return {"kind": "lsh", **_lsh_config(key).as_dict()}
    if kind != "token" and not key.get("attribute"):
        raise ValueError(f"key kind {kind!r} needs an 'attribute'")
    return dict(key)


def validate_config(config: Mapping[str, object]) -> dict[str, object]:
    """Normalize and validate a stream config; raises ``ValueError``."""
    if not isinstance(config, Mapping):
        raise ValueError("stream config must be a JSON object")
    key = validate_key_config(config.get("key"))
    similarities = config.get("similarities")
    if not isinstance(similarities, Mapping) or not similarities:
        raise ValueError("config.similarities must map attributes to measures")
    for attribute, measure in similarities.items():
        if measure not in SIMILARITY_FUNCTIONS:
            known = ", ".join(sorted(SIMILARITY_FUNCTIONS))
            raise ValueError(
                f"unknown similarity {measure!r} for {attribute!r}; "
                f"known: {known}"
            )
    threshold = float(config.get("threshold", 0.5))
    preparers = config.get("preparers", ["normalize_whitespace"])
    if not isinstance(preparers, (list, tuple)):
        raise ValueError("config.preparers must be a list of names")
    for name in preparers:
        if name not in PREPARERS:
            known = ", ".join(sorted(PREPARERS))
            raise ValueError(f"unknown preparer {name!r}; known: {known}")
    # from_dict validates shape and key names; round-tripping through
    # ParallelConfig normalizes the stored document.
    parallelism = ParallelConfig.from_dict(config.get("parallelism"))
    normalized = {
        "key": dict(key),
        "similarities": dict(similarities),
        "threshold": threshold,
        "preparers": list(preparers),
    }
    if config.get("parallelism") is not None:
        normalized["parallelism"] = parallelism.as_dict()
    columnar = config.get("columnar", True)
    if not isinstance(columnar, bool):
        raise ValueError("config.columnar must be a boolean")
    if "columnar" in config:
        normalized["columnar"] = columnar
    blocking_storage = config.get("blocking_storage", "memory")
    if blocking_storage not in ("memory", "disk"):
        raise ValueError(
            "config.blocking_storage must be 'memory' or 'disk', "
            f"got {blocking_storage!r}"
        )
    if "blocking_storage" in config:
        normalized["blocking_storage"] = blocking_storage
    graph = config.get("graph", False)
    if not isinstance(graph, bool):
        raise ValueError("config.graph must be a boolean")
    if graph:
        normalized["graph"] = True
    return normalized


def _blocking_key(key: Mapping[str, object]):
    kind = key["kind"]
    attribute = key.get("attribute")
    if kind == "first_token":
        return first_token_key(attribute)
    if kind == "prefix":
        return prefix_key(attribute, length=int(key.get("length", 3)))
    if kind == "soundex":
        return soundex_key(attribute)
    raise ValueError(f"unknown key kind {kind!r}")


class _BatchBlocking:
    """Batch candidate generator equivalent to a stream's delta blocking.

    A named class (not a lambda) keeps pipelines built from configs
    content-fingerprintable by the engine.  Equivalent *without* a
    ``max_block_size`` cap — see the module docstring for why a capped
    stream has no exact batch counterpart.
    """

    def __init__(self, key_config: Mapping[str, object]) -> None:
        self._config = dict(key_config)

    def __call__(self, dataset):
        config = self._config
        if config["kind"] == "token":
            return token_blocking(
                dataset,
                attributes=config.get("attributes"),
                min_token_length=int(config.get("min_token_length", 3)),
                max_block_size=config.get("max_block_size"),
            )
        return standard_blocking(dataset, _blocking_key(config))

    def config_fingerprint(self) -> dict[str, object]:
        """Content token for the engine's cache keys."""
        return {"batch_blocking": self._config}

    def disk_blocking_plan(self):
        """The SQL-pushdown plan for ``blocking_storage="disk"``.

        Reuses the exact same key emitters as :meth:`__call__`'s
        blockers, so the disk path's candidate set is identical.
        """
        from repro.blocking_disk.blockers import standard_plan, token_plan

        config = self._config
        if config["kind"] == "token":
            return token_plan(
                attributes=config.get("attributes"),
                min_token_length=int(config.get("min_token_length", 3)),
                max_block_size=config.get("max_block_size"),
            )
        return standard_plan(_blocking_key(config), config)


def candidate_generator_from_key(key: object):
    """The *batch* candidate generator described by a key config.

    The blocker-selection entry point shared by stream configs, the
    engine's pipeline-job ``blocker`` param, and the benchmarks.  The
    returned object carries a ``config_fingerprint``, so pipelines
    built from different blocker configs content-address to different
    cache keys.
    """
    return _candidate_generator(validate_key_config(key))


def _candidate_generator(key: Mapping[str, object]):
    """:func:`candidate_generator_from_key` for pre-validated keys."""
    if key["kind"] == "lsh":
        return LshBlocking(_lsh_config(key))
    return _BatchBlocking(key)


def delta_index_from_key(
    key: object, storage: str = "memory"
) -> IncrementalBlockingIndex:
    """A fresh incremental delta index for a key config.

    ``storage="disk"`` returns a
    :class:`~repro.blocking_disk.incremental.DiskBlockingIndex` whose
    block membership lives in a scratch SQLite database — identical
    ingest/retract/restore semantics, bounded Python memory.
    """
    return _delta_index(validate_key_config(key), storage)


def _delta_index(
    key: Mapping[str, object], storage: str = "memory"
) -> IncrementalBlockingIndex:
    """:func:`delta_index_from_key` for pre-validated keys."""
    if key["kind"] == "lsh":
        if storage == "disk":
            from repro.blocking_disk.incremental import DiskBlockingIndex
            from repro.matching.lsh import MinHasher

            config = _lsh_config(key)
            return DiskBlockingIndex(
                MinHasher(config).keys_for,
                max_block_size=config.max_block_size,
            )
        return IncrementalLshIndex(_lsh_config(key))
    if key["kind"] == "token":
        emitter = token_keys(
            attributes=key.get("attributes"),
            min_token_length=int(key.get("min_token_length", 3)),
        )
    else:
        emitter = single_key(_blocking_key(key))
    if storage == "disk":
        from repro.blocking_disk.incremental import DiskBlockingIndex

        return DiskBlockingIndex(
            emitter, max_block_size=key.get("max_block_size")
        )
    return IncrementalBlockingIndex(
        emitter, max_block_size=key.get("max_block_size")
    )


def build_pipeline_and_index(
    config: Mapping[str, object],
) -> tuple[MatchingPipeline, IncrementalBlockingIndex]:
    """The pipeline + fresh delta index described by ``config``."""
    return _build_pipeline_and_index(validate_config(config))


def _build_pipeline_and_index(
    config: Mapping[str, object],
) -> tuple[MatchingPipeline, IncrementalBlockingIndex]:
    """:func:`build_pipeline_and_index` for pre-validated configs."""
    key = config["key"]
    storage = str(config.get("blocking_storage", "memory"))
    pipeline = MatchingPipeline(
        candidate_generator=_candidate_generator(key),
        comparator=AttributeComparator(config["similarities"]),
        decision_model=mean_similarity,
        threshold=config["threshold"],
        preparers=[PREPARERS[name] for name in config["preparers"]],
        clustering="connected_components",
        name="streaming-config",
        solution="streaming",
        parallelism=ParallelConfig.from_dict(config.get("parallelism")),
        columnar=bool(config.get("columnar", True)),
        blocking_storage=storage,
    )
    return pipeline, _delta_index(key, storage)


def build_session(
    config: Mapping[str, object], store=None, name: str = "stream"
) -> StreamingMatcher:
    """A new streaming session from a JSON config (durable iff ``store``)."""
    config = validate_config(config)
    pipeline, index = _build_pipeline_and_index(config)
    if config.get("graph") and store is None:
        raise ValueError(
            "config.graph requires a durable session (pass a store): the "
            "match graph lives in the store's adjacency tables"
        )
    session = StreamingMatcher(
        pipeline, index, store=store, name=name, config=config
    )
    if config.get("graph"):
        from repro.graph.build import GraphUpdater

        session.attach_graph(
            GraphUpdater.create(store, name, pipeline.threshold)
        )
    return session


def open_session(store, name: str) -> StreamingMatcher:
    """Resume the durable session ``name`` from ``store``."""
    return StreamingMatcher.resume(store, name)
