"""Candidate generation / blocking (pipeline step 2, §1.2).

Blocking prunes the quadratic comparison space ``[D]^2`` down to a
candidate set that should retain as many true duplicates as possible
[10, 47].  Implemented: the full cross product (no blocking), standard
key-based blocking, the sorted-neighborhood method (windowing), and
token blocking.  All blockers return canonical pairs, so their output
can be evaluated directly with pair-based metrics (pairs completeness /
reduction ratio).

Blockers visit blocks in sorted order, so any order-sensitive
instrumentation of the emission (tracing, progress sampling) is
reproducible.  The candidate *sets* they return are content-identical
regardless of ``PYTHONHASHSEED`` either way; byte-identical stored
experiments and cache digests are guaranteed downstream, where the
pipeline scores candidates in sorted order
(:meth:`~repro.matching.pipeline.MatchingPipeline.compare_candidates`).
"""

from __future__ import annotations

import logging
from collections.abc import Callable, Iterable
from itertools import combinations

from repro.core.pairs import Pair, make_pair
from repro.core.records import Dataset, Record
from repro.matching.similarity import tokenize
from repro.telemetry.metrics import get_metrics

__all__ = [
    "full_pairs",
    "standard_blocking",
    "sorted_neighborhood",
    "token_blocking",
    "first_token_key",
    "prefix_key",
    "soundex_key",
    "note_purged_blocks",
]

_LOGGER = logging.getLogger(__name__)

# Recall loss from the max_block_size purge must be observable: purged
# blocks silently shrink the candidate set, which reads as "fast" until
# pairs completeness is measured.  One counter pair is shared by every
# purge site — token blocking, LSH bucket purging, and the disk-backed
# SQL path (:mod:`repro.blocking_disk`).
_PURGED_BLOCKS = get_metrics().counter(
    "frost_blocking_purged_blocks_total",
    "Oversized blocks dropped by the max_block_size purge",
)
_PURGED_RECORDS = get_metrics().counter(
    "frost_blocking_purged_records_total",
    "Record memberships lost inside purged oversized blocks",
)

BlockingKey = Callable[[Record], str | None]


def note_purged_blocks(
    scheme: str, purged_blocks: int, purged_records: int
) -> None:
    """Record one run's block purge in telemetry (no-op when nothing
    was purged) and warn once per run so the recall loss is visible."""
    if not purged_blocks:
        return
    _PURGED_BLOCKS.inc(purged_blocks)
    _PURGED_RECORDS.inc(purged_records)
    _LOGGER.warning(
        "%s purged %d oversized block(s) spanning %d record memberships "
        "(max_block_size); recall may drop — see "
        "frost_blocking_purged_blocks_total",
        scheme,
        purged_blocks,
        purged_records,
    )


def full_pairs(dataset: Dataset) -> set[Pair]:
    """The entire ``[D]^2`` — exact but quadratic; baseline only."""
    ids = dataset.record_ids
    return {make_pair(a, b) for a, b in combinations(ids, 2)}


def standard_blocking(dataset: Dataset, key: BlockingKey) -> set[Pair]:
    """All pairs that share a blocking key value.

    Records whose key is ``None`` are excluded (they would otherwise
    form a giant null block).
    """
    blocks: dict[str, list[str]] = {}
    for record in dataset:
        value = key(record)
        if value is not None:
            blocks.setdefault(value, []).append(record.record_id)
    candidates: set[Pair] = set()
    for value in sorted(blocks):
        candidates.update(
            make_pair(a, b) for a, b in combinations(blocks[value], 2)
        )
    return candidates


def sorted_neighborhood(
    dataset: Dataset, key: BlockingKey, window: int = 5
) -> set[Pair]:
    """Sorted-neighborhood method: sort by key, pair within a window.

    Records with ``None`` keys sort *first* under an empty key (they
    still participate, as the original method prescribes a total
    order).  Equal keys are tie-broken by record id — sorting by key
    alone would leave ties in dataset insertion order, making the
    window (and therefore the candidate set) depend on ingestion order.
    The total ``(key, record_id)`` order also matches what SQL's
    ``ORDER BY block_key, record_id`` produces, which keeps the
    disk-backed window join (:mod:`repro.blocking_disk`) set-identical.
    """
    if window < 2:
        raise ValueError(f"window must be at least 2, got {window}")
    ordered = sorted(
        (record.record_id for record in dataset),
        key=lambda record_id: (key(dataset[record_id]) or "", record_id),
    )
    candidates: set[Pair] = set()
    for index, record_id in enumerate(ordered):
        for offset in range(1, window):
            if index + offset >= len(ordered):
                break
            candidates.add(make_pair(record_id, ordered[index + offset]))
    return candidates


def token_blocking(
    dataset: Dataset,
    attributes: Iterable[str] | None = None,
    min_token_length: int = 3,
    max_block_size: int | None = 200,
) -> set[Pair]:
    """Token blocking: records sharing any (non-stop) token are candidates.

    ``max_block_size`` drops oversized blocks (ubiquitous tokens such as
    brand names) — the standard block-purging heuristic; set ``None`` to
    keep everything.
    """
    blocks: dict[str, list[str]] = {}
    for record in dataset:
        names = attributes if attributes is not None else record.values.keys()
        seen: set[str] = set()
        for attribute in names:
            value = record.value(attribute)
            if not value:
                continue
            for token in tokenize(value):
                if len(token) >= min_token_length:
                    seen.add(token)
        for token in sorted(seen):
            blocks.setdefault(token, []).append(record.record_id)
    candidates: set[Pair] = set()
    purged_blocks = purged_records = 0
    for token in sorted(blocks):
        members = blocks[token]
        if max_block_size is not None and len(members) > max_block_size:
            purged_blocks += 1
            purged_records += len(members)
            continue
        candidates.update(make_pair(a, b) for a, b in combinations(members, 2))
    note_purged_blocks("token_blocking", purged_blocks, purged_records)
    return candidates


# -- common key functions -----------------------------------------------------------


def _keyable_value(record: Record, attribute: str) -> str | None:
    """The attribute value iff it carries any non-whitespace content.

    ``None``, empty, and whitespace-only values are all "missing" for
    blocking purposes: a key derived from ``"   "`` would otherwise
    group every whitespace-padded record into one junk block (and a
    whitespace *prefix* key is indistinguishable from real data).
    """
    value = record.value(attribute)
    if value is None or not value.strip():
        return None
    return value


def first_token_key(attribute: str) -> BlockingKey:
    """Key: the first token of ``attribute`` (lowercased)."""

    def key(record: Record) -> str | None:
        value = _keyable_value(record, attribute)
        if value is None:
            return None
        tokens = tokenize(value)
        return tokens[0] if tokens else None

    return key


def prefix_key(attribute: str, length: int = 3) -> BlockingKey:
    """Key: the first ``length`` characters of ``attribute``."""

    def key(record: Record) -> str | None:
        value = _keyable_value(record, attribute)
        if value is None:
            return None
        return value.lower()[:length]

    return key


def soundex_key(attribute: str) -> BlockingKey:
    """Key: the Soundex code of ``attribute`` — robust to typos."""
    from repro.matching.similarity import soundex

    def key(record: Record) -> str | None:
        value = _keyable_value(record, attribute)
        if value is None:
            return None
        return soundex(value)

    return key
