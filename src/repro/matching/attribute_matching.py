"""Similarity-based attribute value matching (pipeline step 3, §1.2).

Computes, for each candidate pair, a vector of per-attribute similarity
values — the feature representation consumed by the decision models of
step 4.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.pairs import Pair
from repro.core.records import Dataset, Record
from repro.matching.similarity import SIMILARITY_FUNCTIONS, Similarity

__all__ = ["AttributeComparator", "SimilarityVector", "compare_pairs"]


@dataclass(frozen=True)
class SimilarityVector:
    """Per-attribute similarities of one candidate pair.

    ``values[attribute]`` is the similarity in ``[0, 1]``, or ``None``
    when either record is null in that attribute (missing comparisons
    are distinguished from zero similarity so that decision models can
    handle sparsity explicitly, cf. §4.5.2).
    """

    pair: Pair
    values: Mapping[str, float | None]

    def dense(self, attributes: Sequence[str], missing: float = 0.0) -> list[float]:
        """Vector over ``attributes`` with ``missing`` for null comparisons."""
        return [
            self.values.get(attribute) if self.values.get(attribute) is not None
            else missing
            for attribute in attributes
        ]

    def mean(self) -> float:
        """Mean of the non-missing similarities (0.0 if all missing)."""
        present = [v for v in self.values.values() if v is not None]
        if not present:
            return 0.0
        return sum(present) / len(present)


class AttributeComparator:
    """Configurable per-attribute similarity computation.

    Parameters
    ----------
    config:
        Mapping from attribute name to a similarity function or the
        name of a built-in one (see
        :data:`repro.matching.similarity.SIMILARITY_FUNCTIONS`).
    """

    def __init__(self, config: Mapping[str, Similarity | str]) -> None:
        if not config:
            raise ValueError("comparator needs at least one attribute")
        self._config: dict[str, Similarity] = {}
        for attribute, function in config.items():
            if isinstance(function, str):
                try:
                    function = SIMILARITY_FUNCTIONS[function]
                except KeyError:
                    known = ", ".join(sorted(SIMILARITY_FUNCTIONS))
                    raise KeyError(
                        f"unknown similarity {function!r}; known: {known}"
                    ) from None
            self._config[attribute] = function

    @property
    def attributes(self) -> list[str]:
        """The attribute names this comparator is configured for."""
        return list(self._config)

    @property
    def functions(self) -> Mapping[str, Similarity]:
        """Attribute → similarity function, in configuration order.

        The public view :func:`repro.columnar.plan_for` inspects to
        decide whether every configured measure has a batch kernel.
        """
        return dict(self._config)

    def compare(self, first: Record, second: Record) -> SimilarityVector:
        """Similarity vector of one record pair."""
        values: dict[str, float | None] = {}
        for attribute, function in self._config.items():
            value_a = first.value(attribute)
            value_b = second.value(attribute)
            if value_a is None or value_b is None:
                values[attribute] = None
            else:
                values[attribute] = function(value_a, value_b)
        from repro.core.pairs import make_pair

        return SimilarityVector(
            pair=make_pair(first.record_id, second.record_id), values=values
        )


def compare_pairs(
    dataset: Dataset,
    pairs: set[Pair] | Sequence[Pair],
    comparator: AttributeComparator,
) -> list[SimilarityVector]:
    """Similarity vectors for all candidate pairs.

    Sequences keep their order — the i-th vector belongs to the i-th
    pair, so vectors stay aligned with external labels.  Unordered sets
    are sorted for determinism.
    """
    ordered = sorted(pairs) if isinstance(pairs, (set, frozenset)) else pairs
    return [
        comparator.compare(dataset[first], dataset[second])
        for first, second in ordered
    ]
