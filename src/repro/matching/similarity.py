"""String and value similarity measures (pipeline step 3, §1.2).

Similarity-based attribute value matching: every measure returns a
similarity in ``[0, 1]`` where 1 means identical.  ``None`` values are
handled by the caller (see :mod:`repro.matching.attribute_matching`).

Implemented from scratch: Levenshtein (with banded early exit), Jaro,
Jaro–Winkler, token and character n-gram Jaccard, overlap coefficient,
Monge–Elkan, TF-IDF cosine (corpus-fitted), Soundex equality, numeric
proximity, and exact equality.
"""

from __future__ import annotations

import math
import re
from collections import Counter
from collections.abc import Callable, Iterable, Sequence
from functools import lru_cache

__all__ = [
    "exact",
    "levenshtein_distance",
    "levenshtein",
    "jaro",
    "jaro_winkler",
    "tokenize",
    "token_jaccard",
    "overlap_coefficient",
    "ngrams",
    "ngram_jaccard",
    "monge_elkan",
    "soundex",
    "SOUNDEX_SENTINEL",
    "soundex_similarity",
    "numeric_similarity",
    "TfIdfCosine",
    "SIMILARITY_FUNCTIONS",
]

Similarity = Callable[[str, str], float]

_TOKEN_PATTERN = re.compile(r"\w+")


def exact(first: str, second: str) -> float:
    """1.0 iff the strings are identical (case-sensitive)."""
    return 1.0 if first == second else 0.0


def levenshtein_distance(first: str, second: str, bound: int | None = None) -> int:
    """Edit distance with substitutions, insertions, and deletions.

    Banded two-row dynamic program (Ukkonen's cutoff): only cells with
    ``|i - j| <= bound`` are computed, and the scan exits early once
    every entry of a row exceeds ``bound`` — row minima are
    non-decreasing, so later rows cannot come back under it.  The
    returned value is the exact distance whenever it is ``<= bound``;
    otherwise ``bound + 1`` is returned, meaning "greater than bound".

    With the default ``bound=None`` the band spans ``max(len)`` — an
    upper bound on any edit distance — so the result is always exact,
    in ``O(len(first) · len(second))`` time and ``O(min(len))`` space.
    """
    if first == second:
        return 0
    if len(first) < len(second):
        first, second = second, first
    len_a, len_b = len(first), len(second)
    if bound is None:
        bound = len_a  # distance never exceeds the longer length
    elif bound < 0:
        raise ValueError(f"bound must be >= 0, got {bound}")
    if len_a - len_b > bound:  # length gap alone exceeds the band
        return bound + 1
    if not second:
        return len_a
    if bound >= len_a:
        # Full band: the classic tight two-row scan (no cell can fall
        # outside it, and no row minimum can exceed max(len)).
        previous = list(range(len_b + 1))
        for i, char_a in enumerate(first, start=1):
            current = [i]
            for j, char_b in enumerate(second, start=1):
                cost = 0 if char_a == char_b else 1
                current.append(
                    min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
                )
            previous = current
        return previous[-1]
    overshoot = bound + 1
    previous = list(range(len_b + 1))
    lo, hi = 0, len_b  # the previous row's in-band column span
    for i, char_a in enumerate(first, start=1):
        row_lo = max(0, i - bound)
        row_hi = min(len_b, i + bound)
        current = []
        if row_lo == 0:
            current.append(i)  # first column: i deletions
        for j in range(max(row_lo, 1), row_hi + 1):
            cost = 0 if char_a == second[j - 1] else 1
            above = previous[j - lo] + 1 if lo <= j <= hi else overshoot
            left = current[j - row_lo - 1] + 1 if j > row_lo else overshoot
            diagonal = (
                previous[j - 1 - lo] + cost if lo <= j - 1 <= hi else overshoot
            )
            current.append(min(above, left, diagonal))
        if min(current) > bound:
            return overshoot  # row minima never decrease: no way back
        previous = current
        lo, hi = row_lo, row_hi
    distance = previous[-1]
    return distance if distance <= bound else overshoot


def levenshtein(first: str, second: str) -> float:
    """Normalized Levenshtein similarity: ``1 - distance / max(len)``."""
    if not first and not second:
        return 1.0
    return 1.0 - levenshtein_distance(first, second) / max(len(first), len(second))


def jaro(first: str, second: str) -> float:
    """Jaro similarity: transposition-aware common-character overlap."""
    if first == second:
        return 1.0
    len_a, len_b = len(first), len(second)
    if len_a == 0 or len_b == 0:
        return 0.0
    window = max(len_a, len_b) // 2 - 1
    window = max(window, 0)
    matched_a = [False] * len_a
    matched_b = [False] * len_b
    matches = 0
    for i, char in enumerate(first):
        start = max(0, i - window)
        stop = min(i + window + 1, len_b)
        for j in range(start, stop):
            if not matched_b[j] and second[j] == char:
                matched_a[i] = True
                matched_b[j] = True
                matches += 1
                break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_a):
        if matched_a[i]:
            while not matched_b[j]:
                j += 1
            if first[i] != second[j]:
                transpositions += 1
            j += 1
    transpositions //= 2
    return (
        matches / len_a + matches / len_b + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(first: str, second: str, prefix_weight: float = 0.1) -> float:
    """Jaro–Winkler: Jaro boosted for common prefixes up to length 4.

    Per Winkler's published definition the prefix boost applies only
    when the Jaro similarity *exceeds* the boost threshold of 0.7 — a
    pair sitting exactly on the threshold is returned unboosted.
    """
    base = jaro(first, second)
    if base <= 0.7:
        return base
    prefix = 0
    for char_a, char_b in zip(first[:4], second[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return base + prefix * prefix_weight * (1.0 - base)


def tokenize(value: str) -> list[str]:
    """Lowercased word tokens (alphanumeric runs)."""
    return _TOKEN_PATTERN.findall(value.lower())


# Token/n-gram derivations dominate the comparison hot path, and the
# same attribute value is compared against every other member of its
# blocks — memoizing the derived (immutable) sets means each distinct
# value is tokenized once per process instead of once per pair.

@lru_cache(maxsize=131072)
def _token_tuple(value: str) -> tuple[str, ...]:
    """Memoized :func:`tokenize` result as an immutable tuple."""
    return tuple(tokenize(value))


@lru_cache(maxsize=131072)
def _token_set(value: str) -> frozenset[str]:
    """Memoized word-token set of ``value``."""
    return frozenset(_token_tuple(value))


@lru_cache(maxsize=131072)
def _ngram_set(value: str, n: int) -> frozenset[str]:
    """Memoized character n-gram set of ``value``."""
    return frozenset(ngrams(value, n))


def token_jaccard(first: str, second: str) -> float:
    """Jaccard similarity of the word-token sets."""
    tokens_a = _token_set(first)
    tokens_b = _token_set(second)
    if not tokens_a and not tokens_b:
        return 1.0
    union = tokens_a | tokens_b
    if not union:
        return 1.0
    return len(tokens_a & tokens_b) / len(union)


def overlap_coefficient(first: str, second: str) -> float:
    """Szymkiewicz–Simpson overlap of the word-token sets."""
    tokens_a = _token_set(first)
    tokens_b = _token_set(second)
    if not tokens_a or not tokens_b:
        return 1.0 if tokens_a == tokens_b else 0.0
    return len(tokens_a & tokens_b) / min(len(tokens_a), len(tokens_b))


def ngrams(value: str, n: int = 2) -> set[str]:
    """Character n-grams of the lowercased, padded string."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    padded = f"{'#' * (n - 1)}{value.lower()}{'#' * (n - 1)}"
    if len(padded) < n:
        return set()
    return {padded[i : i + n] for i in range(len(padded) - n + 1)}


def ngram_jaccard(first: str, second: str, n: int = 2) -> float:
    """Jaccard similarity of character n-gram sets (bigram default)."""
    grams_a = _ngram_set(first, n)
    grams_b = _ngram_set(second, n)
    if not grams_a and not grams_b:
        return 1.0
    union = grams_a | grams_b
    return len(grams_a & grams_b) / len(union)


def monge_elkan(
    first: str, second: str, inner: Similarity = jaro_winkler
) -> float:
    """Monge–Elkan: mean best inner-similarity of tokens, symmetrized.

    Robust against token reordering and partially matching long fields
    (e.g. the cluttered ``name`` attribute of the SIGMOD datasets).
    """

    def one_way(tokens_a: Sequence[str], tokens_b: Sequence[str]) -> float:
        if not tokens_a:
            return 1.0 if not tokens_b else 0.0
        if not tokens_b:
            return 0.0
        return sum(
            max(inner(token_a, token_b) for token_b in tokens_b)
            for token_a in tokens_a
        ) / len(tokens_a)

    tokens_a = _token_tuple(first)
    tokens_b = _token_tuple(second)
    return (one_way(tokens_a, tokens_b) + one_way(tokens_b, tokens_a)) / 2.0


_SOUNDEX_CODES = {
    **dict.fromkeys("bfpv", "1"),
    **dict.fromkeys("cgjkqsxz", "2"),
    **dict.fromkeys("dt", "3"),
    "l": "4",
    **dict.fromkeys("mn", "5"),
    "r": "6",
}


SOUNDEX_SENTINEL = "0000"


def soundex(value: str) -> str:
    """American Soundex code (letter + three digits) of the first word.

    Follows the published NARA rules for alphabetic names: the first
    letter is retained; ``h``/``w`` are transparent (same-coded letters
    separated by them collapse, as in ``Ashcraft -> A261``); vowels and
    ``y`` separate (``Tymczak -> T522``); and a second letter coded like
    the first is skipped (``Pfister -> P236``).  Deliberate deviation:
    Soundex is undefined for words that do not start with a letter, so
    those (and empty values) map to the :data:`SOUNDEX_SENTINEL` code —
    :func:`soundex_similarity` treats the sentinel as "not encodable"
    rather than as a real phonetic class.
    """
    word = next(iter(_token_tuple(value)), "")
    if not word or not word[0].isalpha():
        return SOUNDEX_SENTINEL
    head = word[0].upper()
    digits = []
    previous = _SOUNDEX_CODES.get(word[0], "")
    for char in word[1:]:
        code = _SOUNDEX_CODES.get(char, "")
        if code and code != previous:
            digits.append(code)
        if char not in "hw":
            previous = code
        if len(digits) == 3:
            break
    return head + "".join(digits).ljust(3, "0")


def soundex_similarity(first: str, second: str) -> float:
    """1.0 iff the Soundex codes agree — a cheap phonetic similarity.

    Values Soundex cannot encode (empty, or not starting with a
    letter) fall back to exact string equality: two *different*
    non-encodable values (``"42"`` vs ``"99"``) must not count as
    phonetically identical just because both map to the sentinel code.
    """
    code_a = soundex(first)
    code_b = soundex(second)
    if code_a == SOUNDEX_SENTINEL or code_b == SOUNDEX_SENTINEL:
        return exact(first, second)
    return 1.0 if code_a == code_b else 0.0


def numeric_similarity(first: str, second: str, tolerance: float = 0.2) -> float:
    """Proximity of two numeric strings, linear within a relative tolerance.

    Non-numeric input falls back to exact string equality — and so do
    non-finite parses (``"nan"``, ``"inf"``, ``"-infinity"``): the
    relative-distance formula is meaningless there, and evaluating it
    would produce NaN scores that survive the tolerance guard and
    poison thresholding, fusion weights, and graph edge scores
    downstream.  The result is therefore always finite and in
    ``[0, 1]``.
    """
    try:
        value_a = float(first)
        value_b = float(second)
    except ValueError:
        return exact(first, second)
    if not (math.isfinite(value_a) and math.isfinite(value_b)):
        return exact(first, second)
    if value_a == value_b:
        return 1.0
    scale = max(abs(value_a), abs(value_b))
    if scale == 0.0:
        return 1.0
    relative = abs(value_a - value_b) / scale
    if relative >= tolerance:
        return 0.0
    return 1.0 - relative / tolerance


class TfIdfCosine:
    """Corpus-fitted TF-IDF cosine similarity over word tokens.

    Fit on all values of an attribute (or the whole dataset) first, then
    call the instance like any other similarity function.  Rare tokens
    receive high weight, mirroring the column-entropy intuition of
    §4.3.2.
    """

    def __init__(self, corpus: Iterable[str] = ()) -> None:
        self._document_frequency: Counter[str] = Counter()
        self._documents = 0
        # value -> (vector, norm); every add() shifts the idf weights,
        # so the cache is only valid between corpus mutations
        self._vector_cache: dict[str, tuple[dict[str, float], float]] = {}
        for value in corpus:
            self.add(value)

    def add(self, value: str) -> None:
        """Add one document to the corpus statistics."""
        self._documents += 1
        self._document_frequency.update(_token_set(value))
        self._vector_cache.clear()

    def _weight(self, token: str) -> float:
        df = self._document_frequency.get(token, 0)
        return math.log((1 + self._documents) / (1 + df)) + 1.0

    def vector(self, value: str) -> dict[str, float]:
        """The TF-IDF vector of ``value`` under the current corpus."""
        return dict(self._cached_vector(value)[0])

    def _cached_vector(self, value: str) -> tuple[dict[str, float], float]:
        cached = self._vector_cache.get(value)
        if cached is None:
            counts = Counter(_token_tuple(value))
            vector = {
                token: count * self._weight(token)
                for token, count in counts.items()
            }
            norm = math.sqrt(sum(w * w for w in vector.values()))
            cached = (vector, norm)
            if len(self._vector_cache) < 131072:
                self._vector_cache[value] = cached
        return cached

    def __getstate__(self) -> dict[str, object]:
        """Pickle without the vector cache.

        Sharded parallel comparison ships comparators to worker
        processes; the cache is derived state that every worker can
        rebuild for exactly the values it touches, so serializing it
        would only bloat the per-shard payload.
        """
        state = dict(self.__dict__)
        state["_vector_cache"] = {}
        return state

    def config_fingerprint(self) -> dict[str, object]:
        """Content token for the engine's cache keys.

        Covers the corpus statistics (which determine every similarity
        this instance can return) but not the vector cache, so a
        fitted measure hashes identically before and after it has been
        used.
        """
        return {
            "tfidf_cosine": {
                "documents": self._documents,
                "document_frequency": sorted(
                    self._document_frequency.items()
                ),
            }
        }

    def __call__(self, first: str, second: str) -> float:
        vector_a, norm_a = self._cached_vector(first)
        vector_b, norm_b = self._cached_vector(second)
        if not vector_a and not vector_b:
            return 1.0
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        dot = sum(
            weight * vector_b.get(token, 0.0) for token, weight in vector_a.items()
        )
        # Clamp the last-ulp overshoot of fl(sqrt(s))² < s: for some
        # norms the rounded product of the two square roots lands just
        # below the exact dot product of identical vectors, and the
        # ratio exceeds 1.0 by one ulp — a score outside [0, 1].
        return min(1.0, dot / (norm_a * norm_b))


SIMILARITY_FUNCTIONS: dict[str, Similarity] = {
    "exact": exact,
    "levenshtein": levenshtein,
    "jaro": jaro,
    "jaro_winkler": jaro_winkler,
    "token_jaccard": token_jaccard,
    "overlap": overlap_coefficient,
    "ngram_jaccard": ngram_jaccard,
    "monge_elkan": monge_elkan,
    "soundex": soundex_similarity,
    "numeric": numeric_similarity,
}
