"""Duplicate clustering algorithms (pipeline step 5, §1.2).

"Given the set of high probability duplicate pairs, cluster the
original dataset into disjoint sets of duplicates" [20, 31].  Frost
also uses agreement between several clustering algorithms as a
no-ground-truth quality signal (§3.2.3), so multiple algorithms are
provided:

* connected components (transitive closure) — the default;
* center clustering and merge-center clustering (Hassanzadeh et al.);
* greedy maximum-clique clustering;
* Markov clustering (flow simulation on the similarity graph).

All functions take scored pairs and return a
:class:`~repro.core.clustering.Clustering`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.clustering import Clustering
from repro.core.pairs import ScoredPair

__all__ = [
    "connected_components",
    "center_clustering",
    "merge_center_clustering",
    "greedy_clique_clustering",
    "markov_clustering",
    "CLUSTERING_ALGORITHMS",
]


def connected_components(pairs: Sequence[ScoredPair]) -> Clustering:
    """Transitive closure: connected components of the match graph.

    Simple and recall-friendly, but "this step often introduces many
    false positives" on chained matches (§1.2) — the motivation for the
    alternatives below.
    """
    return Clustering.from_pairs(sp.pair for sp in pairs)


def _ordered(pairs: Sequence[ScoredPair]) -> list[ScoredPair]:
    """Pairs by descending score (ties broken by pair for determinism)."""
    return sorted(pairs, key=lambda sp: (-sp.score, sp.pair))


def center_clustering(pairs: Sequence[ScoredPair]) -> Clustering:
    """Center clustering [31].

    Scanning pairs by descending similarity: when both records of a
    pair are unassigned, the first becomes a cluster *center* and the
    second joins it; an unassigned record paired with an existing
    center joins that center's cluster.  All other pairs (member–member,
    member–unassigned, center–center) are ignored, which prevents the
    chaining errors of transitive closure.
    """
    center_of: dict[str, str] = {}  # member -> its center
    is_center: set[str] = set()

    def assigned(record: str) -> bool:
        """Whether a record has already been claimed by a cluster."""
        return record in is_center or record in center_of

    for sp in _ordered(pairs):
        first, second = sp.pair
        if not assigned(first) and not assigned(second):
            is_center.add(first)
            center_of[second] = first
        elif first in is_center and not assigned(second):
            center_of[second] = first
        elif second in is_center and not assigned(first):
            center_of[first] = second
    clusters: dict[str, list[str]] = {center: [center] for center in is_center}
    for member, center in center_of.items():
        clusters[center].append(member)
    # records that never got assigned become singletons
    placed = is_center | set(center_of)
    for sp in pairs:
        for record in sp.pair:
            if record not in placed:
                placed.add(record)
                clusters[record] = [record]
    return Clustering(clusters.values())


def merge_center_clustering(pairs: Sequence[ScoredPair]) -> Clustering:
    """Merge-center clustering [31].

    Like center clustering, but when a record of one cluster is similar
    to the *center* of another cluster, the two clusters are merged —
    more recall than center clustering, less chaining than transitive
    closure.
    """
    from repro.core.unionfind import PairCountingUnionFind

    ids: dict[str, int] = {}
    ordered = _ordered(pairs)
    for sp in ordered:
        for record in sp.pair:
            ids.setdefault(record, len(ids))
    unionfind = PairCountingUnionFind(len(ids))
    is_center: set[str] = set()
    assigned: set[str] = set()
    for sp in ordered:
        first, second = sp.pair
        first_known = first in is_center or first in assigned
        second_known = second in is_center or second in assigned
        if not first_known and not second_known:
            is_center.add(first)
            assigned.add(second)
            unionfind.union(ids[first], ids[second])
        elif first in is_center:
            assigned.add(second)
            unionfind.union(ids[first], ids[second])
        elif second in is_center:
            assigned.add(first)
            unionfind.union(ids[first], ids[second])
        # member-member pairs are ignored, as in center clustering
    by_root: dict[int, list[str]] = {}
    for record, numeric in ids.items():
        by_root.setdefault(unionfind.find(numeric), []).append(record)
    return Clustering(by_root.values())


def greedy_clique_clustering(pairs: Sequence[ScoredPair]) -> Clustering:
    """Greedy maximum-clique clustering.

    Pairs are processed by descending score; a merge of two clusters is
    accepted only if every cross pair is a match — so every cluster is
    a clique of the match graph.  Precise but conservative.
    """
    match_set = {sp.pair for sp in pairs}
    cluster_of: dict[str, int] = {}
    members: dict[int, set[str]] = {}
    next_id = 0
    from repro.core.pairs import make_pair

    for sp in _ordered(pairs):
        first, second = sp.pair
        for record in (first, second):
            if record not in cluster_of:
                cluster_of[record] = next_id
                members[next_id] = {record}
                next_id += 1
        cluster_a = cluster_of[first]
        cluster_b = cluster_of[second]
        if cluster_a == cluster_b:
            continue
        complete = all(
            make_pair(a, b) in match_set
            for a in members[cluster_a]
            for b in members[cluster_b]
        )
        if complete:
            for record in members[cluster_b]:
                cluster_of[record] = cluster_a
            members[cluster_a] |= members.pop(cluster_b)
    return Clustering(members.values())


def markov_clustering(
    pairs: Sequence[ScoredPair],
    expansion: int = 2,
    inflation: float = 2.0,
    iterations: int = 50,
    tolerance: float = 1e-6,
) -> Clustering:
    """Markov clustering (MCL) on the weighted match graph.

    Simulates flow: alternating expansion (matrix power) and inflation
    (element-wise power + renormalization) until convergence; attractors
    define the clusters.  Runs independently per connected component to
    keep the dense matrices small.
    """
    if not pairs:
        return Clustering([])
    components = Clustering.from_pairs(sp.pair for sp in pairs)
    weights: dict[tuple[str, str], float] = {sp.pair: sp.score for sp in pairs}
    clusters: list[list[str]] = []
    for component in components.clusters:
        if len(component) <= 2:
            clusters.append(list(component))
            continue
        clusters.extend(
            _mcl_component(
                list(component), weights, expansion, inflation, iterations, tolerance
            )
        )
    return Clustering(clusters)


def _mcl_component(
    nodes: list[str],
    weights: dict[tuple[str, str], float],
    expansion: int,
    inflation: float,
    iterations: int,
    tolerance: float,
) -> list[list[str]]:
    from repro.core.pairs import make_pair

    index = {node: position for position, node in enumerate(nodes)}
    n = len(nodes)
    matrix = np.eye(n)  # self loops, standard MCL practice
    for i, node_a in enumerate(nodes):
        for j in range(i + 1, n):
            weight = weights.get(make_pair(node_a, nodes[j]))
            if weight is not None and weight > 0:
                matrix[i, j] = matrix[j, i] = weight
    matrix /= matrix.sum(axis=0, keepdims=True)
    for _ in range(iterations):
        previous = matrix
        matrix = np.linalg.matrix_power(matrix, expansion)
        matrix = np.power(matrix, inflation)
        sums = matrix.sum(axis=0, keepdims=True)
        sums[sums == 0.0] = 1.0
        matrix /= sums
        if np.abs(matrix - previous).max() < tolerance:
            break
    # attractors: rows with non-negligible mass; cluster = attractor's support
    assigned: dict[int, int] = {}
    clusters: dict[int, set[str]] = {}
    for row in range(n):
        support = np.nonzero(matrix[row] > 1e-6)[0]
        if len(support) == 0:
            continue
        for column in support:
            if column not in assigned:
                assigned[column] = row
                clusters.setdefault(row, set()).add(nodes[column])
    # unassigned nodes (numerical edge cases) become singletons
    placed = {node for members in clusters.values() for node in members}
    result = [sorted(members) for members in clusters.values()]
    result.extend([node] for node in nodes if node not in placed)
    del index
    return result


CLUSTERING_ALGORITHMS = {
    "connected_components": connected_components,
    "center": center_clustering,
    "merge_center": merge_center_clustering,
    "greedy_clique": greedy_clique_clustering,
    "markov": markov_clustering,
}
