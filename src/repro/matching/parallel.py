"""Sharded parallel execution of the pairwise comparison stage.

Similarity-based attribute matching (pipeline step 3) is the hottest
loop of the codebase: every candidate pair costs several pure-Python
string-similarity evaluations, and the GIL keeps a thread pool from
scaling it.  This module partitions the candidate pairs into
**deterministic shards** and scores the shards on separate *processes*
(:class:`~repro.engine.executors.ProcessExecutor`), then merges the
shard outputs back into the exact order the serial loop would have
produced — the parallel path is **byte-identical** to
:meth:`MatchingPipeline.compare_candidates` with ``workers=1``:

* shard assignment hashes the canonical pair with CRC-32 (stable
  across processes, platforms, and ``PYTHONHASHSEED``), so the same
  input always yields the same shards;
* each shard receives only the records its pairs touch (compact
  per-shard serialization instead of shipping the whole dataset to
  every worker);
* every shard scores its pairs in sorted order, and the per-shard
  outputs are k-way merged by pair, which equals one global sorted
  scan — vector *values* are unaffected because the similarity
  functions are pure.

Because the output cannot differ, the parallelism knob deliberately
stays **out** of :meth:`MatchingPipeline.config_fingerprint`: the
engine's result cache serves a result computed with ``workers=4`` to a
``workers=1`` request and vice versa.
"""

from __future__ import annotations

import logging
import time
import zlib
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from heapq import merge

from repro.columnar import (
    ColumnarStore,
    compare_block,
    count_fallback,
    count_store_build,
    plan_for,
)
from repro.core.pairs import Pair
from repro.core.records import Record
from repro.matching.attribute_matching import (
    AttributeComparator,
    SimilarityVector,
    compare_pairs,
)
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import spans as _tracing

_LOG = logging.getLogger("repro.matching.parallel")

_PAIRS_COMPARED = _telemetry_metrics.get_metrics().counter(
    "frost_comparison_pairs_total",
    "Candidate pairs scored by the similarity comparison stage",
)

__all__ = [
    "ParallelConfig",
    "COLUMNAR_MIN_PAIRS",
    "shard_of",
    "partition_pairs",
    "resolve_candidates",
    "compare_pairs_sharded",
]

# Below this many pairs a fork + pickle round-trip costs more than the
# comparisons it saves; the pipeline falls back to the serial loop.
DEFAULT_MIN_PAIRS = 2048
# Below this many pairs building a columnar store costs more than the
# per-pair function calls it batches away; the scalar loop wins.
COLUMNAR_MIN_PAIRS = 32
# Shards per worker: more shards than workers smooths skew (a shard
# that happens to hold long values does not straggle the whole batch).
SHARDS_PER_WORKER = 4


@dataclass(frozen=True)
class ParallelConfig:
    """How (and whether) to shard the comparison stage.

    Attributes
    ----------
    workers:
        Process count. ``1`` keeps the serial path; ``0``/``None``
        means "all cores".
    shards:
        Partition count; defaults to ``SHARDS_PER_WORKER × workers``.
        More shards than workers lets fast workers steal skewed work.
    min_pairs:
        Candidate-set size below which the serial path is used even
        when ``workers > 1`` — fork/pickle overhead would dominate.
    """

    workers: int | None = 1
    shards: int | None = None
    min_pairs: int = DEFAULT_MIN_PAIRS

    def __post_init__(self) -> None:
        # ValueError (not TypeError) on any malformed value: configs
        # arrive from JSON request bodies, and the API layer maps
        # ValueError to a 400 while anything else becomes a 500.
        for field_name in ("workers", "shards", "min_pairs"):
            value = getattr(self, field_name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ValueError(
                    f"{field_name} must be an integer, got {value!r}"
                )
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.shards is not None and self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        if self.min_pairs is None or self.min_pairs < 0:
            raise ValueError(f"min_pairs must be >= 0, got {self.min_pairs}")

    def resolved_workers(self) -> int:
        """The effective process count (``0``/``None`` → all cores)."""
        if self.workers is None or self.workers == 0:
            import os

            return os.cpu_count() or 1
        return self.workers

    def resolved_shards(self) -> int:
        """The effective shard count (default: shards-per-worker)."""
        if self.shards is not None:
            return self.shards
        return max(1, SHARDS_PER_WORKER * self.resolved_workers())

    def engaged(self, pair_count: int) -> bool:
        """Whether the parallel path should run for ``pair_count`` pairs."""
        return self.resolved_workers() > 1 and pair_count >= self.min_pairs

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (stream configs, status payloads)."""
        return {
            "workers": self.workers,
            "shards": self.shards,
            "min_pairs": self.min_pairs,
        }

    @classmethod
    def from_dict(cls, document: object) -> "ParallelConfig":
        """Parse the :meth:`as_dict` form (missing keys keep defaults)."""
        if document is None:
            return cls()
        if not isinstance(document, dict):
            raise ValueError("parallelism config must be a JSON object")
        unknown = set(document) - {"workers", "shards", "min_pairs"}
        if unknown:
            raise ValueError(
                f"unknown parallelism keys: {', '.join(sorted(unknown))}"
            )
        # A config that names shards but not workers still means "go
        # parallel": default the worker count to all cores (0) so the
        # requested sharding is not a silent no-op (the CLI applies
        # the same rule to a bare --shards flag).
        default_workers = 0 if document.get("shards") is not None else 1
        return cls(
            workers=document.get("workers", default_workers),
            shards=document.get("shards"),
            min_pairs=document.get("min_pairs", DEFAULT_MIN_PAIRS),
        )


def shard_of(pair: Pair, shard_count: int) -> int:
    """Deterministic shard index of one canonical pair.

    CRC-32 over the two ids (separated by an id-safe delimiter) is
    stable across processes and hash seeds — unlike builtin ``hash``,
    which ``PYTHONHASHSEED`` randomizes per process.
    """
    first, second = pair
    digest = zlib.crc32(f"{first}\x1f{second}".encode("utf-8"))
    return digest % shard_count


def partition_pairs(
    pairs: Iterable[Pair], shard_count: int
) -> list[list[Pair]]:
    """Partition pairs into ``shard_count`` hash-assigned shards.

    Every input pair lands in exactly one shard, and each shard
    preserves the input iteration order — feed sorted pairs in and
    every shard comes out sorted, which is what the merge step relies
    on.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be positive, got {shard_count}")
    shards: list[list[Pair]] = [[] for _ in range(shard_count)]
    for pair in pairs:
        shards[shard_of(pair, shard_count)].append(pair)
    return shards


def resolve_candidates(
    records, candidates: Iterable[Pair]
) -> tuple[list[Pair], dict[str, Record], list[str]]:
    """Sorted resolvable pairs, their records, and missing record ids.

    ``records`` only needs item access by record id (a
    :class:`~repro.core.records.Dataset`, a mapping, or the streaming
    session's prepared view).  Pairs whose records were deleted between
    blocking and scoring are dropped instead of raising ``KeyError`` —
    the caller decides how loudly to report the returned missing ids.
    """
    ordered = sorted(candidates)
    resolved: dict[str, Record] = {}
    missing: set[str] = set()
    # dict, not set: first-appearance order keeps downstream interning
    # (and therefore store pickles) identical across hash seeds
    for record_id in {rid: None for pair in ordered for rid in pair}:
        try:
            resolved[record_id] = records[record_id]
        except KeyError:
            missing.add(record_id)
    if missing:
        ordered = [
            pair
            for pair in ordered
            if pair[0] not in missing and pair[1] not in missing
        ]
    return ordered, resolved, sorted(missing)


# One shard of work, shipped to a worker process: (pairs, the records
# those pairs touch).  The comparator is NOT part of the task — it is
# identical for every shard, so the executor ships it once per worker
# as shared state instead of pickling it into all ~4×workers tasks
# (a fitted TfIdfCosine carries corpus-wide statistics).
_ShardTask = tuple[Sequence[Pair], dict[str, Record]]


# Packed wire format for shard results: pickling 50k frozen-dataclass
# vectors costs ~4x what the equivalent (pair, value-tuple) rows do, and
# the per-vector attribute keys are redundant when every vector of a
# shard shares one schema (the AttributeComparator case).  Rebuilding
# the vectors in the parent is cheaper than unpickling them.


def _compare_shard_packed(task: _ShardTask):
    """Worker entry point returning the compact wire form of a shard.

    Module-level (picklable by reference); reads the comparator from
    the executor's per-worker shared state.
    """
    from repro.engine.executors import shared_state

    pairs, records = task
    # compare_pairs only needs item access by id and preserves sequence
    # order — the same scoring loop the batch surface uses.
    vectors = compare_pairs(records, pairs, shared_state())
    if not vectors:
        return ("raw", None, [])
    attributes = tuple(vectors[0].values.keys())
    # Only exact SimilarityVector instances may be packed: a subclass
    # (extra fields, overridden behaviour) would be silently rebuilt as
    # the base class, breaking serial/parallel identity.
    if all(
        type(v) is SimilarityVector and tuple(v.values.keys()) == attributes
        for v in vectors
    ):
        return (
            "packed",
            attributes,
            [(v.pair, tuple(v.values.values())) for v in vectors],
        )
    return ("raw", None, vectors)  # schema varies: ship as-is


def _compare_shard_timed(task: _ShardTask):
    """Like :func:`_compare_shard_packed`, prefixed with its wall time.

    Used only while tracing is enabled: a pool worker cannot reach the
    parent's span tree, so it times itself and the parent folds the
    measurement back in as one completed child span per shard
    (:meth:`~repro.telemetry.spans.Tracer.record`).
    """
    started = time.perf_counter()
    payload = _compare_shard_packed(task)
    return (time.perf_counter() - started, payload)


def _unpack_shard(payload) -> list[SimilarityVector]:
    """Rebuild a shard's vectors from the packed wire form."""
    tag, attributes, rows = payload
    if tag == "raw":
        return rows
    return [
        SimilarityVector(pair=pair, values=dict(zip(attributes, values)))
        for pair, values in rows
    ]


def _shard_tasks(
    shards: Sequence[Sequence[Pair]],
    records: dict[str, Record],
) -> list[_ShardTask]:
    """Build per-shard tasks carrying only the records each shard touches."""
    tasks: list[_ShardTask] = []
    for shard in shards:
        if not shard:
            continue
        touched: dict[str, Record] = {}
        for first, second in shard:
            if first not in touched:
                touched[first] = records[first]
            if second not in touched:
                touched[second] = records[second]
        tasks.append((shard, touched))
    return tasks


# Columnar shard of work: (pairs, the column *slice* those pairs touch).
# Slices re-intern down to the values the shard references, so the wire
# payload is two int arrays + a compact string pool per attribute
# instead of one dict per record.
_ColumnarShardTask = tuple[Sequence[Pair], ColumnarStore]


def _columnar_shard_tasks(
    shards: Sequence[Sequence[Pair]],
    store: ColumnarStore,
) -> list[_ColumnarShardTask]:
    """Per-shard tasks shipping column slices instead of record dicts."""
    tasks: list[_ColumnarShardTask] = []
    for shard in shards:
        if not shard:
            continue
        touched: dict[str, None] = {}
        for first, second in shard:
            touched.setdefault(first)
            touched.setdefault(second)
        tasks.append((shard, store.slice(touched)))
    return tasks


def _compare_shard_columnar_packed(task: _ColumnarShardTask):
    """Columnar worker entry point: kernel-score one shard's block.

    The comparator still travels once per worker as shared state; the
    kernel plan is re-derived from it per shard (a few dict lookups).
    The parent only dispatches columnar tasks when planning succeeded
    on the identical comparator, so the plan is never ``None`` here.
    """
    from repro.engine.executors import shared_state

    pairs, store = task
    plan = plan_for(shared_state())
    vectors = compare_block(store, pairs, plan)
    return (
        "packed",
        plan.attributes,
        [(v.pair, tuple(v.values.values())) for v in vectors],
    )


def _compare_shard_columnar_timed(task: _ColumnarShardTask):
    """Like :func:`_compare_shard_columnar_packed`, with its wall time."""
    started = time.perf_counter()
    payload = _compare_shard_columnar_packed(task)
    return (time.perf_counter() - started, payload)


def compare_pairs_sharded(
    records,
    candidates: Iterable[Pair],
    comparator: AttributeComparator,
    config: ParallelConfig | None = None,
    executor=None,
    columnar: bool = True,
    store: ColumnarStore | None = None,
) -> tuple[list[SimilarityVector], list[str]]:
    """Similarity vectors of ``candidates``, sharded across processes.

    Returns ``(vectors, missing_record_ids)``.  Vectors come back in
    sorted-pair order and are byte-identical to the serial loop;
    ``missing_record_ids`` lists records that disappeared between
    blocking and scoring (their pairs are skipped).

    ``executor`` overrides the executor derived from ``config`` —
    tests inject a :class:`~repro.engine.executors.SerialExecutor` to
    exercise the sharded code path without forking.

    ``columnar`` routes comparison through the batch kernels of
    :mod:`repro.columnar` when every configured measure has one
    (:func:`repro.columnar.plan_for`) and the block is big enough to
    amortize building the store; the kernels are byte-identical to the
    scalar measures, so — like parallelism — the knob can never change
    the output, only the speed.

    ``store`` optionally supplies a prebuilt :class:`ColumnarStore`
    covering the candidate records (e.g. the layout cached on the
    prepared dataset) so the comparison pass skips re-interning; it is
    used only if every resolved record is present, and never changes
    scores — kernels read interned *values*, not row positions.
    """
    config = config or ParallelConfig()
    tracer = _tracing.get_tracer()
    ordered, resolved, missing = resolve_candidates(records, candidates)
    _PAIRS_COMPARED.inc(len(ordered))
    plan = None
    if columnar and len(ordered) >= COLUMNAR_MIN_PAIRS:
        plan = plan_for(comparator)
        if plan is None:
            count_fallback(len(ordered))
    if store is not None and (
        plan is None
        or any(a not in store.attributes for a in comparator.attributes)
        or any(record_id not in store for record_id in resolved)
    ):
        store = None
    if executor is None and not config.engaged(len(ordered)):
        if plan is not None:
            if store is None:
                store = ColumnarStore.from_records(
                    resolved, comparator.attributes
                )
                count_store_build()
            return compare_block(store, ordered, plan), missing
        with tracer.span("comparison.serial", pairs=len(ordered)):
            return compare_pairs(resolved, ordered, comparator), missing
    if executor is None:
        from repro.engine.executors import executor_for

        executor = executor_for(config.resolved_workers())
    with tracer.span(
        "comparison.sharded",
        pairs=len(ordered),
        workers=getattr(executor, "workers", None),
        shards=config.resolved_shards(),
        columnar=plan is not None,
    ):
        shards = partition_pairs(ordered, config.resolved_shards())
        _LOG.debug(
            "dispatching %d pairs across %d shards (columnar=%s)",
            len(ordered),
            len(shards),
            plan is not None,
        )
        if plan is not None:
            if store is None:
                store = ColumnarStore.from_records(
                    resolved, comparator.attributes
                )
                count_store_build()
            tasks: Sequence = _columnar_shard_tasks(shards, store)
            worker, worker_timed = (
                _compare_shard_columnar_packed,
                _compare_shard_columnar_timed,
            )
        else:
            tasks = _shard_tasks(shards, resolved)
            worker, worker_timed = _compare_shard_packed, _compare_shard_timed
        if tracer.enabled:
            # Workers time themselves (a pool child cannot reach this
            # span tree); each measurement becomes one completed child
            # span, so the trace shows the true per-shard skew.
            payloads = []
            for task, (seconds, payload) in zip(
                tasks,
                executor.map(worker_timed, tasks, shared=comparator),
            ):
                tracer.record(
                    "comparison.shard", seconds, pairs=len(task[0])
                )
                payloads.append(payload)
        else:
            payloads = executor.map(worker, tasks, shared=comparator)
        shard_vectors = [_unpack_shard(payload) for payload in payloads]
        # Each shard is sorted by pair (partitioning preserved the global
        # sorted order), so a k-way merge reproduces the serial order.
        return list(merge(*shard_vectors, key=lambda v: v.pair)), missing
