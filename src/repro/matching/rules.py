"""Rule-based decision models (pipeline step 4, §1.2).

"Rule-based solutions are configured by hand-crafted matching rules to
detect when a pair of records is a duplicate.  An example rule in the
context of a customer dataset could state that a high similarity of the
surname is an indicator for duplicates, but a high similarity of
customer IDs is not" (Section 1).

A :class:`Rule` maps a similarity vector to a vote; a :class:`RuleSet`
aggregates votes into a final similarity score in ``[0, 1]``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.matching.attribute_matching import SimilarityVector

__all__ = ["Rule", "RuleSet", "attribute_threshold_rule", "weighted_average_rule"]

Predicate = Callable[[SimilarityVector], bool]


@dataclass(frozen=True)
class Rule:
    """A single matching rule.

    Attributes
    ----------
    name:
        Identifier used in explanations and rule-influence analyses.
    predicate:
        Fires when the similarity vector satisfies the rule.
    weight:
        Contribution to the aggregated score; negative weights model
        "is an indicator against a duplicate" rules.
    """

    name: str
    predicate: Predicate
    weight: float = 1.0

    def fires(self, vector: SimilarityVector) -> bool:
        """Whether the rule's condition holds for this vector."""
        return self.predicate(vector)


def attribute_threshold_rule(
    attribute: str, threshold: float, weight: float = 1.0, name: str | None = None
) -> Rule:
    """Rule firing when ``similarity(attribute) >= threshold``.

    Missing comparisons (null attributes) never fire the rule.
    """

    def predicate(vector: SimilarityVector) -> bool:
        value = vector.values.get(attribute)
        return value is not None and value >= threshold

    rule_name = name or f"{attribute}>={threshold:g}"
    return Rule(name=rule_name, predicate=predicate, weight=weight)


def weighted_average_rule(
    weights: dict[str, float], threshold: float, weight: float = 1.0
) -> Rule:
    """Rule firing when the weighted mean similarity clears ``threshold``."""

    def predicate(vector: SimilarityVector) -> bool:
        total_weight = 0.0
        total = 0.0
        for attribute, attribute_weight in weights.items():
            value = vector.values.get(attribute)
            if value is not None:
                total += attribute_weight * value
                total_weight += attribute_weight
        if total_weight == 0.0:
            return False
        return total / total_weight >= threshold

    name = "avg(" + ",".join(weights) + f")>={threshold:g}"
    return Rule(name=name, predicate=predicate, weight=weight)


@dataclass
class RuleSet:
    """A weighted set of rules acting as a decision model.

    ``score`` maps the fired-rule weights onto ``[0, 1]`` via a logistic
    squash so that downstream thresholding and metric/metric diagrams
    work uniformly across decision models.
    """

    rules: Sequence[Rule]
    bias: float = 0.0
    _fire_counts: dict[str, int] = field(default_factory=dict, repr=False)

    def score(self, vector: SimilarityVector) -> float:
        """Similarity score in ``[0, 1]`` for one candidate pair."""
        import math

        activation = self.bias
        for rule in self.rules:
            if rule.fires(vector):
                activation += rule.weight
                self._fire_counts[rule.name] = self._fire_counts.get(rule.name, 0) + 1
        return 1.0 / (1.0 + math.exp(-activation))

    def explain(self, vector: SimilarityVector) -> list[str]:
        """Names of the rules that fire for this pair (SystemER-style
        human-comprehensible explanation [50])."""
        return [rule.name for rule in self.rules if rule.fires(vector)]

    def rule_influence(self) -> dict[str, int]:
        """How often each rule fired so far (NADEEF/ER-style analysis [24])."""
        return dict(self._fire_counts)

    def reset_influence(self) -> None:
        """Clear the accumulated per-rule influence counters."""
        self._fire_counts.clear()
