"""Matching-solution substrate: the systems Frost benchmarks.

Frost itself "does not execute the matching solutions [...] but takes
their results as input"; to reproduce the paper's evaluations offline
we implement the full six-step pipeline (§1.2) these solutions follow —
similarity measures, blocking, decision models (rule-based, threshold,
learned), duplicate clustering, and record fusion.
"""

from repro.matching.attribute_matching import (
    AttributeComparator,
    SimilarityVector,
    compare_pairs,
)
from repro.matching.blocking import (
    first_token_key,
    full_pairs,
    prefix_key,
    sorted_neighborhood,
    soundex_key,
    standard_blocking,
    token_blocking,
)
from repro.matching.clustering_algorithms import CLUSTERING_ALGORITHMS
from repro.matching.fusion import FUSION_STRATEGIES, fuse_cluster, fuse_dataset
from repro.matching.lsh import LshBlocking, LshConfig, MinHasher, lsh_blocking
from repro.matching.ml import LogisticRegressionModel, NaiveBayesModel
from repro.matching.parallel import (
    ParallelConfig,
    compare_pairs_sharded,
    partition_pairs,
)
from repro.matching.pipeline import (
    MatchingPipeline,
    PipelineRun,
    lowercase_values,
    normalize_whitespace,
)
from repro.matching.rules import (
    Rule,
    RuleSet,
    attribute_threshold_rule,
    weighted_average_rule,
)
from repro.matching.similarity import SIMILARITY_FUNCTIONS
from repro.matching.threshold import WeightedAverageModel, best_threshold

__all__ = [
    "AttributeComparator",
    "CLUSTERING_ALGORITHMS",
    "FUSION_STRATEGIES",
    "LogisticRegressionModel",
    "LshBlocking",
    "LshConfig",
    "MatchingPipeline",
    "MinHasher",
    "NaiveBayesModel",
    "ParallelConfig",
    "PipelineRun",
    "Rule",
    "RuleSet",
    "SIMILARITY_FUNCTIONS",
    "SimilarityVector",
    "WeightedAverageModel",
    "attribute_threshold_rule",
    "best_threshold",
    "compare_pairs",
    "compare_pairs_sharded",
    "first_token_key",
    "full_pairs",
    "fuse_cluster",
    "fuse_dataset",
    "lowercase_values",
    "lsh_blocking",
    "normalize_whitespace",
    "partition_pairs",
    "prefix_key",
    "sorted_neighborhood",
    "soundex_key",
    "standard_blocking",
    "token_blocking",
    "weighted_average_rule",
]
