"""Duplicate merging / record fusion (pipeline step 6, §1.2).

"Merge the clusters of duplicates into single records" [5, 17, 32].
Fusion resolves per-attribute conflicts among a cluster's records with
pluggable strategies and produces one fused record per cluster.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from collections import Counter

from repro.core.clustering import Clustering
from repro.core.records import Dataset, Record

__all__ = [
    "longest_value",
    "most_frequent_value",
    "first_non_null",
    "concat_distinct",
    "numeric_mean",
    "fuse_cluster",
    "fuse_dataset",
    "FUSION_STRATEGIES",
]

FusionStrategy = Callable[[Sequence[str]], str]


def longest_value(values: Sequence[str]) -> str:
    """The longest value — a proxy for the most complete representation."""
    return max(values, key=lambda value: (len(value), value))


def most_frequent_value(values: Sequence[str]) -> str:
    """The most frequent value; ties broken lexicographically."""
    counts = Counter(values)
    best = max(counts.values())
    return min(value for value, count in counts.items() if count == best)


def first_non_null(values: Sequence[str]) -> str:
    """The first value in cluster order (source-priority fusion)."""
    return values[0]


def concat_distinct(values: Sequence[str]) -> str:
    """All distinct values joined by `` | `` (keep-everything fusion)."""
    seen: dict[str, None] = {}
    for value in values:
        seen.setdefault(value)
    return " | ".join(seen)


def numeric_mean(values: Sequence[str]) -> str:
    """Mean of values parseable as numbers; falls back to most frequent."""
    numbers = []
    for value in values:
        try:
            numbers.append(float(value))
        except ValueError:
            pass
    if not numbers:
        return most_frequent_value(values)
    mean = sum(numbers) / len(numbers)
    if mean.is_integer():
        return str(int(mean))
    return f"{mean:g}"


FUSION_STRATEGIES: dict[str, FusionStrategy] = {
    "longest": longest_value,
    "most_frequent": most_frequent_value,
    "first": first_non_null,
    "concat": concat_distinct,
    "numeric_mean": numeric_mean,
}


def fuse_cluster(
    records: Sequence[Record],
    strategies: Mapping[str, FusionStrategy | str] | None = None,
    default: FusionStrategy | str = "longest",
    fused_id: str | None = None,
) -> Record:
    """Fuse a cluster of records into one record.

    ``strategies`` maps attribute names to per-attribute strategies;
    everything else uses ``default``.  Nulls are dropped before fusing;
    an attribute null in every record stays null.
    """
    if not records:
        raise ValueError("cannot fuse an empty cluster")

    def resolve(strategy: FusionStrategy | str) -> FusionStrategy:
        """The fused value for one attribute of a cluster."""
        if isinstance(strategy, str):
            try:
                return FUSION_STRATEGIES[strategy]
            except KeyError:
                known = ", ".join(sorted(FUSION_STRATEGIES))
                raise KeyError(
                    f"unknown fusion strategy {strategy!r}; known: {known}"
                ) from None
        return strategy

    default_fn = resolve(default)
    strategy_fns = {
        attribute: resolve(strategy)
        for attribute, strategy in (strategies or {}).items()
    }
    attributes: dict[str, None] = {}
    for record in records:
        for attribute in record.values:
            attributes.setdefault(attribute)
    fused: dict[str, str | None] = {}
    for attribute in attributes:
        present = [
            record.value(attribute)
            for record in records
            if record.value(attribute) is not None
        ]
        if not present:
            fused[attribute] = None
        else:
            strategy = strategy_fns.get(attribute, default_fn)
            fused[attribute] = strategy(present)
    identifier = fused_id or min(record.record_id for record in records)
    return Record(record_id=identifier, values=fused)


def fuse_dataset(
    dataset: Dataset,
    clustering: Clustering,
    strategies: Mapping[str, FusionStrategy | str] | None = None,
    default: FusionStrategy | str = "longest",
) -> Dataset:
    """The deduplicated dataset: one fused record per cluster.

    Records outside every cluster pass through unchanged.
    """
    fused_records: list[Record] = []
    clustered: set[str] = set()
    for cluster in clustering.clusters:
        members = [dataset[record_id] for record_id in cluster if record_id in dataset]
        if not members:
            continue
        clustered.update(record.record_id for record in members)
        fused_records.append(
            fuse_cluster(members, strategies=strategies, default=default)
        )
    for record in dataset:
        if record.record_id not in clustered:
            fused_records.append(record)
    fused_records.sort(key=lambda record: record.record_id)
    return Dataset(
        fused_records, name=f"{dataset.name}-fused", attributes=dataset.attributes
    )
