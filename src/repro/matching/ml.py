"""Learned decision models (pipeline step 4, §1.2).

"Supervised machine learning models [...] are trained by domain experts
who label example pairs from the dataset as duplicate or non-duplicate"
(Section 1).  We implement logistic regression (batch gradient descent
with L2 regularization) and Gaussian naive Bayes over similarity
vectors, from scratch on numpy — no external ML dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.matching.attribute_matching import SimilarityVector

__all__ = ["LogisticRegressionModel", "NaiveBayesModel"]


class LogisticRegressionModel:
    """L2-regularized logistic regression over similarity vectors.

    Missing comparisons are imputed with ``missing_value`` and flagged
    by companion indicator features, letting the model learn sparsity
    behaviour explicitly (relevant for the nullRatio analyses, §4.5.2).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        learning_rate: float = 0.5,
        iterations: int = 400,
        l2: float = 1e-3,
        missing_value: float = 0.0,
        missing_indicators: bool = True,
        seed: int = 0,
    ) -> None:
        if not attributes:
            raise ValueError("model needs at least one attribute")
        self.attributes = list(attributes)
        self.learning_rate = learning_rate
        self.iterations = iterations
        self.l2 = l2
        self.missing_value = missing_value
        # indicator features let the model exploit missingness patterns,
        # but bind it to the training data's sparsity profile: applied
        # to a dataset with a different null density, the shifted
        # indicator activations bias every score (cf. the material
        # mismatch of §4.5.2).  Disable for cross-dataset transfer.
        self.missing_indicators = missing_indicators
        self._rng = np.random.default_rng(seed)
        self._weights: np.ndarray | None = None

    # -- features -----------------------------------------------------------------

    def _features(self, vectors: Sequence[SimilarityVector]) -> np.ndarray:
        """Design matrix: similarities, missing indicators, and a bias."""
        rows = []
        for vector in vectors:
            similarities = vector.dense(self.attributes, missing=self.missing_value)
            if not self.missing_indicators:
                rows.append([*similarities, 1.0])
                continue
            indicators = [
                1.0 if vector.values.get(attribute) is None else 0.0
                for attribute in self.attributes
            ]
            rows.append([*similarities, *indicators, 1.0])
        return np.asarray(rows, dtype=float)

    # -- training -----------------------------------------------------------------

    def fit(
        self, vectors: Sequence[SimilarityVector], labels: Sequence[bool]
    ) -> "LogisticRegressionModel":
        """Train on labeled similarity vectors (True == duplicate)."""
        if len(vectors) != len(labels):
            raise ValueError(
                f"got {len(vectors)} vectors but {len(labels)} labels"
            )
        if not vectors:
            raise ValueError("training set is empty")
        features = self._features(vectors)
        targets = np.asarray(labels, dtype=float)
        weights = self._rng.normal(0.0, 0.01, size=features.shape[1])
        n = len(targets)
        # class weighting counteracts the heavy match/non-match imbalance
        positives = targets.sum()
        if positives in (0, n):
            sample_weights = np.ones(n)
        else:
            weight_pos = n / (2.0 * positives)
            weight_neg = n / (2.0 * (n - positives))
            sample_weights = np.where(targets == 1.0, weight_pos, weight_neg)
        for _ in range(self.iterations):
            logits = features @ weights
            predictions = 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))
            errors = (predictions - targets) * sample_weights
            gradient = features.T @ errors / n + self.l2 * weights
            weights -= self.learning_rate * gradient
        self._weights = weights
        return self

    # -- inference ----------------------------------------------------------------

    def score(self, vector: SimilarityVector) -> float:
        """Match probability for one candidate pair."""
        return float(self.score_many([vector])[0])

    def score_many(self, vectors: Sequence[SimilarityVector]) -> np.ndarray:
        """Match probabilities for many candidate pairs (vectorized)."""
        if self._weights is None:
            raise RuntimeError("model is not fitted; call fit() first")
        features = self._features(vectors)
        logits = features @ self._weights
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))

    def attribute_weights(self) -> dict[str, float]:
        """Learned per-attribute weights (for semantic-mismatch analysis,
        §4.5.2: a solution weighing semantically irrelevant attributes)."""
        if self._weights is None:
            raise RuntimeError("model is not fitted; call fit() first")
        return dict(zip(self.attributes, self._weights[: len(self.attributes)]))


class NaiveBayesModel:
    """Gaussian naive Bayes over similarity vectors.

    A second learned model family so that benchmark studies can compare
    genuinely different decision models (cf. §5.4: "three of the
    matching solutions used a machine learning approach").
    """

    def __init__(self, attributes: Sequence[str], missing_value: float = 0.0) -> None:
        if not attributes:
            raise ValueError("model needs at least one attribute")
        self.attributes = list(attributes)
        self.missing_value = missing_value
        self._means: dict[bool, np.ndarray] = {}
        self._variances: dict[bool, np.ndarray] = {}
        self._priors: dict[bool, float] = {}

    def _matrix(self, vectors: Sequence[SimilarityVector]) -> np.ndarray:
        return np.asarray(
            [v.dense(self.attributes, missing=self.missing_value) for v in vectors],
            dtype=float,
        )

    def fit(
        self, vectors: Sequence[SimilarityVector], labels: Sequence[bool]
    ) -> "NaiveBayesModel":
        """Train on labeled similarity vectors (True == duplicate)."""
        if len(vectors) != len(labels):
            raise ValueError(
                f"got {len(vectors)} vectors but {len(labels)} labels"
            )
        matrix = self._matrix(vectors)
        flags = np.asarray(labels, dtype=bool)
        for label in (False, True):
            rows = matrix[flags == label]
            if len(rows) == 0:
                # unseen class: uninformative prior centered mid-range
                self._means[label] = np.full(matrix.shape[1], 0.5)
                self._variances[label] = np.full(matrix.shape[1], 0.25)
                self._priors[label] = 1e-9
            else:
                self._means[label] = rows.mean(axis=0)
                self._variances[label] = rows.var(axis=0) + 1e-4
                self._priors[label] = len(rows) / len(matrix)
        return self

    def score(self, vector: SimilarityVector) -> float:
        """Match probability for one candidate pair."""
        return float(self.score_many([vector])[0])

    def score_many(self, vectors: Sequence[SimilarityVector]) -> np.ndarray:
        """Match probabilities for many candidate pairs."""
        if not self._priors:
            raise RuntimeError("model is not fitted; call fit() first")
        matrix = self._matrix(vectors)
        log_odds = np.log(self._priors[True]) - np.log(self._priors[False])
        scores = np.full(len(matrix), log_odds)
        for label, sign in ((True, 1.0), (False, -1.0)):
            means = self._means[label]
            variances = self._variances[label]
            log_density = (
                -0.5 * np.log(2 * np.pi * variances)
                - (matrix - means) ** 2 / (2 * variances)
            ).sum(axis=1)
            scores += sign * log_density
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))
