"""Threshold-based decision models (pipeline step 4, §1.2).

The simplest decision model family: a weighted linear combination of
attribute similarities compared against a threshold.  Draisbach and
Naumann showed that the optimal threshold depends on dataset size [22],
which Frost's metric/metric diagrams help locate (§4.5.1).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.matching.attribute_matching import SimilarityVector

__all__ = ["WeightedAverageModel", "best_threshold"]


class WeightedAverageModel:
    """Weighted mean of attribute similarities as the match score.

    Missing comparisons are excluded from the weighted mean (their
    weight is redistributed), or — with ``missing_penalty`` — counted
    as that fixed similarity, letting studies control how a solution
    reacts to sparsity (cf. Appendix C).
    """

    def __init__(
        self,
        weights: Mapping[str, float],
        missing_penalty: float | None = None,
    ) -> None:
        if not weights:
            raise ValueError("model needs at least one attribute weight")
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("attribute weights must be non-negative")
        if sum(weights.values()) == 0:
            raise ValueError("at least one attribute weight must be positive")
        self.weights = dict(weights)
        self.missing_penalty = missing_penalty

    def __call__(self, vector: SimilarityVector) -> float:
        return self.score(vector)

    def score(self, vector: SimilarityVector) -> float:
        """The weighted mean of the vector's attribute similarities."""
        total = 0.0
        total_weight = 0.0
        for attribute, weight in self.weights.items():
            value = vector.values.get(attribute)
            if value is None:
                if self.missing_penalty is None:
                    continue
                value = self.missing_penalty
            total += weight * value
            total_weight += weight
        if total_weight == 0.0:
            return 0.0
        return total / total_weight


def best_threshold(
    points,
    metric,
) -> tuple[float, float]:
    """The sampled threshold maximizing ``metric`` on a diagram.

    Parameters
    ----------
    points:
        ``DiagramPoint`` sequence from :mod:`repro.core.diagrams`.
    metric:
        Pair metric over confusion matrices, e.g.
        :func:`repro.metrics.pairwise.f1_score`.

    Returns
    -------
    (threshold, metric value) of the best sampled data point.  Ties go
    to the higher (more conservative) threshold.
    """
    if not points:
        raise ValueError("no diagram points given")
    best = max(points, key=lambda point: (metric(point.matrix), point.threshold))
    return best.threshold, metric(best.matrix)
