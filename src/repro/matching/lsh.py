"""Approximate candidate generation with MinHash signatures and banded LSH.

The exact blockers in :mod:`repro.matching.blocking` are key-driven:
records become candidates only when a derived key matches *exactly*.
That degenerates on dirty data (a typo in the key silently severs the
pair) and the only exact fallback, :func:`~repro.matching.blocking.full_pairs`,
is quadratic.  MinHash-LSH prunes the comparison space *probabilistically*:
records whose token sets have Jaccard similarity ``s`` share at least one
LSH band with probability ``1 - (1 - s^rows)^bands`` — an S-curve whose
inflection point ``(1/bands)^(1/rows)`` is tunable per workload, so high
recall survives typos that break every exact key.

Determinism is load-bearing (stored experiments and the engine's result
cache are content-addressed): token hashes come from BLAKE2b — not the
builtin ``hash``, which ``PYTHONHASHSEED`` randomizes per process — and
the permutation parameters are drawn from a seeded :class:`random.Random`,
so signatures are byte-identical across processes, platforms, and hash
seeds.

The hot path is batched at the vocabulary level: a
:class:`MinHasher` computes the ``num_perm`` permuted hash values of each
*distinct* token once and reduces record signatures with an elementwise
``min`` over the cached token rows, instead of re-hashing every token of
every record ``num_perm`` times.

Banding is **append-only** — a new record can only join buckets, never
reshuffle them — which is exactly the property that lets
:class:`~repro.streaming.delta_blocking.IncrementalLshIndex` emit exact
delta candidate sets for streaming sessions.
"""

from __future__ import annotations

import hashlib
import struct
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from functools import lru_cache
from itertools import combinations
from random import Random

from repro.core.pairs import Pair, make_pair
from repro.core.records import Dataset, Record
from repro.matching.blocking import note_purged_blocks
from repro.matching.similarity import tokenize

__all__ = [
    "LshConfig",
    "MinHasher",
    "LshBlocking",
    "lsh_blocking",
    "record_tokens",
    "token_hash",
]

# A Mersenne prime comfortably above 2^64 token hashes keeps the
# universal hash family ((a·x + b) mod p) collision-sparse and the
# arithmetic exact in Python ints.
_MERSENNE_PRIME = (1 << 61) - 1

DEFAULT_NUM_PERM = 128
DEFAULT_BANDS = 32


@lru_cache(maxsize=262144)
def token_hash(token: str) -> int:
    """Stable 64-bit hash of one token (BLAKE2b, not ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def record_tokens(
    record: Record,
    attributes: Sequence[str] | None = None,
    min_token_length: int = 2,
    shingle_size: int | None = 3,
) -> frozenset[str]:
    """The token set a record is MinHashed over.

    Word tokens follow :func:`~repro.streaming.delta_blocking.token_keys`:
    every token of at least ``min_token_length`` characters across the
    given attributes (default: all).  With ``shingle_size`` set (the
    default), each token is expanded into boundary-padded character
    n-grams (``"smith"`` → ``^sm smi mit ith th$``) — a typo then damages
    only the shingles it touches instead of severing the whole token,
    which is what keeps pairs completeness high on dirty data.  An empty
    set means the record never becomes a candidate — the LSH analogue of
    a ``None`` blocking key.
    """
    names = attributes if attributes is not None else record.values.keys()
    seen: set[str] = set()
    for attribute in names:
        value = record.value(attribute)
        if not value:
            continue
        for token in tokenize(value):
            if len(token) < min_token_length:
                continue
            if shingle_size is None:
                seen.add(token)
                continue
            padded = f"^{token}$"
            if len(padded) <= shingle_size:
                seen.add(padded)
            else:
                seen.update(
                    padded[i:i + shingle_size]
                    for i in range(len(padded) - shingle_size + 1)
                )
    return frozenset(seen)


@dataclass(frozen=True)
class LshConfig:
    """Tunable MinHash-LSH parameters (JSON round-trip like ``ParallelConfig``).

    Attributes
    ----------
    num_perm:
        Signature length (number of hash permutations).  Longer
        signatures estimate Jaccard similarity more precisely.
    bands / rows:
        The banding scheme: ``bands × rows`` must equal ``num_perm``.
        ``rows`` may be omitted and is derived as ``num_perm // bands``.
        Records collide when *any* band (a run of ``rows`` consecutive
        signature slots) matches exactly, so the scheme approximates a
        Jaccard threshold of ``(1/bands)^(1/rows)`` — fewer rows per
        band means higher recall and more candidates.
    seed:
        Seeds the permutation parameters; two indexes agree on
        signatures iff they share ``num_perm`` and ``seed``.
    attributes / min_token_length / shingle_size:
        Which token sets to hash (see :func:`record_tokens`).
        ``shingle_size`` expands word tokens into boundary-padded
        character n-grams for typo robustness; ``null`` hashes the raw
        word tokens instead.
    max_block_size:
        Optional bucket purge: batch blocking drops buckets larger than
        this (the block-purging heuristic); the incremental index stops
        *emitting* once a bucket fills up.  The batch/delta equivalence
        is exact only while unset — the same caveat as token blocking's
        retroactive purge (:mod:`repro.streaming.config`).
    """

    num_perm: int = DEFAULT_NUM_PERM
    bands: int = DEFAULT_BANDS
    rows: int | None = None
    seed: int = 1
    attributes: tuple[str, ...] | None = None
    min_token_length: int = 2
    shingle_size: int | None = 3
    max_block_size: int | None = None

    def __post_init__(self) -> None:
        # ValueError (not TypeError) on any malformed value: configs
        # arrive from JSON request bodies (POST /streams), and the API
        # layer maps ValueError to a 400 while anything else is a 500.
        for field_name in ("num_perm", "bands", "rows", "seed",
                           "min_token_length", "shingle_size",
                           "max_block_size"):
            value = getattr(self, field_name)
            optional = field_name in ("rows", "shingle_size", "max_block_size")
            if value is None and optional:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValueError(
                    f"{field_name} must be an integer, got {value!r}"
                )
        if self.num_perm < 2:
            raise ValueError(f"num_perm must be at least 2, got {self.num_perm}")
        if self.bands < 1:
            raise ValueError(f"bands must be positive, got {self.bands}")
        if self.num_perm % self.bands != 0:
            raise ValueError(
                f"bands must divide num_perm evenly, got "
                f"{self.bands} bands over {self.num_perm} permutations"
            )
        derived = self.num_perm // self.bands
        if self.rows is None:
            object.__setattr__(self, "rows", derived)
        elif self.rows != derived:
            raise ValueError(
                f"rows must equal num_perm / bands = {derived}, got {self.rows}"
            )
        if self.min_token_length < 1:
            raise ValueError(
                f"min_token_length must be positive, got {self.min_token_length}"
            )
        if self.shingle_size is not None and self.shingle_size < 2:
            raise ValueError(
                f"shingle_size must be at least 2, got {self.shingle_size}"
            )
        if self.max_block_size is not None and self.max_block_size < 1:
            raise ValueError(
                f"max_block_size must be positive, got {self.max_block_size}"
            )
        if self.attributes is not None:
            names = tuple(self.attributes)
            if not names or not all(
                isinstance(name, str) and name for name in names
            ):
                raise ValueError(
                    "attributes must be a non-empty list of attribute names"
                )
            object.__setattr__(self, "attributes", names)

    def threshold_estimate(self) -> float:
        """The Jaccard similarity where band collision hits ~50%."""
        return (1.0 / self.bands) ** (1.0 / self.rows)

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable form (stream configs, status payloads)."""
        return {
            "num_perm": self.num_perm,
            "bands": self.bands,
            "rows": self.rows,
            "seed": self.seed,
            "attributes": (
                list(self.attributes) if self.attributes is not None else None
            ),
            "min_token_length": self.min_token_length,
            "shingle_size": self.shingle_size,
            "max_block_size": self.max_block_size,
        }

    @classmethod
    def from_dict(cls, document: object) -> "LshConfig":
        """Parse the :meth:`as_dict` form (missing keys keep defaults)."""
        if document is None:
            return cls()
        if not isinstance(document, dict):
            raise ValueError("lsh config must be a JSON object")
        known = {
            "num_perm", "bands", "rows", "seed", "attributes",
            "min_token_length", "shingle_size", "max_block_size",
        }
        unknown = set(document) - known
        if unknown:
            raise ValueError(
                f"unknown lsh config keys: {', '.join(sorted(unknown))}"
            )
        attributes = document.get("attributes")
        if attributes is not None:
            if not isinstance(attributes, (list, tuple)):
                raise ValueError("attributes must be a list of attribute names")
            attributes = tuple(attributes)
        return cls(
            num_perm=document.get("num_perm", DEFAULT_NUM_PERM),
            bands=document.get("bands", DEFAULT_BANDS),
            rows=document.get("rows"),
            seed=document.get("seed", 1),
            attributes=attributes,
            min_token_length=document.get("min_token_length", 2),
            shingle_size=document.get("shingle_size", 3),
            max_block_size=document.get("max_block_size"),
        )


class MinHasher:
    """Seeded MinHash signatures and banded bucket keys.

    One instance caches the permuted hash values of every distinct token
    it has seen (vocabulary-sized, like the tokenizer memos in
    :mod:`repro.matching.similarity`), so a corpus is permuted once per
    token rather than once per record occurrence.
    """

    def __init__(self, config: LshConfig | None = None) -> None:
        self.config = config or LshConfig()
        rng = Random(self.config.seed)
        self._coefficients = [
            (rng.randrange(1, _MERSENNE_PRIME), rng.randrange(0, _MERSENNE_PRIME))
            for _ in range(self.config.num_perm)
        ]
        self._permuted: dict[str, tuple[int, ...]] = {}
        self._row_packer = struct.Struct(f"<{self.config.rows}Q")

    def _token_row(self, token: str) -> tuple[int, ...]:
        row = self._permuted.get(token)
        if row is None:
            base = token_hash(token)
            row = tuple(
                (a * base + b) % _MERSENNE_PRIME
                for a, b in self._coefficients
            )
            self._permuted[token] = row
        return row

    def signature(self, tokens: Iterable[str]) -> tuple[int, ...] | None:
        """MinHash signature of a token set; ``None`` for the empty set."""
        rows = [self._token_row(token) for token in set(tokens)]
        if not rows:
            return None
        if len(rows) == 1:
            return rows[0]
        return tuple(map(min, zip(*rows)))

    def band_keys(self, tokens: Iterable[str]) -> list[str]:
        """The banded bucket keys of one token set (empty set: no keys).

        Each key digests one run of ``rows`` signature slots together
        with its band index, so buckets never collide across bands.
        """
        signature = self.signature(tokens)
        if signature is None:
            return []
        return self.band_keys_from_signature(signature)

    def band_keys_from_signature(
        self, signature: Sequence[int]
    ) -> list[str]:
        """The banded bucket keys of an already-computed signature.

        Split out of :meth:`band_keys` so callers that also persist the
        signature (the disk-backed blocking store spills the packed
        blob next to the bucket rows) hash each record exactly once.
        """
        rows = self.config.rows
        keys = []
        for band in range(self.config.bands):
            packed = self._row_packer.pack(
                *(value & 0xFFFFFFFFFFFFFFFF
                  for value in signature[band * rows:(band + 1) * rows])
            )
            digest = hashlib.blake2b(packed, digest_size=8).hexdigest()
            keys.append(f"{band}:{digest}")
        return keys

    def keys_for(self, record: Record) -> list[str]:
        """Bucket keys of one record — a drop-in ``KeyEmitter`` for the
        incremental blocking machinery."""
        return self.band_keys(
            record_tokens(
                record,
                attributes=self.config.attributes,
                min_token_length=self.config.min_token_length,
                shingle_size=self.config.shingle_size,
            )
        )


def lsh_blocking(dataset: Dataset, config: LshConfig | None = None) -> set[Pair]:
    """Batch MinHash-LSH blocking: records sharing any band bucket.

    Buckets are visited in sorted order, so any order-sensitive
    instrumentation of the emission is reproducible; the returned
    candidate *set* is content-identical regardless.  Buckets larger
    than ``config.max_block_size`` are dropped entirely (batch purge).
    """
    config = config or LshConfig()
    hasher = MinHasher(config)
    buckets: dict[str, list[str]] = {}
    for record in dataset:
        for key in hasher.keys_for(record):
            buckets.setdefault(key, []).append(record.record_id)
    candidates: set[Pair] = set()
    purged_buckets = purged_records = 0
    for key in sorted(buckets):
        members = buckets[key]
        if (
            config.max_block_size is not None
            and len(members) > config.max_block_size
        ):
            purged_buckets += 1
            purged_records += len(members)
            continue
        candidates.update(make_pair(a, b) for a, b in combinations(members, 2))
    note_purged_blocks("lsh_blocking", purged_buckets, purged_records)
    return candidates


@dataclass(frozen=True)
class LshBlocking:
    """MinHash-LSH as a pipeline candidate generator.

    A named class (not a closure) keeps pipelines content-
    fingerprintable: two pipelines that differ only in their LSH
    parameters produce different :meth:`config_fingerprint` tokens, so
    the engine's result cache never serves one config's candidates to
    the other.
    """

    config: LshConfig = field(default_factory=LshConfig)

    def __call__(self, dataset: Dataset) -> set[Pair]:
        return lsh_blocking(dataset, self.config)

    def config_fingerprint(self) -> dict[str, object]:
        """Content token for the engine's cache keys."""
        return {"lsh_blocking": self.config.as_dict()}

    def disk_blocking_plan(self):
        """The SQL-pushdown execution plan of this blocker.

        Lets ``blocking_storage="disk"`` pipelines spill signatures and
        band-bucket rows into SQLite and self-join there instead of
        building Python bucket lists (see :mod:`repro.blocking_disk`).
        The candidate set is identical either way, so this — like the
        plan hook itself — never affects :meth:`config_fingerprint`.
        """
        from repro.blocking_disk.blockers import lsh_plan

        return lsh_plan(self.config)
