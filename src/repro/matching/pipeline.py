"""The end-to-end data matching pipeline (§1.2).

"A data matching pipeline typically consists of the following steps:
(1) data preparation, (2) candidate generation, (3) similarity-based
attribute value matching, (4) decision model / classification,
(5) duplicate clustering, (6) duplicate merging / record fusion."

:class:`MatchingPipeline` wires the substrate modules together and —
central to Frost — exposes *per-stage outputs* so that quality can be
measured between the steps ("Measuring the performance between these
steps [...] helps to find bottlenecks of matching performance").
"""

from __future__ import annotations

import copy
import logging
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.experiment import Experiment, Match
from repro.core.pairs import Pair, ScoredPair
from repro.core.records import Dataset, Record
from repro.matching.attribute_matching import AttributeComparator, SimilarityVector
from repro.matching.clustering_algorithms import CLUSTERING_ALGORITHMS
from repro.matching.fusion import fuse_dataset
from repro.matching.parallel import ParallelConfig, compare_pairs_sharded
from repro.telemetry import metrics as _telemetry_metrics
from repro.telemetry import spans as _tracing

_LOGGER = logging.getLogger(__name__)

_RECORDS_PREPARED = _telemetry_metrics.get_metrics().counter(
    "frost_pipeline_records_prepared_total",
    "Records passed through the data-preparation stage",
)
_CANDIDATES_GENERATED = _telemetry_metrics.get_metrics().counter(
    "frost_blocking_candidates_total",
    "Candidate pairs produced by blocking / candidate generation",
)
_MATCHES_ACCEPTED = _telemetry_metrics.get_metrics().counter(
    "frost_clustering_matches_total",
    "Matches emitted by the clustering stage (direct + transitive)",
)
_DISK_FALLBACKS = _telemetry_metrics.get_metrics().counter(
    "frost_blocking_disk_fallback_total",
    "blocking_storage='disk' requests served by the in-memory path "
    "(no SQL pushdown plan for the configured generator)",
)

_BLOCKING_STORAGES = ("memory", "disk")


def _coerce_blocking_storage(blocking_storage: str) -> str:
    storage = str(blocking_storage)
    if storage not in _BLOCKING_STORAGES:
        raise ValueError(
            f"blocking_storage must be one of {_BLOCKING_STORAGES}, "
            f"got {blocking_storage!r}"
        )
    return storage

__all__ = ["PipelineRun", "MatchingPipeline", "normalize_whitespace", "lowercase_values"]

Preparer = Callable[[Record], Record]
CandidateGenerator = Callable[[Dataset], set[Pair]]
DecisionModel = Callable[[SimilarityVector], float]


def normalize_whitespace(record: Record) -> Record:
    """Data-preparation step: collapse runs of whitespace, strip ends."""
    cleaned = {
        attribute: (" ".join(value.split()) if value is not None else None)
        for attribute, value in record.values.items()
    }
    return Record(record_id=record.record_id, values=cleaned)


def lowercase_values(record: Record) -> Record:
    """Data-preparation step: lowercase all values (case standardization)."""
    lowered = {
        attribute: (value.lower() if value is not None else None)
        for attribute, value in record.values.items()
    }
    return Record(record_id=record.record_id, values=lowered)


def _coerce_parallelism(
    parallelism: ParallelConfig | Mapping[str, object] | int | None,
) -> ParallelConfig:
    """Normalize the ``parallelism`` knob's accepted forms."""
    if parallelism is None:
        return ParallelConfig()
    if isinstance(parallelism, ParallelConfig):
        return parallelism
    if isinstance(parallelism, int):
        return ParallelConfig(workers=parallelism)
    return ParallelConfig.from_dict(dict(parallelism))


@dataclass
class PipelineRun:
    """All intermediate and final outputs of one pipeline execution.

    Pair-based metrics can be computed on ``candidates`` (candidate
    generation quality), ``scored_pairs`` at any threshold (decision
    model quality), and the final ``experiment`` (overall quality) —
    exactly the inter-stage measurements Frost advocates (§1.2).
    """

    dataset: Dataset
    prepared: Dataset
    candidates: set[Pair]
    vectors: Sequence[SimilarityVector]
    scored_pairs: list[ScoredPair]
    experiment: Experiment
    fused: Dataset | None = None
    stage_seconds: dict[str, float] = field(default_factory=dict)


class MatchingPipeline:
    """A configurable six-step matching solution.

    Parameters
    ----------
    candidate_generator:
        Step 2 — maps the prepared dataset to candidate pairs.
    comparator:
        Step 3 — per-attribute similarity configuration.
    decision_model:
        Step 4 — maps a similarity vector to a score in ``[0, 1]``.
    threshold:
        "A pair is matched if its score is higher than a specific
        threshold" (§1.2); we use ``score >= threshold``.
    preparers:
        Step 1 — record-level cleaning functions applied in order.
    clustering:
        Step 5 — name from ``CLUSTERING_ALGORITHMS`` or a callable.
    fuse:
        Step 6 — whether to also produce the fused (deduplicated)
        dataset.
    name / solution:
        Labels attached to the resulting experiment.
    parallelism:
        Sharded execution of the comparison stage: a
        :class:`~repro.matching.parallel.ParallelConfig`, a plain
        ``workers`` integer, or a ``{"workers": ..., "shards": ...}``
        mapping (the JSON-config form).  The default keeps the serial
        path.  Parallel output is byte-identical to serial, so this
        knob is deliberately absent from :meth:`config_fingerprint` —
        the engine's result cache must not distinguish runs that
        cannot differ.
    columnar:
        Route the comparison stage through the batch kernels of
        :mod:`repro.columnar` when every configured measure has one
        (default on).  Kernel scores are byte-identical to the scalar
        measures, so — exactly like ``parallelism`` — this is an
        execution knob, absent from :meth:`config_fingerprint`.
    blocking_storage:
        ``"memory"`` (default) runs the candidate generator as-is;
        ``"disk"`` pushes blocking into SQLite via
        :mod:`repro.blocking_disk` — keys and signatures spill to
        indexed tables and the pair join runs as a SQL self-join
        streamed in bounded chunks, so blocking memory stays O(chunk)
        instead of O(corpus).  Candidate sets are identical either
        way (generators without a pushdown plan fall back in-memory
        with a warning), so this too is an execution knob, absent
        from :meth:`config_fingerprint`.
    """

    def __init__(
        self,
        candidate_generator: CandidateGenerator,
        comparator: AttributeComparator,
        decision_model: DecisionModel,
        threshold: float = 0.5,
        preparers: Sequence[Preparer] = (normalize_whitespace,),
        clustering: str | Callable[[Sequence[ScoredPair]], object] = "connected_components",
        fuse: bool = False,
        fusion_strategies: Mapping[str, object] | None = None,
        name: str = "pipeline-run",
        solution: str = "pipeline",
        parallelism: ParallelConfig | Mapping[str, object] | int | None = None,
        columnar: bool = True,
        blocking_storage: str = "memory",
    ) -> None:
        self.candidate_generator = candidate_generator
        self.comparator = comparator
        self.decision_model = decision_model
        self.threshold = threshold
        self.preparers = list(preparers)
        if isinstance(clustering, str):
            try:
                clustering = CLUSTERING_ALGORITHMS[clustering]
            except KeyError:
                known = ", ".join(sorted(CLUSTERING_ALGORITHMS))
                raise KeyError(
                    f"unknown clustering algorithm {clustering!r}; known: {known}"
                ) from None
        self.clustering = clustering
        self.fuse = fuse
        self.fusion_strategies = fusion_strategies
        self.name = name
        self.solution = solution
        self.parallelism = _coerce_parallelism(parallelism)
        self.columnar = bool(columnar)
        self.blocking_storage = _coerce_blocking_storage(blocking_storage)

    # -- stages (each one is a node of the job graph) ---------------------------

    def prepare(self, dataset: Dataset) -> Dataset:
        """Step 1 — apply the record-level preparers in order.

        When the columnar path is on and every configured measure has a
        batch kernel, the prepared dataset's columnar layout (interned
        columns plus the kernels' derived arrays) is built here too —
        column stores pay layout cost at load time, so the comparison
        stage is pure scoring.
        """
        with _tracing.span("pipeline.prepare", records=len(dataset)):
            prepared_records = []
            for record in dataset:
                for preparer in self.preparers:
                    record = preparer(record)
                prepared_records.append(record)
            _RECORDS_PREPARED.inc(len(prepared_records))
            prepared = Dataset(
                prepared_records, name=f"{dataset.name}-prepared",
                attributes=dataset.attributes,
            )
            if self.columnar:
                from repro.columnar import plan_for

                plan = plan_for(self.comparator)
                if plan is not None:
                    plan.warm(prepared.columnar_store())
            return prepared

    def generate_candidates(self, prepared: Dataset) -> set[Pair]:
        """Step 2 — candidate pairs of the prepared dataset.

        With ``blocking_storage="disk"`` the generator's SQL-pushdown
        plan (see :func:`repro.blocking_disk.plan_for_generator`) runs
        inside a scratch SQLite database instead; generators without a
        plan fall back to the in-memory call — same candidates, so the
        fallback is an observability event (warning + counter), not an
        error.
        """
        with _tracing.span("pipeline.candidates", records=len(prepared)) as span:
            candidates: set[Pair] | None = None
            if self.blocking_storage == "disk":
                from repro.blocking_disk import disk_candidates

                candidates = disk_candidates(self.candidate_generator, prepared)
                if candidates is None:
                    _DISK_FALLBACKS.inc()
                    _LOGGER.warning(
                        "blocking_storage='disk' has no SQL pushdown plan "
                        "for %r; falling back to the in-memory path "
                        "(output is identical)",
                        self.candidate_generator,
                    )
            if candidates is None:
                candidates = self.candidate_generator(prepared)
            span.annotate(pairs=len(candidates))
            _CANDIDATES_GENERATED.inc(len(candidates))
            return candidates

    def compare_candidates(
        self, prepared: Dataset, candidates: set[Pair]
    ) -> list[SimilarityVector]:
        """Step 3 — similarity vectors of the candidate pairs.

        Candidates are visited in sorted order, so vector/score lists —
        and everything derived from them (stored experiments, cache
        digests) — are byte-identical across runs and hash seeds.
        ``prepared`` only needs item access by record id, which lets
        the streaming subsystem reuse this stage over its live record
        registry without materializing a :class:`Dataset`.

        With :attr:`parallelism` configured, large candidate sets are
        partitioned into deterministic shards and scored on a process
        pool (:mod:`repro.matching.parallel`); the merged output is
        byte-identical to the serial loop.  Pairs whose records were
        deleted between blocking and scoring are skipped with a
        warning instead of raising ``KeyError``.
        """
        with _tracing.span("pipeline.similarity") as span:
            vectors, missing = compare_pairs_sharded(
                prepared,
                candidates,
                self.comparator,
                config=self.parallelism,
                columnar=self.columnar,
                # reuse the layout prepare() built; never built here —
                # streaming registries and ad-hoc mappings pass None and
                # the comparison stage interns just the touched records
                store=getattr(prepared, "_columnar_store", None),
            )
            span.annotate(vectors=len(vectors), missing=len(missing))
        if missing:
            _LOGGER.warning(
                "skipped candidate pairs of %d record(s) deleted between "
                "blocking and scoring: %s",
                len(missing),
                ", ".join(missing[:10]) + ("…" if len(missing) > 10 else ""),
            )
        return vectors

    def score_vectors(
        self, vectors: Sequence[SimilarityVector]
    ) -> list[ScoredPair]:
        """Step 4 — decision-model scores of the similarity vectors."""
        with _tracing.span("pipeline.decision", vectors=len(vectors)):
            return [
                ScoredPair(score=self.decision_model(vector), pair=vector.pair)
                for vector in vectors
            ]

    def _cluster(self, scored_pairs: Sequence[ScoredPair]):
        """Step 5 — threshold, cluster, and assemble the experiment."""
        with _tracing.span(
            "pipeline.clustering", scored=len(scored_pairs)
        ) as span:
            accepted = [sp for sp in scored_pairs if sp.score >= self.threshold]
            clustering = self.clustering(accepted)
            accepted_set = {sp.pair for sp in accepted}
            score_of = {sp.pair: sp.score for sp in accepted}
            matches = []
            for pair in sorted(clustering.pairs()):
                matches.append(
                    Match(
                        pair=pair,
                        score=score_of.get(pair),
                        from_clustering=pair not in accepted_set,
                    )
                )
            span.annotate(accepted=len(accepted), matches=len(matches))
            _MATCHES_ACCEPTED.inc(len(matches))
            experiment = Experiment(
                matches,
                name=self.name,
                solution=self.solution,
                metadata={"threshold": self.threshold},
            )
            return clustering, experiment

    def cluster_matches(self, scored_pairs: Sequence[ScoredPair]) -> Experiment:
        """Step 5 as a job-graph stage: scored pairs to experiment."""
        _, experiment = self._cluster(scored_pairs)
        return experiment

    def run(self, dataset: Dataset) -> PipelineRun:
        """Execute all pipeline steps on ``dataset``."""
        with _tracing.span(
            "pipeline.run", pipeline=self.name, records=len(dataset)
        ):
            return self._run_traced(dataset)

    def _run_traced(self, dataset: Dataset) -> PipelineRun:
        stage_seconds: dict[str, float] = {}

        started = time.perf_counter()
        prepared = self.prepare(dataset)
        stage_seconds["preparation"] = time.perf_counter() - started

        started = time.perf_counter()
        candidates = self.generate_candidates(prepared)
        stage_seconds["candidates"] = time.perf_counter() - started

        started = time.perf_counter()
        vectors = self.compare_candidates(prepared, candidates)
        stage_seconds["similarity"] = time.perf_counter() - started

        started = time.perf_counter()
        scored_pairs = self.score_vectors(vectors)
        stage_seconds["decision"] = time.perf_counter() - started

        started = time.perf_counter()
        clustering, experiment = self._cluster(scored_pairs)
        stage_seconds["clustering"] = time.perf_counter() - started

        fused = None
        if self.fuse:
            started = time.perf_counter()
            with _tracing.span("pipeline.fusion"):
                fused = fuse_dataset(
                    dataset, clustering, strategies=self.fusion_strategies
                )
            stage_seconds["fusion"] = time.perf_counter() - started

        experiment.metadata["runtime_seconds"] = sum(stage_seconds.values())
        return PipelineRun(
            dataset=dataset,
            prepared=prepared,
            candidates=candidates,
            vectors=vectors,
            scored_pairs=scored_pairs,
            experiment=experiment,
            fused=fused,
            stage_seconds=stage_seconds,
        )

    # -- engine integration -----------------------------------------------------

    def with_parallelism(
        self,
        workers: int | None = None,
        shards: int | None = None,
        min_pairs: int | None = None,
    ) -> "MatchingPipeline":
        """A shallow copy with the given sharded-execution settings.

        Shares every stage object (comparator, decision model, …) with
        the original — only the execution strategy differs, never the
        output.  Used by the engine and CLI to apply per-invocation
        ``--workers``/``--shards`` overrides without mutating a shared
        pipeline.

        A ``shards`` override against a serial base still means "go
        parallel": the worker count defaults to all cores (``0``) so
        the requested sharding is not a silent no-op — the same rule
        :meth:`ParallelConfig.from_dict` applies to JSON configs.
        """
        base = self.parallelism
        if workers is None and shards is not None and base.resolved_workers() == 1:
            workers = 0
        clone = copy.copy(self)
        clone.parallelism = ParallelConfig(
            workers=base.workers if workers is None else workers,
            shards=base.shards if shards is None else shards,
            min_pairs=base.min_pairs if min_pairs is None else min_pairs,
        )
        return clone

    def with_columnar(self, columnar: bool) -> "MatchingPipeline":
        """A shallow copy with kernelized comparison switched on/off.

        Like :meth:`with_parallelism` this only changes *how* the
        comparison stage executes, never its output — the batch
        kernels are byte-identical to the scalar measures (and the
        stage falls back to the scalar loop whenever a configured
        measure has no kernel).
        """
        clone = copy.copy(self)
        clone.columnar = bool(columnar)
        return clone

    def with_blocking_storage(self, blocking_storage: str) -> "MatchingPipeline":
        """A shallow copy with blocking routed to memory or disk.

        Like :meth:`with_parallelism` and :meth:`with_columnar` this
        only changes *how* candidate generation executes, never its
        output — the SQL-pushdown plans produce candidate sets
        identical to the in-memory blockers (and generators without a
        plan fall back to the in-memory call).
        """
        clone = copy.copy(self)
        clone.blocking_storage = _coerce_blocking_storage(blocking_storage)
        return clone

    def with_blocker(self, candidate_generator: CandidateGenerator) -> "MatchingPipeline":
        """A shallow copy running a different candidate generator.

        Unlike :meth:`with_parallelism` this **changes the output**, so
        it also changes :meth:`config_fingerprint` (the generator is
        part of the token): the engine's result cache distinguishes a
        token-blocked run from an LSH-blocked run of the same pipeline,
        and two LSH configs from each other — provided the generator
        exposes a ``config_fingerprint`` (as
        :class:`~repro.matching.lsh.LshBlocking` does) or is a named
        module-level function.
        """
        clone = copy.copy(self)
        clone.candidate_generator = candidate_generator
        return clone

    def config_fingerprint(self) -> dict[str, object]:
        """Content token of this pipeline's configuration.

        Used by :mod:`repro.engine` to content-address pipeline job
        results.  Callables are tokenized by qualified name, so custom
        steps should be module-level functions (not lambdas closing
        over differing constants).  :attr:`parallelism`,
        :attr:`columnar`, and :attr:`blocking_storage` are deliberately
        excluded: sharded, kernelized, and disk-backed execution are
        byte-identical to the serial in-memory path, and a fingerprint
        that varied with them would split the cache across entries that
        hold the same result.
        """
        from repro.engine.jobs import content_fingerprint

        comparator_config = getattr(self.comparator, "_config", None)
        if isinstance(comparator_config, Mapping):
            comparator_token: object = {
                attribute: content_fingerprint(function)
                for attribute, function in comparator_config.items()
            }
        else:  # duck-typed comparators without AttributeComparator's layout
            comparator_token = content_fingerprint(self.comparator)
        return {
            "candidate_generator": content_fingerprint(self.candidate_generator),
            "comparator": comparator_token,
            "decision_model": content_fingerprint(self.decision_model),
            "threshold": self.threshold,
            "preparers": [content_fingerprint(p) for p in self.preparers],
            "clustering": content_fingerprint(self.clustering),
            "fuse": self.fuse,
            "name": self.name,
            "solution": self.solution,
        }

    def as_job_graph(
        self,
        dataset_name: str,
        prefix: str | None = None,
        register: bool = True,
    ) -> list["JobSpec"]:
        """This pipeline run as a five-stage dependency-ordered job graph.

        Each stage becomes one :class:`~repro.engine.jobs.JobSpec`
        whose inputs are the outputs of its dependencies, so an
        :class:`~repro.engine.runner.ExperimentEngine` can interleave
        stages of several pipelines on its worker pool and per-stage
        timings/failures stay observable per job.  The final
        ``clustering`` stage yields the experiment (and registers it on
        the platform when ``register`` is set).
        """
        from repro.engine.jobs import JobSpec

        prefix = prefix or self.name

        def stage(name: str, *depends_on: str, **extra: object) -> JobSpec:
            return JobSpec(
                kind="pipeline_stage",
                params={
                    "pipeline": self,
                    "stage": name,
                    "dataset": dataset_name,
                    **extra,
                },
                job_id=f"{prefix}:{name}",
                depends_on=tuple(f"{prefix}:{dep}" for dep in depends_on),
                cacheable=False,
            )

        return [
            stage("prepare"),
            stage("candidates", "prepare"),
            stage("similarity", "prepare", "candidates"),
            stage("decision", "similarity"),
            stage("clustering", "decision", register=register),
        ]

    def scored_experiment(self, dataset: Dataset, keep_all: bool = True) -> Experiment:
        """An experiment carrying *all* scored candidate pairs.

        With ``keep_all`` the result retains pairs below the threshold
        too — the input metric/metric diagrams need to sweep thresholds
        meaningfully (§4.5.1 notes diagrams "heavily depend on how many
        pairs have a similarity score assigned").
        """
        run = self.run(dataset)
        pairs = run.scored_pairs if keep_all else [
            sp for sp in run.scored_pairs if sp.score >= self.threshold
        ]
        return Experiment(
            (Match(pair=sp.pair, score=sp.score) for sp in pairs),
            name=f"{self.name}-scored",
            solution=self.solution,
            metadata=dict(run.experiment.metadata),
        )
