"""CSV reading and writing with configurable dialects.

Snowman's custom importers are "in the case of a CSV-based format as
simple as defining the separator, quote, escape symbols and a mapping
for rows to duplicate pairs or clusters" (§5.1) — :class:`CsvFormat`
captures exactly those knobs.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = ["CsvFormat", "read_rows", "write_rows"]


@dataclass(frozen=True)
class CsvFormat:
    """Separator / quote / escape configuration of a CSV-based format."""

    separator: str = ","
    quote: str = '"'
    escape: str | None = None
    has_header: bool = True

    def dialect(self) -> type[csv.Dialect]:
        """A csv.Dialect subclass encoding this format."""
        fmt = self

        class _Dialect(csv.Dialect):
            delimiter = fmt.separator
            quotechar = fmt.quote
            escapechar = fmt.escape
            doublequote = fmt.escape is None
            lineterminator = "\r\n"
            quoting = csv.QUOTE_MINIMAL

        return _Dialect


def read_rows(
    source: str | Path | io.TextIOBase,
    fmt: CsvFormat = CsvFormat(),
) -> Iterator[dict[str, str]]:
    """Yield rows as dictionaries.

    Files without a header get positional column names ``col0..colN``.
    Accepts a path or an open text stream (so importers work on
    in-memory data and uploads alike).
    """
    if isinstance(source, (str, Path)):
        with open(source, newline="", encoding="utf-8") as handle:
            yield from _read_stream(handle, fmt)
    else:
        yield from _read_stream(source, fmt)


def _read_stream(
    handle: io.TextIOBase, fmt: CsvFormat
) -> Iterator[dict[str, str]]:
    if fmt.has_header:
        reader = csv.DictReader(handle, dialect=fmt.dialect())
        for row in reader:
            yield {key: value for key, value in row.items() if key is not None}
    else:
        plain = csv.reader(handle, dialect=fmt.dialect())
        for cells in plain:
            yield {f"col{i}": value for i, value in enumerate(cells)}


def write_rows(
    target: str | Path | io.TextIOBase,
    rows: Iterable[dict[str, str | None]],
    columns: Sequence[str],
    fmt: CsvFormat = CsvFormat(),
) -> None:
    """Write dictionaries as CSV with the given column order."""

    def _write(handle: io.TextIOBase) -> None:
        writer = csv.writer(handle, dialect=fmt.dialect())
        if fmt.has_header:
            writer.writerow(columns)
        for row in rows:
            writer.writerow([row.get(column) or "" for column in columns])

    if isinstance(target, (str, Path)):
        with open(target, "w", newline="", encoding="utf-8") as handle:
            _write(handle)
    else:
        _write(target)
