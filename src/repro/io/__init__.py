"""Import/export of datasets, gold standards, and experiments (§5.1)."""

from repro.io.csvio import CsvFormat, read_rows, write_rows
from repro.io.exporters import export_dataset, export_experiment, export_gold_standard
from repro.io.importers import (
    ClusterFormatImporter,
    ExperimentImporter,
    ImportError_,
    PairFormatImporter,
    import_dataset,
    import_gold_standard,
)
from repro.io.jsonio import (
    flatten_json,
    import_json_dataset,
    records_from_json_objects,
)

__all__ = [
    "ClusterFormatImporter",
    "CsvFormat",
    "ExperimentImporter",
    "ImportError_",
    "PairFormatImporter",
    "export_dataset",
    "export_experiment",
    "export_gold_standard",
    "flatten_json",
    "import_dataset",
    "import_gold_standard",
    "import_json_dataset",
    "read_rows",
    "records_from_json_objects",
    "write_rows",
]
