"""Dataset, gold-standard, and experiment importers (§5.1).

Frost "supports a range of different dataset and experiment formats and
provides a convenient interface for additional custom CSV-based
formats".  Experiments come either as *pair lists* (two id columns and
an optional score) or as *cluster assignments* (id column + cluster
column); gold standards use the same two formats (§3.1.1).  Custom
importers subclass :class:`ExperimentImporter` — the built-in ones are
30–60 lines, like Snowman's.
"""

from __future__ import annotations

import io
from collections.abc import Mapping
from pathlib import Path

from repro.core.experiment import Experiment, GoldStandard, Match
from repro.core.pairs import make_pair
from repro.core.records import Dataset, Record
from repro.io.csvio import CsvFormat, read_rows

__all__ = [
    "ImportError_",
    "import_dataset",
    "PairFormatImporter",
    "ClusterFormatImporter",
    "ExperimentImporter",
    "import_gold_standard",
]

Source = str | Path | io.TextIOBase


class ImportError_(ValueError):
    """Raised on malformed import input (missing columns, bad scores)."""


def import_dataset(
    source: Source,
    id_column: str = "id",
    fmt: CsvFormat = CsvFormat(),
    name: str = "imported",
    rename: Mapping[str, str] | None = None,
) -> Dataset:
    """Import a dataset from CSV; every non-id column is an attribute.

    ``rename`` optionally maps source column names onto schema names.
    """
    records = []
    mapping = dict(rename or {})
    for row in read_rows(source, fmt):
        if id_column not in row:
            raise ImportError_(
                f"dataset rows lack the id column {id_column!r}; "
                f"columns: {sorted(row)}"
            )
        values = {
            mapping.get(column, column): (value if value != "" else None)
            for column, value in row.items()
            if column != id_column
        }
        records.append(Record(record_id=row[id_column], values=values))
    return Dataset(records, name=name)


class ExperimentImporter:
    """Base class for experiment importers.

    Subclasses implement :meth:`matches` which yields
    :class:`~repro.core.experiment.Match` objects from the source; the
    base class wraps them into an :class:`Experiment`.
    """

    def __init__(self, fmt: CsvFormat = CsvFormat()) -> None:
        self.fmt = fmt

    def matches(self, source: Source):
        """Yield :class:`~repro.core.experiment.Match` objects from ``source``."""
        raise NotImplementedError

    def import_experiment(
        self,
        source: Source,
        name: str = "imported-experiment",
        solution: str | None = None,
    ) -> Experiment:
        """Read ``source`` and wrap its matches into an Experiment."""
        return Experiment(self.matches(source), name=name, solution=solution)


class PairFormatImporter(ExperimentImporter):
    """Importer for pair-list results: two id columns + optional score."""

    def __init__(
        self,
        first_column: str = "p1",
        second_column: str = "p2",
        score_column: str | None = "score",
        fmt: CsvFormat = CsvFormat(),
    ) -> None:
        super().__init__(fmt)
        self.first_column = first_column
        self.second_column = second_column
        self.score_column = score_column

    def matches(self, source: Source):
        """Yield :class:`~repro.core.experiment.Match` objects from ``source``."""
        for line_number, row in enumerate(read_rows(source, self.fmt), start=1):
            try:
                first = row[self.first_column]
                second = row[self.second_column]
            except KeyError as missing:
                raise ImportError_(
                    f"row {line_number} lacks column {missing}; "
                    f"columns: {sorted(row)}"
                ) from None
            if first == second:
                continue  # self-pairs carry no information
            score: float | None = None
            if self.score_column is not None and row.get(self.score_column):
                raw = row[self.score_column]
                try:
                    score = float(raw)
                except ValueError:
                    raise ImportError_(
                        f"row {line_number}: score {raw!r} is not a number"
                    ) from None
            yield Match(pair=make_pair(first, second), score=score)


class ClusterFormatImporter(ExperimentImporter):
    """Importer for cluster-assignment results: id column + cluster column.

    Emits all intra-cluster pairs (the clustering representation is
    transitively closed by construction, §1.2).
    """

    def __init__(
        self,
        id_column: str = "id",
        cluster_column: str = "cluster",
        fmt: CsvFormat = CsvFormat(),
    ) -> None:
        super().__init__(fmt)
        self.id_column = id_column
        self.cluster_column = cluster_column

    def assignment(self, source: Source) -> dict[str, str]:
        """Read the ``record id -> cluster id`` assignment from ``source``."""
        result: dict[str, str] = {}
        for line_number, row in enumerate(read_rows(source, self.fmt), start=1):
            try:
                record_id = row[self.id_column]
                cluster = row[self.cluster_column]
            except KeyError as missing:
                raise ImportError_(
                    f"row {line_number} lacks column {missing}; "
                    f"columns: {sorted(row)}"
                ) from None
            result[record_id] = cluster
        return result

    def matches(self, source: Source):
        """Yield :class:`~repro.core.experiment.Match` objects from ``source``."""
        from itertools import combinations

        by_cluster: dict[str, list[str]] = {}
        for record_id, cluster in self.assignment(source).items():
            by_cluster.setdefault(cluster, []).append(record_id)
        for members in by_cluster.values():
            for first, second in combinations(sorted(members), 2):
                yield Match(pair=make_pair(first, second))


def import_gold_standard(
    source: Source,
    format_: str = "pairs",
    name: str = "gold",
    fmt: CsvFormat = CsvFormat(),
    **columns: str,
) -> GoldStandard:
    """Import a gold standard in either supported format (§3.1.1).

    ``format_="pairs"`` reads a duplicate-pair list (columns ``p1``,
    ``p2`` by default); ``format_="clusters"`` reads a cluster
    assignment (columns ``id``, ``cluster``).  Column names are
    overridable via keyword arguments.
    """
    if format_ == "pairs":
        importer = PairFormatImporter(
            first_column=columns.get("first_column", "p1"),
            second_column=columns.get("second_column", "p2"),
            score_column=None,
            fmt=fmt,
        )
        pairs = [match.pair for match in importer.matches(source)]
        return GoldStandard.from_pairs(pairs, name=name)
    if format_ == "clusters":
        importer = ClusterFormatImporter(
            id_column=columns.get("id_column", "id"),
            cluster_column=columns.get("cluster_column", "cluster"),
            fmt=fmt,
        )
        return GoldStandard.from_assignment(importer.assignment(source), name=name)
    raise ImportError_(f"unknown gold format {format_!r}; use 'pairs' or 'clusters'")
