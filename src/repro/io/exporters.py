"""Exporters: datasets, experiments, and gold standards back to CSV.

Round-trips with :mod:`repro.io.importers` so evaluation results can be
moved between Frost instances or consumed by external tools through the
same file formats they were imported from.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.core.experiment import Experiment, GoldStandard
from repro.core.records import Dataset
from repro.io.csvio import CsvFormat, write_rows

__all__ = ["export_dataset", "export_experiment", "export_gold_standard"]

Target = str | Path | io.TextIOBase


def export_dataset(
    dataset: Dataset,
    target: Target,
    id_column: str = "id",
    fmt: CsvFormat = CsvFormat(),
) -> None:
    """Write a dataset as CSV (id column first, schema order after)."""
    columns = [id_column, *dataset.attributes]
    rows = (
        {id_column: record.record_id, **{a: record.value(a) for a in dataset.attributes}}
        for record in dataset
    )
    write_rows(target, rows, columns, fmt)


def export_experiment(
    experiment: Experiment,
    target: Target,
    fmt: CsvFormat = CsvFormat(),
    include_clustering_flag: bool = False,
) -> None:
    """Write an experiment in the pair format (p1, p2, score[, origin])."""
    columns = ["p1", "p2", "score"]
    if include_clustering_flag:
        columns.append("from_clustering")
    rows = []
    for match in sorted(experiment.matches, key=lambda m: m.pair):
        row: dict[str, str | None] = {
            "p1": match.pair[0],
            "p2": match.pair[1],
            "score": f"{match.score:.6f}" if match.score is not None else None,
        }
        if include_clustering_flag:
            row["from_clustering"] = "1" if match.from_clustering else "0"
        rows.append(row)
    write_rows(target, rows, columns, fmt)


def export_gold_standard(
    gold: GoldStandard,
    target: Target,
    format_: str = "clusters",
    fmt: CsvFormat = CsvFormat(),
) -> None:
    """Write a gold standard in either supported format (§3.1.1)."""
    if format_ == "clusters":
        rows = []
        for index, cluster in enumerate(gold.clustering.clusters):
            for record_id in cluster:
                rows.append({"id": record_id, "cluster": str(index)})
        write_rows(target, rows, ["id", "cluster"], fmt)
    elif format_ == "pairs":
        rows = [
            {"p1": first, "p2": second}
            for first, second in sorted(gold.pairs())
        ]
        write_rows(target, rows, ["p1", "p2"], fmt)
    else:
        raise ValueError(f"unknown gold format {format_!r}; use 'pairs' or 'clusters'")
