"""Non-relational (JSON) data import (§7 outlook).

"Data matching is relevant beyond tabular data.  Thus, Frost needs
support for non-relational data models, such as XML or JSON."

JSON records are flattened into the relational record model: nested
objects become dot-separated attribute paths (``address.city``),
arrays are joined into a single string value (with their elements
flattened first), and scalars are stringified.  Both a JSON array of
objects and JSON Lines are supported.
"""

from __future__ import annotations

import io
import json
from collections.abc import Iterable, Mapping
from pathlib import Path

from repro.core.records import Dataset, Record

__all__ = ["flatten_json", "import_json_dataset", "records_from_json_objects"]

Source = str | Path | io.TextIOBase


def flatten_json(
    obj: object,
    prefix: str = "",
    separator: str = ".",
    list_separator: str = " ",
) -> dict[str, str | None]:
    """Flatten one JSON value into ``{attribute path: value}``.

    * nested objects extend the path (``a.b.c``),
    * lists are flattened element-wise and joined with
      ``list_separator`` under their own path,
    * ``null`` maps to ``None`` (a missing value),
    * scalars are stringified (booleans as ``true``/``false`` to stay
      JSON-faithful).
    """
    flat: dict[str, str | None] = {}

    def scalar(value: object) -> str | None:
        if value is None:
            return None
        if isinstance(value, bool):
            return "true" if value else "false"
        return str(value)

    def visit(value: object, path: str) -> None:
        if isinstance(value, Mapping):
            for key, child in value.items():
                child_path = f"{path}{separator}{key}" if path else str(key)
                visit(child, child_path)
        elif isinstance(value, (list, tuple)):
            parts: list[str] = []
            for element in value:
                if isinstance(element, (Mapping, list, tuple)):
                    nested = flatten_json(element, "", separator, list_separator)
                    parts.extend(
                        f"{key}={item}"
                        for key, item in nested.items()
                        if item is not None
                    )
                else:
                    rendered = scalar(element)
                    if rendered is not None:
                        parts.append(rendered)
            flat[path] = list_separator.join(parts) if parts else None
        else:
            flat[path] = scalar(value)

    if not isinstance(obj, Mapping):
        raise TypeError(f"expected a JSON object, got {type(obj).__name__}")
    visit(obj, prefix)
    return flat


def records_from_json_objects(
    objects: Iterable[Mapping],
    id_field: str = "id",
    separator: str = ".",
) -> list[Record]:
    """Build records from parsed JSON objects.

    ``id_field`` may itself be a dot path into the nested object.
    """
    records: list[Record] = []
    for index, obj in enumerate(objects):
        flat = flatten_json(obj, separator=separator)
        record_id = flat.pop(id_field, None)
        if record_id is None:
            raise ValueError(
                f"object {index} lacks the id field {id_field!r}; "
                f"fields: {sorted(flat)}"
            )
        records.append(Record(record_id=record_id, values=flat))
    return records


def _load_objects(source: Source) -> list[Mapping]:
    """Parse a JSON array or JSON Lines into a list of objects."""
    if isinstance(source, (str, Path)):
        text = Path(source).read_text()
    else:
        text = source.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    if stripped.startswith("["):
        parsed = json.loads(text)
        if not isinstance(parsed, list):
            raise ValueError("top-level JSON value must be an array of objects")
        return parsed
    # JSON Lines: one object per non-empty line
    objects: list[Mapping] = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            objects.append(json.loads(line))
        except json.JSONDecodeError as error:
            raise ValueError(f"line {line_number}: invalid JSON: {error}") from None
    return objects


def import_json_dataset(
    source: Source,
    id_field: str = "id",
    name: str = "imported-json",
    separator: str = ".",
) -> Dataset:
    """Import a dataset from a JSON array or JSON Lines source.

    >>> import io
    >>> data = '[{"id": "r1", "name": "ada", "address": {"city": "london"}}]'
    >>> dataset = import_json_dataset(io.StringIO(data))
    >>> dataset["r1"].value("address.city")
    'london'
    """
    objects = _load_objects(source)
    return Dataset(
        records_from_json_objects(objects, id_field=id_field, separator=separator),
        name=name,
    )
