"""The in-memory match graph and its traversal queries.

Matching output is usually consumed as flat clusters; this module keeps
the *relationships* — every scored candidate pair becomes a weighted
edge between record nodes, with the per-attribute similarity breakdown
attached as evidence.  Components are maintained over the *accepted*
edges (score >= threshold), so the graph's clusters coincide with the
clustering the pipeline produced, while below-threshold candidate
edges remain queryable for exploration.

Adjacency is organized per node (the design point graph stores make to
keep k-hop traversal linear in edges touched, not in table size), and
component labels are the *minimum node id* of each component.  That
label choice is order-independent: merging components in any edge
order yields the same labels, which is what makes incremental per-batch
updates provably identical to a from-scratch rebuild.
"""

from __future__ import annotations

import heapq
import time

from repro.core.pairs import Pair, make_pair
from repro.telemetry import spans as _tracing
from repro.telemetry.metrics import get_metrics

__all__ = ["MatchGraph", "GraphQueryError"]

_TRAVERSALS = get_metrics().counter(
    "frost_graph_traversals_total",
    "Graph traversal queries answered (neighbors/path/component/explain)",
)
_TRAVERSAL_SECONDS = get_metrics().histogram(
    "frost_graph_traversal_seconds",
    "Wall time of one graph traversal query",
)


class GraphQueryError(ValueError):
    """Raised for malformed traversal parameters (negative k, ...)."""


class MatchGraph:
    """Record nodes, weighted similarity edges, and their components.

    Node ids are dense integers ``0..n-1`` in insertion order — the
    same numeric-id discipline the store uses for datasets and
    streaming sessions, so graph nodes line up with persisted rows.
    """

    def __init__(self, name: str, threshold: float) -> None:
        self.name = name
        self.threshold = float(threshold)
        self._native: list[str] = []
        self._node_of: dict[str, int] = {}
        # per-node adjacency: node -> [(neighbor, score, accepted)]
        self._adjacency: list[list[tuple[int, float, bool]]] = []
        # canonical (min, max) node pair -> (score, accepted)
        self._edges: dict[tuple[int, int], tuple[float, bool]] = {}
        # canonical pair -> per-attribute similarity evidence (or None)
        self._breakdowns: dict[tuple[int, int], dict | None] = {}
        # components over accepted edges, labelled by min member id
        self._label: list[int] = []
        self._members: dict[int, list[int]] = {}

    # -- construction ---------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._native)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    @property
    def accepted_edge_count(self) -> int:
        return sum(1 for _, accepted in self._edges.values() if accepted)

    def has_record(self, native_id: str) -> bool:
        return native_id in self._node_of

    def record_ids(self) -> list[str]:
        """Native record ids in node order."""
        return list(self._native)

    def node_of(self, native_id: str) -> int:
        try:
            return self._node_of[native_id]
        except KeyError:
            raise KeyError(
                f"graph {self.name!r} has no record {native_id!r}"
            ) from None

    def label_of(self, node: int) -> int:
        """Component label (min member node id) of ``node``."""
        return self._label[node]

    def add_node(self, native_id: str) -> int:
        """Append a record node; returns its dense node id."""
        if native_id in self._node_of:
            raise ValueError(
                f"graph {self.name!r} already has record {native_id!r}"
            )
        node = len(self._native)
        self._native.append(native_id)
        self._node_of[native_id] = node
        self._adjacency.append([])
        self._label.append(node)
        self._members[node] = [node]
        return node

    def add_edge(
        self,
        first: int,
        second: int,
        score: float,
        breakdown: dict | None = None,
    ) -> list[tuple[int, int]]:
        """Add one scored edge between two existing nodes.

        Returns the component relabels the edge caused as
        ``(node, new_label)`` rows — empty unless the edge is accepted
        and joins two distinct components.  Self-edges are rejected;
        duplicate edges are a desync between producer and graph.
        """
        if first == second:
            raise ValueError(
                f"graph {self.name!r}: self-edge on node {first} rejected"
            )
        if not (0 <= first < len(self._native) and 0 <= second < len(self._native)):
            raise ValueError(
                f"graph {self.name!r}: edge ({first}, {second}) references "
                f"unknown nodes (have {len(self._native)})"
            )
        key = (first, second) if first < second else (second, first)
        if key in self._edges:
            raise ValueError(
                f"graph {self.name!r}: duplicate edge {key}"
            )
        accepted = score >= self.threshold
        self._edges[key] = (score, accepted)
        self._breakdowns[key] = breakdown
        self._adjacency[first].append((second, score, accepted))
        self._adjacency[second].append((first, score, accepted))
        if not accepted:
            return []
        return self._union(first, second)

    def _union(self, first: int, second: int) -> list[tuple[int, int]]:
        """Merge the components of two nodes; min label wins."""
        winner, loser = self._label[first], self._label[second]
        if winner == loser:
            return []
        if winner > loser:
            winner, loser = loser, winner
        moved = self._members.pop(loser)
        for node in moved:
            self._label[node] = winner
        self._members[winner].extend(moved)
        return [(node, winner) for node in moved]

    # -- traversal queries ----------------------------------------------------------

    def _eligible(self, score: float, accepted: bool, threshold: float | None) -> bool:
        # Default traversal walks the accepted (clustered) graph; an
        # explicit threshold re-filters ALL candidate edges instead,
        # letting exploration dip below the pipeline's cut-off.
        if threshold is None:
            return accepted
        return score >= threshold

    def _edge_row(self, first: int, second: int) -> dict:
        key = (first, second) if first < second else (second, first)
        score, accepted = self._edges[key]
        return {
            "first": self._native[key[0]],
            "second": self._native[key[1]],
            "score": score,
            "accepted": accepted,
        }

    def _timed_query(self, kind: str):
        return _QueryTimer(kind)

    def neighbors(
        self,
        native_id: str,
        k: int = 1,
        threshold: float | None = None,
    ) -> dict:
        """K-hop BFS neighborhood of one record.

        ``k=0`` is the record alone.  Returns the reached records with
        hop distances plus every eligible edge among them.
        """
        if not isinstance(k, int) or isinstance(k, bool) or k < 0:
            raise GraphQueryError(f"k must be a non-negative integer, got {k!r}")
        with self._timed_query("neighbors"), _tracing.span(
            "graph.query", kind="neighbors", graph=self.name, k=k
        ):
            origin = self.node_of(native_id)
            hops = {origin: 0}
            frontier = [origin]
            for hop in range(1, k + 1):
                next_frontier = []
                for node in frontier:
                    for neighbor, score, accepted in self._adjacency[node]:
                        if neighbor in hops:
                            continue
                        if self._eligible(score, accepted, threshold):
                            hops[neighbor] = hop
                            next_frontier.append(neighbor)
                if not next_frontier:
                    break
                frontier = next_frontier
            visited = sorted(hops)
            edges = [
                self._edge_row(first, second)
                for (first, second), (score, accepted) in sorted(self._edges.items())
                if first in hops and second in hops
                and self._eligible(score, accepted, threshold)
            ]
            return {
                "record": native_id,
                "k": k,
                "threshold": threshold,
                "neighbors": [
                    {"record": self._native[node], "hops": hops[node]}
                    for node in visited
                ],
                "edges": edges,
            }

    def path(
        self,
        source: str,
        target: str,
        threshold: float | None = None,
    ) -> dict:
        """Fewest-hops path between two records.

        Records in different components yield ``found: False`` with an
        empty path — absence of a path is a valid answer, not an error.
        """
        with self._timed_query("path"), _tracing.span(
            "graph.query", kind="path", graph=self.name
        ):
            start, goal = self.node_of(source), self.node_of(target)
            if start == goal:
                return self._path_payload(source, target, [start], threshold)
            previous = {start: start}
            frontier = [start]
            while frontier and goal not in previous:
                next_frontier = []
                for node in frontier:
                    for neighbor, score, accepted in self._adjacency[node]:
                        if neighbor in previous:
                            continue
                        if self._eligible(score, accepted, threshold):
                            previous[neighbor] = node
                            next_frontier.append(neighbor)
                frontier = next_frontier
            if goal not in previous:
                return {
                    "from": source,
                    "to": target,
                    "threshold": threshold,
                    "found": False,
                    "path": [],
                    "edges": [],
                }
            nodes = [goal]
            while nodes[-1] != start:
                nodes.append(previous[nodes[-1]])
            nodes.reverse()
            return self._path_payload(source, target, nodes, threshold)

    def _path_payload(
        self, source: str, target: str, nodes: list[int], threshold: float | None
    ) -> dict:
        return {
            "from": source,
            "to": target,
            "threshold": threshold,
            "found": True,
            "path": [self._native[node] for node in nodes],
            "edges": [
                self._edge_row(nodes[i], nodes[i + 1])
                for i in range(len(nodes) - 1)
            ],
        }

    def component_of(self, native_id: str) -> dict:
        """Drill-down of the component containing one record."""
        with self._timed_query("component"), _tracing.span(
            "graph.query", kind="component", graph=self.name
        ):
            node = self.node_of(native_id)
            return self._component_payload(self._label[node])

    def components(self, limit: int | None = None) -> list[dict]:
        """All components, largest first (ties by label)."""
        if limit is not None and (
            not isinstance(limit, int) or isinstance(limit, bool) or limit < 0
        ):
            raise GraphQueryError(
                f"limit must be a non-negative integer, got {limit!r}"
            )
        with self._timed_query("components"), _tracing.span(
            "graph.query", kind="components", graph=self.name
        ):
            labels = sorted(
                self._members,
                key=lambda label: (-len(self._members[label]), label),
            )
            if limit is not None:
                labels = labels[:limit]
            return [self._component_payload(label) for label in labels]

    def _component_payload(self, label: int) -> dict:
        members = sorted(self._members[label])
        member_set = set(members)
        scores = [
            score
            for (first, second), (score, accepted) in self._edges.items()
            if accepted and first in member_set and second in member_set
        ]
        size = len(members)
        possible = size * (size - 1) // 2
        return {
            "component": label,
            "size": size,
            "records": [self._native[node] for node in members],
            "edge_count": len(scores),
            "density": (len(scores) / possible) if possible else 0.0,
            "min_score": min(scores) if scores else None,
            "max_score": max(scores) if scores else None,
        }

    def evidence_path(self, source: str, target: str) -> dict:
        """Why are these two records in one cluster?

        The max-min-score path through the accepted graph: among all
        paths between the records, the one whose *weakest* edge is
        strongest — the most defensible chain of evidence.  Each edge
        carries its per-attribute similarity breakdown.
        """
        with self._timed_query("explain"), _tracing.span(
            "graph.query", kind="explain", graph=self.name
        ):
            start, goal = self.node_of(source), self.node_of(target)
            if start == goal:
                return {
                    "from": source,
                    "to": target,
                    "found": True,
                    "bottleneck": None,
                    "path": [source],
                    "edges": [],
                }
            if self._label[start] != self._label[goal]:
                return {
                    "from": source,
                    "to": target,
                    "found": False,
                    "bottleneck": None,
                    "path": [],
                    "edges": [],
                }
            # Widest-path Dijkstra: maximize the minimum edge score.
            # heapq is a min-heap, so push negated widths; ties break on
            # node id for determinism.
            width = {start: float("inf")}
            previous: dict[int, int] = {}
            heap = [(-float("inf"), start)]
            while heap:
                negative, node = heapq.heappop(heap)
                if node == goal:
                    break
                if -negative < width.get(node, -1.0):
                    continue
                for neighbor, score, accepted in sorted(self._adjacency[node]):
                    if not accepted:
                        continue
                    bottleneck = min(-negative, score)
                    # -1.0 sentinel: even 0.0-score accepted edges relax
                    if bottleneck > width.get(neighbor, -1.0):
                        width[neighbor] = bottleneck
                        previous[neighbor] = node
                        heapq.heappush(heap, (-bottleneck, neighbor))
            nodes = [goal]
            while nodes[-1] != start:
                nodes.append(previous[nodes[-1]])
            nodes.reverse()
            edges = []
            for i in range(len(nodes) - 1):
                row = self._edge_row(nodes[i], nodes[i + 1])
                key = tuple(sorted((nodes[i], nodes[i + 1])))
                row["evidence"] = self._breakdowns[key]
                edges.append(row)
            return {
                "from": source,
                "to": target,
                "found": True,
                "bottleneck": width[goal],
                "path": [self._native[node] for node in nodes],
                "edges": edges,
            }

    # -- cluster views --------------------------------------------------------------

    def cluster_pairs(self) -> set[Pair]:
        """All intra-component record pairs (the transitive closure).

        Equals ``experiment.pairs()`` of the run the graph was built
        from — what the exploration tools consume.
        """
        pairs: set[Pair] = set()
        for members in self._members.values():
            if len(members) < 2:
                continue
            natives = [self._native[node] for node in members]
            for i, first in enumerate(natives):
                for second in natives[i + 1:]:
                    pairs.add(make_pair(first, second))
        return pairs

    def component_nodes(self) -> dict[int, list[int]]:
        """``{component label: sorted member node ids}``."""
        return {
            label: sorted(members) for label, members in self._members.items()
        }

    def component_members(self) -> dict[int, list[str]]:
        """``{component label: sorted member record ids}``."""
        return {
            label: sorted(self._native[node] for node in members)
            for label, members in self._members.items()
        }

    def summary(self) -> dict:
        """Counts + component stats for the graph overview."""
        sizes = [len(members) for members in self._members.values()]
        return {
            "name": self.name,
            "threshold": self.threshold,
            "node_count": self.node_count,
            "edge_count": self.edge_count,
            "accepted_edge_count": self.accepted_edge_count,
            "component_count": len(sizes),
            "cluster_count": sum(1 for size in sizes if size > 1),
            "largest_component": max(sizes, default=0),
        }


class _QueryTimer:
    """Counts traversals and observes their wall time."""

    def __init__(self, kind: str) -> None:
        self.kind = kind

    def __enter__(self) -> "_QueryTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        _TRAVERSALS.inc()
        _TRAVERSAL_SECONDS.observe(time.perf_counter() - self._started)
