"""Building, persisting, and incrementally updating match graphs.

Two producers feed a :class:`~repro.graph.model.MatchGraph`:

* a finished :class:`~repro.matching.pipeline.PipelineRun` — the whole
  scored pair graph lands as one batch
  (:func:`build_graph_from_run`), and
* a live :class:`~repro.streaming.session.StreamingSession` — each
  ingested batch appends its delta through a :class:`GraphUpdater`.

Both paths write the same rows through
:meth:`~repro.storage.database.FrostStore.append_graph_batch`, and
component labels are order-independent (min node id), so the
incremental graph is row-identical to a from-scratch rebuild — the
invariant the hypothesis suite pins down.
"""

from __future__ import annotations

import json

from repro.core.experiment import Experiment
from repro.core.pairs import ScoredPair
from repro.core.records import Dataset
from repro.graph.model import MatchGraph
from repro.storage.database import FrostStore, StorageError
from repro.telemetry import spans as _tracing
from repro.telemetry.metrics import get_metrics

__all__ = [
    "GraphUpdater",
    "build_graph_from_run",
    "build_graph_from_experiment",
    "load_graph",
]

_BUILDS = get_metrics().counter(
    "frost_graph_builds_total",
    "Match graphs created (from runs, experiments, or streams)",
)
_BATCHES = get_metrics().counter(
    "frost_graph_batches_total",
    "Graph deltas persisted (one per pipeline build or stream batch)",
)
_EDGES = get_metrics().counter(
    "frost_graph_edges_total",
    "Scored edges persisted into match graphs",
)


class GraphUpdater:
    """Keeps one persisted graph and its in-memory twin in sync.

    Streaming sessions hold one of these: every accepted batch is
    applied to the store first (atomically) and then to the in-memory
    graph, so queries never observe a half-applied delta.
    """

    def __init__(self, store: FrostStore, graph: MatchGraph) -> None:
        self._store = store
        self.graph = graph

    @classmethod
    def create(
        cls, store: FrostStore, name: str, threshold: float
    ) -> "GraphUpdater":
        """Register a new empty graph under ``name``."""
        store.create_graph(name, threshold)
        _BUILDS.inc()
        return cls(store, MatchGraph(name, threshold))

    @classmethod
    def attach(cls, store: FrostStore, name: str) -> "GraphUpdater":
        """Reload a persisted graph (resume path)."""
        return cls(store, load_graph(store, name))

    def apply_batch(
        self,
        nodes: list[tuple[int, str]],
        scored: list[ScoredPair],
        vectors=None,
    ) -> None:
        """Append one delta: new records plus their scored pairs.

        ``nodes`` are ``(node_id, native_id)`` rows — node ids must
        continue the graph's dense sequence (streaming numeric ids do
        by construction).  ``vectors`` aligns with ``scored`` and
        supplies per-attribute evidence; ``None`` stores edges without
        breakdowns.
        """
        graph = self.graph
        with _tracing.span(
            "graph.batch",
            graph=graph.name,
            nodes=len(nodes),
            scored=len(scored),
        ):
            component_rows: dict[int, int] = {}
            for node_id, native in nodes:
                assigned = graph.add_node(native)
                if assigned != node_id:
                    raise StorageError(
                        f"graph {graph.name!r} desynced: expected node "
                        f"{assigned}, producer sent {node_id}"
                    )
                component_rows[node_id] = node_id
            edge_rows = []
            for index, scored_pair in enumerate(scored):
                first = graph.node_of(scored_pair.first)
                second = graph.node_of(scored_pair.second)
                breakdown = None
                if vectors is not None:
                    breakdown = json.dumps(
                        dict(vectors[index].values), sort_keys=True
                    )
                relabels = graph.add_edge(
                    first,
                    second,
                    scored_pair.score,
                    breakdown=None if breakdown is None else json.loads(breakdown),
                )
                key = (first, second) if first < second else (second, first)
                edge_rows.append(
                    (
                        key[0],
                        key[1],
                        scored_pair.score,
                        scored_pair.score >= graph.threshold,
                        breakdown,
                    )
                )
                for node, label in relabels:
                    component_rows[node] = label
            # unions after a node's own row may have moved it again;
            # stamp the final labels
            for node in component_rows:
                component_rows[node] = graph.label_of(node)
            try:
                self._store.append_graph_batch(
                    graph.name,
                    nodes,
                    edge_rows,
                    sorted(component_rows.items()),
                )
            except StorageError:
                # the write failed atomically; discard the mutated twin
                # so memory matches what the store actually holds
                self.graph = load_graph(self._store, graph.name)
                raise
            _BATCHES.inc()
            _EDGES.inc(len(edge_rows))


def build_graph_from_run(
    store: FrostStore,
    name: str,
    run,
    threshold: float | None = None,
) -> MatchGraph:
    """Persist the full scored pair graph of one pipeline run.

    Every dataset record becomes a node (isolated records included);
    every scored candidate pair becomes an edge with its similarity
    vector as evidence.  The pipeline's threshold (recorded in the
    experiment metadata) decides edge acceptance unless overridden.
    """
    if threshold is None:
        threshold = run.experiment.metadata.get("threshold")
        if threshold is None:
            raise ValueError(
                "run records no threshold; pass one explicitly"
            )
    with _tracing.span("graph.build", graph=name, source="run"):
        updater = GraphUpdater.create(store, name, threshold)
        nodes = [
            (index, record.record_id)
            for index, record in enumerate(run.dataset)
        ]
        updater.apply_batch(nodes, list(run.scored_pairs), run.vectors)
        return updater.graph


def build_graph_from_experiment(
    store: FrostStore,
    name: str,
    dataset: Dataset,
    experiment: Experiment,
    threshold: float | None = None,
) -> MatchGraph:
    """Build a graph from a persisted experiment (no similarity vectors).

    This is the migration path for pre-graph store files: the direct
    (non-transitive) matches become edges; unscored matches count as
    certain (score 1.0).  Defaults the threshold to the weakest direct
    match so every stored match stays accepted.
    """
    direct = [
        match for match in experiment.matches if not match.from_clustering
    ]
    scores = [
        ScoredPair(
            score=1.0 if match.score is None else match.score,
            pair=match.pair,
        )
        for match in direct
    ]
    if threshold is None:
        threshold = min((sp.score for sp in scores), default=0.0)
    with _tracing.span("graph.build", graph=name, source="experiment"):
        updater = GraphUpdater.create(store, name, threshold)
        nodes = [
            (index, record.record_id)
            for index, record in enumerate(dataset)
        ]
        updater.apply_batch(nodes, sorted(scores))
        return updater.graph


def load_graph(store: FrostStore, name: str) -> MatchGraph:
    """Rehydrate a persisted graph into a queryable :class:`MatchGraph`."""
    with _tracing.span("graph.load", graph=name):
        document = store.load_graph(name)
        graph = MatchGraph(name, document["meta"]["threshold"])
        for node_id, native in document["nodes"]:
            assigned = graph.add_node(native)
            if assigned != node_id:
                raise StorageError(
                    f"graph {name!r}: stored node ids are not dense "
                    f"(expected {assigned}, found {node_id})"
                )
        for first, second, score, _accepted, breakdown in document["edges"]:
            graph.add_edge(
                first,
                second,
                score,
                breakdown=None if breakdown is None else json.loads(breakdown),
            )
        return graph
