"""The persisted match-graph subsystem.

Record nodes, weighted similarity edges with per-attribute evidence,
and cluster memberships — persisted in indexed SQLite adjacency tables
and queryable through k-hop traversal, path, component drill-down, and
max-min-score evidence paths.  See README "Match graph".
"""

from repro.graph.build import (
    GraphUpdater,
    build_graph_from_experiment,
    build_graph_from_run,
    load_graph,
)
from repro.graph.model import GraphQueryError, MatchGraph

__all__ = [
    "MatchGraph",
    "GraphQueryError",
    "GraphUpdater",
    "build_graph_from_run",
    "build_graph_from_experiment",
    "load_graph",
]
