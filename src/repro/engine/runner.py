"""Parallel job scheduler with dependency ordering and caching.

:class:`ExperimentEngine` executes :class:`~repro.engine.jobs.JobSpec`
objects on a ``concurrent.futures`` thread pool:

* **dependency ordering** — a job runs only after all jobs in its
  ``depends_on`` have succeeded; dependency values are handed to the
  handler in declaration order, which is how pipeline job graphs pass
  stage outputs along;
* **failure isolation** — an exception fails only its own job;
  transitive dependents are marked ``skipped``, unrelated jobs keep
  running;
* **progress tracking / cancellation** — :meth:`status`,
  :meth:`progress`, and :meth:`cancel` observe and prune the queue
  while it drains;
* **content-addressed caching** — cacheable jobs consult a
  :class:`~repro.engine.cache.ResultCache` keyed by dataset + config +
  gold content before computing, so identical re-runs (the exploration
  hot path) cost a hash lookup instead of a recomputation.

Built-in job kinds:

``metrics``
    N-metrics table.  Params: ``dataset``, ``gold``, optional
    ``experiments`` (names), ``metrics`` (names), ``threshold``
    (evaluate ``score >= threshold`` subsets).
``diagram``
    Metric/metric diagram points.  Params: ``dataset``, ``experiment``,
    ``gold``, optional ``samples``.
``pipeline``
    Run a :class:`~repro.matching.pipeline.MatchingPipeline` on a
    registered dataset and register the resulting experiment.  Params:
    ``pipeline``, ``dataset``, optional ``register`` / ``register_as``,
    optional ``blocker`` (a JSON key config such as ``{"kind": "lsh",
    "bands": 16}`` swapping the candidate generator per job — part of
    the cache token, because different blockers produce different
    results), optional ``workers`` / ``shards`` (sharded parallel
    comparison; deliberately absent from the cache token because
    parallel output is byte-identical to serial, so a cached serial
    result serves a parallel request and vice versa).
``pipeline_stage``
    One stage of a pipeline expressed as a job graph (see
    :meth:`MatchingPipeline.as_job_graph`); not cacheable because the
    intermediates are in-memory objects.  The ``candidates`` stage
    honours the optional ``blocker`` param, the ``similarity`` stage
    the same optional ``workers`` / ``shards`` params.
``stream_ingest``
    Fold one record batch into a live
    :class:`~repro.streaming.StreamingMatcher`.  Params: ``session``,
    ``records`` (a sequence of :class:`Record` objects or JSON rows
    with an ``"id"`` key).  Returns the new snapshot summary.  Never
    cached — an ingest mutates session state, so serving it from cache
    would silently drop the batch; chain batches with ``depends_on``
    when their ingest order matters.
"""

from __future__ import annotations

import concurrent.futures
import logging
import math
import threading
import time
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.confusion import ConfusionMatrix
from repro.core.experiment import Experiment, Match
from repro.core.platform import FrostPlatform
from repro.engine.cache import MISS, ResultCache
from repro.engine.jobs import (
    JobResult,
    JobSpec,
    JobState,
    job_cache_key,
    next_job_id,
)
from repro.storage.database import FrostStore
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import get_tracer

__all__ = ["ExperimentEngine", "EngineError", "serialize_experiment"]

# Process-wide mirrors of the per-engine counters, feeding GET /metrics.
_LOG = logging.getLogger("repro.engine")

_JOBS_COMPUTED = get_metrics().counter(
    "frost_engine_jobs_computed_total", "Engine jobs executed by a handler"
)
_JOBS_CACHED = get_metrics().counter(
    "frost_engine_jobs_cached_total", "Engine jobs served from the result cache"
)
_JOBS_FAILED = get_metrics().counter(
    "frost_engine_jobs_failed_total", "Engine jobs that raised"
)
_JOB_SECONDS = get_metrics().histogram(
    "frost_engine_job_seconds", "Wall time of executed engine jobs"
)

_TERMINAL = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.SKIPPED, JobState.CANCELLED}
)
_BROKEN = frozenset({JobState.FAILED, JobState.SKIPPED, JobState.CANCELLED})


class EngineError(RuntimeError):
    """Raised for engine-level misuse (unknown kinds, ids, cycles)."""


@dataclass(frozen=True)
class JobHandler:
    """How the engine executes one job kind.

    ``compute(params, inputs)`` produces the job value; ``token``
    (optional) maps params to a content token for cache-key hashing —
    handlers without one are never cached; ``after`` (optional) runs on
    both computed and cache-served values, e.g. to register a pipeline
    result on the platform.
    """

    compute: Callable[[Mapping[str, object], Sequence[object]], object]
    token: Callable[[Mapping[str, object]], object] | None = None
    after: Callable[[Mapping[str, object], object, bool], None] | None = None


class _Entry:
    __slots__ = ("spec", "result", "done", "scheduled", "ctx")

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.result = JobResult(job_id=spec.job_id, spec=spec)
        self.done = threading.Event()
        # Claimed by the scheduler (future created).  The job stays
        # PENDING until a worker actually starts it, so queued jobs
        # remain cancellable.
        self.scheduled = False
        # Span context captured at submit time: the worker thread
        # activates it so the job's span nests under the submitter's.
        self.ctx = None


def serialize_experiment(experiment: Experiment) -> dict[str, object]:
    """JSON document capturing an experiment (cacheable pipeline output)."""
    return {
        "name": experiment.name,
        "solution": experiment.solution,
        "metadata": dict(experiment.metadata),
        "matches": [
            [match.pair[0], match.pair[1], match.score, match.from_clustering]
            for match in experiment
        ],
    }


def deserialize_experiment(payload: Mapping[str, object]) -> Experiment:
    """Rebuild an :class:`Experiment` from :func:`serialize_experiment`."""
    return Experiment(
        (
            Match(pair=(first, second), score=score, from_clustering=bool(flag))
            for first, second, score, flag in payload["matches"]
        ),
        name=payload["name"],
        solution=payload.get("solution"),
        metadata=payload.get("metadata") or {},
    )


class ExperimentEngine:
    """Schedule, cache, and track experiment jobs over a platform.

    Parameters
    ----------
    platform:
        The :class:`FrostPlatform` holding datasets, golds, and
        experiments that job params refer to by name.
    store:
        Optional :class:`FrostStore`; when given, cached results
        persist in its ``result_cache`` table across processes.
    max_workers:
        Thread-pool width for independent jobs.
    cache_entries:
        In-memory LRU capacity of the result cache.
    max_history:
        Bound on retained job records: once exceeded, the oldest
        terminal jobs (and their payloads) are dropped at submit time,
        so a long-running server does not grow without bound.  Jobs
        that non-terminal jobs depend on are never dropped.
    """

    def __init__(
        self,
        platform: FrostPlatform,
        store: FrostStore | None = None,
        max_workers: int = 4,
        cache_entries: int = 512,
        max_history: int = 4096,
    ) -> None:
        if max_workers < 1:
            raise ValueError("max_workers must be positive")
        if max_history < 1:
            raise ValueError("max_history must be positive")
        self.platform = platform
        self.max_workers = max_workers
        self.max_history = max_history
        self.cache = ResultCache(max_entries=cache_entries, store=store)
        self._entries: dict[str, _Entry] = {}
        self._lock = threading.RLock()
        self._drain_thread: threading.Thread | None = None
        self.computed_jobs = 0
        self.cached_jobs = 0
        self._handlers: dict[str, JobHandler] = {
            "metrics": JobHandler(
                compute=self._compute_metrics, token=self._metrics_token
            ),
            "diagram": JobHandler(
                compute=self._compute_diagram, token=self._diagram_token
            ),
            "pipeline": JobHandler(
                compute=self._compute_pipeline,
                token=self._pipeline_token,
                after=self._register_pipeline_result,
            ),
            "pipeline_stage": JobHandler(compute=self._compute_pipeline_stage),
            # no token: stateful, must never be served from cache
            "stream_ingest": JobHandler(compute=self._compute_stream_ingest),
        }

    # -- registration -------------------------------------------------------------

    def register_handler(
        self, kind: str, handler: JobHandler, replace: bool = False
    ) -> None:
        """Register a custom job kind (the engine's extensibility point)."""
        if kind in self._handlers and not replace:
            raise EngineError(f"job kind {kind!r} is already registered")
        self._handlers[kind] = handler

    def submit(self, spec: JobSpec) -> str:
        """Queue one job; returns its (possibly auto-assigned) id.

        Dependencies must already be submitted, which also guarantees
        the job graph stays acyclic.
        """
        if spec.kind not in self._handlers:
            known = ", ".join(sorted(self._handlers))
            raise EngineError(f"unknown job kind {spec.kind!r}; known: {known}")
        with self._lock:
            job_id = spec.job_id or next_job_id(spec.kind)
            if job_id in self._entries:
                raise EngineError(f"duplicate job id {job_id!r}")
            for dependency in spec.depends_on:
                if dependency not in self._entries:
                    raise EngineError(
                        f"job {job_id!r} depends on unknown job {dependency!r}"
                    )
            if spec.job_id != job_id or not spec.job_id:
                spec = JobSpec(
                    kind=spec.kind,
                    params=spec.params,
                    job_id=job_id,
                    depends_on=spec.depends_on,
                    cacheable=spec.cacheable,
                )
            entry = _Entry(spec)
            tracer = get_tracer()
            if tracer.enabled:
                entry.ctx = tracer.context()
            self._entries[job_id] = entry
            self._prune_history()
        return job_id

    def _prune_history(self) -> None:
        """Drop the oldest terminal job records beyond ``max_history``.

        Called with the lock held.  Records that a non-terminal job
        depends on stay, so dependency values remain resolvable.
        """
        excess = len(self._entries) - self.max_history
        if excess <= 0:
            return
        pinned: set[str] = set()
        for entry in self._entries.values():
            if entry.result.state not in _TERMINAL:
                pinned.update(entry.spec.depends_on)
        for job_id in [
            job_id
            for job_id, entry in self._entries.items()
            if entry.result.state in _TERMINAL and job_id not in pinned
        ][:excess]:
            del self._entries[job_id]

    def submit_all(self, specs: Sequence[JobSpec]) -> list[str]:
        """Queue a batch atomically: either every spec enqueues or none.

        Validation (known kinds, unique ids, resolvable dependencies —
        batch-internal ids count) happens before the first submit, so a
        bad spec cannot leave earlier specs of the batch behind to
        poison a retry with duplicate-id errors.
        """
        specs = list(specs)
        with self._lock:
            batch_ids: set[str] = set()
            for spec in specs:
                if spec.kind not in self._handlers:
                    known = ", ".join(sorted(self._handlers))
                    raise EngineError(
                        f"unknown job kind {spec.kind!r}; known: {known}"
                    )
                if spec.job_id:
                    if spec.job_id in self._entries or spec.job_id in batch_ids:
                        raise EngineError(f"duplicate job id {spec.job_id!r}")
                for dependency in spec.depends_on:
                    if (
                        dependency not in self._entries
                        and dependency not in batch_ids
                    ):
                        raise EngineError(
                            f"job {spec.job_id or spec.kind!r} depends on "
                            f"unknown job {dependency!r}"
                        )
                if spec.job_id:
                    batch_ids.add(spec.job_id)
            return [self.submit(spec) for spec in specs]

    def sweep(
        self, base: JobSpec, parameter: str, values: Iterable[object]
    ) -> list[str]:
        """Submit a batch parameter sweep; returns the fanned-out ids."""
        from repro.engine.jobs import expand_sweep

        return self.submit_all(expand_sweep(base, parameter, values))

    # -- execution ----------------------------------------------------------------

    def run(
        self, specs: Iterable[JobSpec] | None = None, wait: bool = True
    ) -> dict[str, JobResult]:
        """Submit ``specs`` (if any), drain the queue, return results.

        With ``wait=False`` the queue drains on a background thread and
        the returned results may still be pending — poll :meth:`status`
        or :meth:`join`.
        """
        ids = [self.submit(spec) for spec in specs] if specs is not None else None
        self.start()
        if wait:
            self.join(ids)
        with self._lock:
            selected = ids if ids is not None else list(self._entries)
            return {job_id: self._entries[job_id].result for job_id in selected}

    def start(self) -> None:
        """Ensure a background drain thread is processing the queue."""
        with self._lock:
            if self._drain_thread is not None and self._drain_thread.is_alive():
                return
            self._drain_thread = threading.Thread(
                target=self._drain, name="frost-engine", daemon=True
            )
            self._drain_thread.start()

    def join(
        self, job_ids: Sequence[str] | None = None, timeout: float | None = None
    ) -> bool:
        """Block until the given (default: all) jobs are terminal."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            entries = [
                self._entries[job_id]
                for job_id in (job_ids if job_ids is not None else self._entries)
            ]
        for entry in entries:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not entry.done.wait(remaining):
                return False
        return True

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not started executing yet.

        Pending jobs — including jobs already queued behind busy
        workers — are cancelled; jobs a worker is executing are not
        interrupted.  Dependents are skipped when the scheduler
        reaches them.
        """
        with self._lock:
            entry = self._entries.get(job_id)
            if entry is None:
                raise EngineError(f"unknown job {job_id!r}")
            if entry.result.state is not JobState.PENDING:
                return False
            entry.result.state = JobState.CANCELLED
            entry.done.set()
            return True

    def cancel_pending(self) -> int:
        """Cancel every still-pending job; returns how many."""
        with self._lock:
            pending = [
                job_id
                for job_id, entry in self._entries.items()
                if entry.result.state is JobState.PENDING
            ]
        return sum(self.cancel(job_id) for job_id in pending)

    # -- introspection ------------------------------------------------------------

    def result(self, job_id: str) -> JobResult:
        """The (possibly non-terminal) result of one job."""
        with self._lock:
            try:
                return self._entries[job_id].result
            except KeyError:
                raise EngineError(f"unknown job {job_id!r}") from None

    def status(self) -> list[dict[str, object]]:
        """Submission-ordered JSON-serializable job summaries."""
        with self._lock:
            return [entry.result.as_dict() for entry in self._entries.values()]

    def progress(self) -> dict[str, object]:
        """Aggregate queue progress plus cache statistics."""
        with self._lock:
            states = [entry.result.state for entry in self._entries.values()]
        summary: dict[str, object] = {
            "total": len(states),
            "done": sum(state in _TERMINAL for state in states),
        }
        for state in JobState:
            summary[state.value] = sum(s is state for s in states)
        summary["cache"] = self.cache.stats()
        return summary

    # -- scheduler ----------------------------------------------------------------

    def _claim_ready(self) -> list[_Entry]:
        """Claim and return runnable jobs; skip those with broken deps."""
        ready: list[_Entry] = []
        with self._lock:
            for entry in self._entries.values():
                if entry.result.state is not JobState.PENDING or entry.scheduled:
                    continue
                dep_states = [
                    self._entries[dep].result.state for dep in entry.spec.depends_on
                ]
                if any(state in _BROKEN for state in dep_states):
                    entry.result.state = JobState.SKIPPED
                    entry.result.error = "dependency failed or was cancelled"
                    entry.done.set()
                elif all(state is JobState.SUCCEEDED for state in dep_states):
                    entry.scheduled = True
                    ready.append(entry)
        return ready

    def _has_pending(self) -> bool:
        with self._lock:
            return any(
                entry.result.state is JobState.PENDING
                for entry in self._entries.values()
            )

    def _drain(self) -> None:
        try:
            self._drain_loop()
        finally:
            with self._lock:
                self._drain_thread = None
            if self._has_pending():
                self.start()  # jobs submitted while the pool was closing

    def _drain_loop(self) -> None:
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            futures: dict[concurrent.futures.Future, _Entry] = {}
            while True:
                for entry in self._claim_ready():
                    try:
                        futures[pool.submit(self._execute, entry)] = entry
                    except RuntimeError:
                        # The pool is tearing down under us (interpreter
                        # shutdown): un-claim so a later drain can run it.
                        with self._lock:
                            entry.scheduled = False
                        return
                if not futures:
                    if self._has_pending():
                        continue  # a skip pass may have unblocked claims
                    break
                # The timeout bounds the latency of jobs submitted while
                # the pool is busy: without it, a fresh independent job
                # would wait for a running future to finish even with
                # idle workers.
                done, _ = concurrent.futures.wait(
                    futures,
                    timeout=0.05,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    entry = futures.pop(future)
                    self._finish(entry, future)

    def _finish(self, entry: _Entry, future: concurrent.futures.Future) -> None:
        result = entry.result
        error = future.exception()
        with self._lock:
            if result.state is JobState.CANCELLED:
                pass  # cancelled while queued; _execute did nothing
            elif error is not None:
                result.state = JobState.FAILED
                result.error = f"{type(error).__name__}: {error}"
                self.computed_jobs += 1
                _JOBS_FAILED.inc()
                _JOB_SECONDS.observe(result.seconds)
            else:
                result.state = JobState.SUCCEEDED
                if result.cached:
                    self.cached_jobs += 1
                    _JOBS_CACHED.inc()
                else:
                    self.computed_jobs += 1
                    _JOBS_COMPUTED.inc()
                _JOB_SECONDS.observe(result.seconds)
        entry.done.set()

    def _execute(self, entry: _Entry) -> None:
        spec = entry.spec
        handler = self._handlers[spec.kind]
        started = time.perf_counter()
        try:
            with self._lock:
                if entry.result.state is not JobState.PENDING:
                    return  # cancelled while queued behind busy workers
                entry.result.state = JobState.RUNNING
                inputs = [
                    self._entries[dep].result.value for dep in spec.depends_on
                ]
            tracer = get_tracer()
            # Activate the context captured at submit time so the job's
            # span nests under the submitting thread's span tree even
            # though it runs on a pool worker.
            with tracer.activate(entry.ctx), tracer.span(
                "engine.job", job=spec.job_id, kind=spec.kind
            ) as job_span:
                value = MISS
                if spec.cacheable and handler.token is not None:
                    entry.result.cache_key = job_cache_key(
                        spec.kind, handler.token(spec.params)
                    )
                    value = self.cache.get(entry.result.cache_key)
                if value is not MISS:
                    entry.result.cached = True
                else:
                    value = handler.compute(spec.params, inputs)
                    if entry.result.cache_key is not None:
                        self.cache.put(entry.result.cache_key, spec.kind, value)
                job_span.annotate(cached=entry.result.cached)
                if handler.after is not None:
                    handler.after(spec.params, value, entry.result.cached)
                entry.result.value = value
                _LOG.debug(
                    "job %s (%s) %s",
                    spec.job_id,
                    spec.kind,
                    "served from cache" if entry.result.cached else "computed",
                )
        finally:
            entry.result.seconds = time.perf_counter() - started

    # -- built-in handlers --------------------------------------------------------

    def _resolve_experiments(
        self, dataset_name: str, names: Sequence[str] | None
    ) -> list[str]:
        if names is not None:
            return list(names)
        return self.platform.experiment_names(dataset_name)

    def _metrics_token(self, params: Mapping[str, object]) -> object:
        dataset_name = params["dataset"]
        names = self._resolve_experiments(dataset_name, params.get("experiments"))
        return {
            "dataset": self.platform.dataset(dataset_name),
            "gold": self.platform.gold(dataset_name, params["gold"]),
            "experiments": [
                [name, self.platform.experiment(dataset_name, name)]
                for name in names
            ],
            "metrics": params.get("metrics"),
            "threshold": params.get("threshold"),
        }

    def _compute_metrics(
        self, params: Mapping[str, object], inputs: Sequence[object]
    ) -> dict[str, object]:
        from repro.metrics.registry import default_registry

        dataset_name = params["dataset"]
        gold_name = params["gold"]
        names = self._resolve_experiments(dataset_name, params.get("experiments"))
        metric_names = params.get("metrics")
        threshold = params.get("threshold")
        if threshold is None:
            table = self.platform.metrics_table(
                dataset_name, gold_name, names, metric_names
            )
        else:
            dataset = self.platform.dataset(dataset_name)
            gold = self.platform.gold(dataset_name, gold_name)
            registry = default_registry()
            table = {}
            for name in names:
                subset = self.platform.experiment(
                    dataset_name, name
                ).threshold_subset(float(threshold))
                matrix = ConfusionMatrix.from_clusterings(
                    subset.clustering(), gold.clustering, dataset.total_pairs()
                )
                table[name] = registry.evaluate(matrix, metric_names)
        return {
            "dataset": dataset_name,
            "gold": gold_name,
            "threshold": threshold,
            "metrics": table,
        }

    def _diagram_token(self, params: Mapping[str, object]) -> object:
        dataset_name = params["dataset"]
        return {
            "dataset": self.platform.dataset(dataset_name),
            "experiment": self.platform.experiment(
                dataset_name, params["experiment"]
            ),
            "gold": self.platform.gold(dataset_name, params["gold"]),
            "samples": int(params.get("samples", 100)),
        }

    def _compute_diagram(
        self, params: Mapping[str, object], inputs: Sequence[object]
    ) -> dict[str, object]:
        samples = int(params.get("samples", 100))
        points = self.platform.diagram(
            params["dataset"], params["experiment"], params["gold"], samples=samples
        )
        return {
            "dataset": params["dataset"],
            "experiment": params["experiment"],
            "gold": params["gold"],
            "points": [
                {
                    "threshold": (
                        None if math.isinf(point.threshold) else point.threshold
                    ),
                    "matches": point.matches_applied,
                    **point.matrix.as_dict(),
                }
                for point in points
            ],
        }

    def _pipeline_token(self, params: Mapping[str, object]) -> object:
        # The blocker override is part of the fingerprinted pipeline
        # (with_blocker changes the candidate_generator token), so the
        # cache distinguishes runs with different blocker configs —
        # while workers/shards overrides, which cannot change output,
        # share one cache entry.
        return {
            "dataset": self.platform.dataset(params["dataset"]),
            "pipeline": self._selected_pipeline(params).config_fingerprint(),
            "register_as": params.get("register_as"),
        }

    @staticmethod
    def _selected_pipeline(params: Mapping[str, object]):
        """The job's pipeline with any ``blocker`` config applied.

        ``blocker`` is a JSON key config (``{"kind": "lsh", "bands":
        16, ...}``, see :mod:`repro.streaming.config`) — the wire-safe
        way to vary candidate generation per job without shipping
        Python objects.
        """
        pipeline = params["pipeline"]
        blocker = params.get("blocker")
        if blocker is None:
            return pipeline
        from repro.streaming.config import candidate_generator_from_key

        return pipeline.with_blocker(candidate_generator_from_key(blocker))

    @classmethod
    def _configured_pipeline(cls, params: Mapping[str, object]):
        """The job's pipeline with execution params applied.

        ``blocker``/``workers``/``shards``/``columnar``/
        ``blocking_storage`` are execution knobs: like the pipeline
        attributes they override, none of them participates in the
        job's cache key (the output cannot depend on them).
        """
        pipeline = cls._selected_pipeline(params)
        columnar = params.get("columnar")
        if columnar is not None:
            pipeline = pipeline.with_columnar(bool(columnar))
        blocking_storage = params.get("blocking_storage")
        if blocking_storage is not None:
            pipeline = pipeline.with_blocking_storage(str(blocking_storage))
        workers = params.get("workers")
        shards = params.get("shards")
        if workers is None and shards is None:
            return pipeline
        # with_parallelism handles a shards-only override (engages all
        # cores rather than silently staying serial).
        return pipeline.with_parallelism(workers=workers, shards=shards)

    def _compute_pipeline(
        self, params: Mapping[str, object], inputs: Sequence[object]
    ) -> dict[str, object]:
        pipeline = self._configured_pipeline(params)
        run = pipeline.run(self.platform.dataset(params["dataset"]))
        payload = serialize_experiment(run.experiment)
        payload["stage_seconds"] = dict(run.stage_seconds)
        return payload

    def _register_pipeline_result(
        self, params: Mapping[str, object], value: object, cached: bool
    ) -> None:
        if not params.get("register", True):
            return
        dataset_name = params["dataset"]
        experiment = deserialize_experiment(value)
        register_as = params.get("register_as")
        if register_as:
            experiment.name = register_as
        if experiment.name in self.platform.experiment_names(dataset_name):
            return  # idempotent re-runs: first registration wins
        self.platform.add_experiment(dataset_name, experiment)

    def _compute_stream_ingest(
        self, params: Mapping[str, object], inputs: Sequence[object]
    ) -> dict[str, object]:
        from repro.streaming.session import coerce_records

        session = params["session"]
        records = coerce_records(params["records"])
        snapshot = session.ingest(records)
        return {"stream": session.name, **snapshot.as_dict()}

    def _compute_pipeline_stage(
        self, params: Mapping[str, object], inputs: Sequence[object]
    ) -> object:
        pipeline = params["pipeline"]
        stage = params["stage"]
        if stage == "prepare":
            return pipeline.prepare(self.platform.dataset(params["dataset"]))
        if stage == "candidates":
            (prepared,) = inputs
            return self._selected_pipeline(params).generate_candidates(prepared)
        if stage == "similarity":
            prepared, candidates = inputs
            return self._configured_pipeline(params).compare_candidates(
                prepared, candidates
            )
        if stage == "decision":
            (vectors,) = inputs
            return pipeline.score_vectors(vectors)
        if stage == "clustering":
            (scored_pairs,) = inputs
            experiment = pipeline.cluster_matches(scored_pairs)
            if params.get("register", True):
                if experiment.name not in self.platform.experiment_names(
                    params["dataset"]
                ):
                    self.platform.add_experiment(params["dataset"], experiment)
            return experiment
        raise EngineError(f"unknown pipeline stage {stage!r}")
