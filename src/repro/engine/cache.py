"""Content-addressed result cache: in-process LRU over SQLite.

The engine's hot path — re-running an identical metrics or diagram job
while exploring results — is served from here instead of being
recomputed.  Lookups go memory first (an LRU of recently used
payloads), then the persistent ``result_cache`` table of a
:class:`~repro.storage.database.FrostStore` when one is attached, so
cached results survive process restarts and can be shared between CLI
invocations and the HTTP server.

Keys are the digests produced by :func:`repro.engine.jobs.job_cache_key`
(dataset + config + gold-standard content), values are JSON documents.

The in-memory tier is factored out as :class:`LruTier` so other caches
— notably the serving layer's
:class:`~repro.serving.cache.MetricResultCache` — share one audited
eviction implementation instead of re-growing their own.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.storage.database import FrostStore
from repro.telemetry.metrics import get_metrics

__all__ = ["ResultCache", "LruTier", "MISS"]

# Process-wide mirrors of the per-instance counters below, so the
# /metrics endpoint sees engine-cache traffic regardless of which
# engine instance served it.
_CACHE_HITS = get_metrics().counter(
    "frost_engine_cache_hits_total",
    "Engine result-cache hits (memory + store tiers)",
)
_CACHE_MISSES = get_metrics().counter(
    "frost_engine_cache_misses_total", "Engine result-cache misses"
)
_CACHE_PUTS = get_metrics().counter(
    "frost_engine_cache_puts_total", "Engine result-cache inserts"
)
_CACHE_EVICTIONS = get_metrics().counter(
    "frost_engine_cache_evictions_total",
    "Engine result-cache LRU evictions (memory tier)",
)

# Unique sentinel distinguishing "not cached" from any payload.
MISS: object = object()


class LruTier:
    """A bounded mapping with least-recently-used eviction.

    Not thread-safe by itself — callers hold their own lock around
    every method, which lets them update adjacent bookkeeping (counters,
    tag indexes) atomically with the tier.
    """

    def __init__(self, max_entries: int) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, object] = OrderedDict()

    def get(self, key: str) -> object:
        """The value under ``key`` (marked recently used), or :data:`MISS`."""
        if key not in self._entries:
            return MISS
        self._entries.move_to_end(key)
        return self._entries[key]

    def put(self, key: str, value: object) -> list[tuple[str, object]]:
        """Store ``value`` under ``key``; returns the evicted entries.

        The evicted ``(key, value)`` pairs (oldest first) let callers
        clean up side indexes keyed by the same keys.
        """
        self._entries[key] = value
        self._entries.move_to_end(key)
        evicted: list[tuple[str, object]] = []
        while len(self._entries) > self.max_entries:
            evicted.append(self._entries.popitem(last=False))
        return evicted

    def pop(self, key: str) -> object:
        """Remove and return the value under ``key``, or :data:`MISS`."""
        return self._entries.pop(key, MISS)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


class ResultCache:
    """Two-tier (LRU memory + optional SQLite) result cache.

    Parameters
    ----------
    max_entries:
        Capacity of the in-memory tier; least recently used payloads
        are evicted first.  The persistent tier is unbounded.
    store:
        Optional :class:`FrostStore` backing the persistent tier.
    """

    def __init__(
        self, max_entries: int = 512, store: FrostStore | None = None
    ) -> None:
        self.max_entries = max_entries
        self.store = store
        self._memory = LruTier(max_entries)
        self._lock = threading.Lock()
        self.memory_hits = 0
        self.store_hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    def get(self, key: str) -> object:
        """The payload under ``key``, or the :data:`MISS` sentinel."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not MISS:
                self.memory_hits += 1
                _CACHE_HITS.inc()
                return payload
        if self.store is not None:
            payload = self.store.cache_get(key)
            if payload is not None:
                with self._lock:
                    self.store_hits += 1
                    _CACHE_HITS.inc()
                    self._remember(key, payload)
                return payload
        with self._lock:
            self.misses += 1
        _CACHE_MISSES.inc()
        return MISS

    def put(self, key: str, kind: str, payload: object) -> None:
        """Cache ``payload`` (a JSON document) in both tiers."""
        with self._lock:
            self.puts += 1
            self._remember(key, payload)
        _CACHE_PUTS.inc()
        if self.store is not None:
            self.store.cache_put(key, kind, payload)

    def _remember(self, key: str, payload: object) -> None:
        evicted = len(self._memory.put(key, payload))
        self.evictions += evicted
        if evicted:
            _CACHE_EVICTIONS.inc(evicted)

    def clear(self) -> None:
        """Drop both tiers (counters are kept)."""
        with self._lock:
            self._memory.clear()
        if self.store is not None:
            self.store.cache_clear()

    @property
    def hits(self) -> int:
        """Total hits across both tiers."""
        return self.memory_hits + self.store_hits

    def __len__(self) -> int:
        return len(self._memory)

    def stats(self) -> dict[str, int]:
        """Counters as a JSON-serializable dictionary."""
        return {
            "entries": len(self._memory),
            "memory_hits": self.memory_hits,
            "store_hits": self.store_hits,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }
