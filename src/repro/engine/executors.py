"""Shard execution backends for partition-parallel stages.

The matching hot path (:mod:`repro.matching.parallel`) splits its work
into deterministic shards and hands them to a *shard executor* — a
minimal order-preserving ``map`` abstraction with two implementations:

:class:`SerialExecutor`
    Runs every shard inline in the calling thread.  The zero-overhead
    baseline, and the fallback whenever process pools are unavailable
    (sandboxes without ``fork``/semaphores) or not worth their cost.

:class:`ProcessExecutor`
    Fans shards out over a ``concurrent.futures.ProcessPoolExecutor``
    (``forkserver`` start method where available — see
    :func:`_pool_context` for why plain ``fork`` is unsafe under the
    engine's worker threads).  Unlike the engine's thread pool — which
    the GIL limits to interleaving pure-Python work — separate
    processes scale CPU-bound similarity scoring with the core count.
    The pool is created per :meth:`~ProcessExecutor.map` call, so no
    worker processes linger between pipeline runs; the per-call cost
    (tens of milliseconds once the fork server is warm) is what the
    ``min_pairs`` threshold amortizes away.

Both executors preserve task order (``results[i]`` belongs to
``tasks[i]``), which is what lets callers merge shard outputs back into
a deterministic global order.
"""

from __future__ import annotations

import logging
import threading
from collections.abc import Callable, Sequence
from typing import TypeVar

__all__ = [
    "SerialExecutor",
    "ProcessExecutor",
    "executor_for",
    "shared_state",
]

_LOGGER = logging.getLogger(__name__)

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

# Per-worker shared task state.  A process pool ships `shared` to each
# worker exactly once (via the pool initializer) instead of pickling it
# into every task — the shard workers read it back with
# :func:`shared_state`.  Two storage slots keep this safe everywhere:
#
# * pool workers are single-threaded, so the initializer stores into a
#   plain module global that lives for the pool's lifetime;
# * the serial executor runs *inline on the caller's thread* — engine
#   worker threads may run several comparison stages concurrently, so
#   it stores into a ``threading.local`` slot (set/restored around the
#   loop) that cannot bleed into a sibling thread's stage.
#
# :func:`shared_state` prefers the thread-local slot, falling back to
# the worker global.
_worker_shared = None
_thread_shared = threading.local()

_UNSET = object()


def _set_shared_state(value) -> None:
    """Pool-worker initializer: install the per-worker shared value."""
    global _worker_shared
    _worker_shared = value


def shared_state():
    """The ``shared`` value the current executor ships to workers."""
    value = getattr(_thread_shared, "value", _UNSET)
    if value is not _UNSET:
        return value
    return _worker_shared


class SerialExecutor:
    """Run shards inline, in order, on the calling thread."""

    workers = 1

    def map(
        self,
        function: Callable[[_Task], _Result],
        tasks: Sequence[_Task],
        shared=None,
    ) -> list[_Result]:
        """Apply ``function`` to every task; results keep task order."""
        if shared is None:
            return [function(task) for task in tasks]
        previous = getattr(_thread_shared, "value", _UNSET)
        _thread_shared.value = shared
        try:
            return [function(task) for task in tasks]
        finally:
            if previous is _UNSET:
                del _thread_shared.value
            else:
                _thread_shared.value = previous

    def __repr__(self) -> str:
        return "SerialExecutor()"


_pool_context_cache = None


def _pool_context():
    """The multiprocessing start method for shard pools.

    Plain ``fork`` is unsafe here: shard pools are routinely created
    from :class:`~repro.engine.runner.ExperimentEngine` worker threads
    (pipeline jobs, streaming ingests), and forking a multithreaded
    process can clone a lock a sibling thread holds mid-operation —
    the child then deadlocks and ``pool.map`` hangs without raising
    (CPython 3.12 deprecates exactly this pattern, and 3.14 switches
    the Linux default away from it).  ``forkserver`` forks from a
    clean single-threaded server process instead and costs a one-time
    server start per interpreter; preloading the matching package
    there means every worker forks with warm imports.  Platforms
    without ``forkserver`` use ``spawn``.
    """
    global _pool_context_cache
    if _pool_context_cache is None:
        import multiprocessing

        try:
            context = multiprocessing.get_context("forkserver")
            context.set_forkserver_preload(["repro.matching.parallel"])
        except ValueError:
            context = multiprocessing.get_context("spawn")
        _pool_context_cache = context
    return _pool_context_cache


class ProcessExecutor:
    """Run shards on a process pool of ``workers`` processes.

    ``function`` and every task are pickled into the workers, so both
    must be module-level / picklable; ``shared`` (typically the
    comparator) ships once per worker through the pool initializer
    rather than once per task.  When the pool cannot deliver —
    sandboxes without ``fork``/semaphores, unpicklable task state, a
    broken pool — :meth:`map` degrades to the serial path with a
    warning instead of failing the pipeline run: serial output is
    identical, and a *task-level* error (as opposed to a pool-level
    one) reproduces deterministically in the serial re-run with an
    undamaged traceback.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.workers = workers

    def map(
        self,
        function: Callable[[_Task], _Result],
        tasks: Sequence[_Task],
        shared=None,
    ) -> list[_Result]:
        """Apply ``function`` to every task on the pool, keeping order."""
        tasks = list(tasks)
        if not tasks:
            return []
        width = min(self.workers, len(tasks))
        if width == 1:
            return SerialExecutor().map(function, tasks, shared=shared)
        import concurrent.futures

        initializer = None if shared is None else _set_shared_state
        initargs = () if shared is None else (shared,)
        try:
            with concurrent.futures.ProcessPoolExecutor(
                max_workers=width,
                mp_context=_pool_context(),
                initializer=initializer,
                initargs=initargs,
            ) as pool:
                return list(pool.map(function, tasks))
        except Exception as error:
            _LOGGER.warning(
                "process pool failed (%s: %s); running %d shard(s) serially",
                type(error).__name__,
                error,
                len(tasks),
            )
            return SerialExecutor().map(function, tasks, shared=shared)

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.workers})"


def executor_for(workers: int | None):
    """The executor matching a ``workers`` knob.

    ``None`` or ``0`` means "all cores" (``os.cpu_count()``); ``1``
    means serial; anything larger a process pool of that width.
    """
    if workers is None or workers == 0:
        import os

        workers = os.cpu_count() or 1
    if workers == 1:
        return SerialExecutor()
    return ProcessExecutor(workers)
