"""Experiment execution engine: parallel jobs + content-addressed cache.

The engine turns the platform's one-shot evaluations into a serving
layer: declarative :class:`JobSpec` jobs (metrics tables, diagrams,
pipeline runs, batch sweeps) execute on a dependency-ordered worker
pool (:class:`ExperimentEngine`), and results are content-addressed in
a two-tier :class:`ResultCache` so that repeated exploration calls —
the hot path the paper optimizes for — are served from cache instead
of recomputed.

>>> engine = ExperimentEngine(platform)                    # doctest: +SKIP
>>> spec = JobSpec("metrics", {"dataset": "d", "gold": "g"})  # doctest: +SKIP
>>> results = engine.run([spec])                           # doctest: +SKIP
"""

from repro.engine.cache import MISS, ResultCache
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    executor_for,
)
from repro.engine.jobs import (
    JobResult,
    JobSpec,
    JobState,
    content_fingerprint,
    dataset_fingerprint,
    expand_sweep,
    experiment_fingerprint,
    gold_fingerprint,
)
from repro.engine.runner import (
    EngineError,
    ExperimentEngine,
    JobHandler,
    serialize_experiment,
)

__all__ = [
    "MISS",
    "EngineError",
    "ExperimentEngine",
    "JobHandler",
    "JobResult",
    "JobSpec",
    "JobState",
    "ProcessExecutor",
    "ResultCache",
    "SerialExecutor",
    "content_fingerprint",
    "dataset_fingerprint",
    "expand_sweep",
    "executor_for",
    "experiment_fingerprint",
    "gold_fingerprint",
    "serialize_experiment",
]
