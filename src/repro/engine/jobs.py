"""Declarative job specifications for the experiment execution engine.

A :class:`JobSpec` names *what* to compute — a metrics table, a
metric/metric diagram, a matching-pipeline run, or one stage of a
pipeline job graph — without running anything.  Specs are plain data:
they can be built from CLI flags, from JSON request bodies
(``POST /jobs``), or programmatically, and are executed by
:class:`repro.engine.runner.ExperimentEngine`.

The module also provides the *content fingerprints* that make results
content-addressed: a job's cache key is a SHA-256 digest over the kind,
the configuration, and digests of the dataset, gold standard, and
experiment **contents** (not their registry names).  Two jobs that would
compute the same numbers hash to the same key, so renames and platform
restarts still hit the cache.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from enum import Enum
from weakref import WeakKeyDictionary

from repro.core.experiment import Experiment, GoldStandard
from repro.core.records import Dataset

__all__ = [
    "JobSpec",
    "JobState",
    "JobResult",
    "expand_sweep",
    "content_fingerprint",
    "dataset_fingerprint",
    "experiment_fingerprint",
    "gold_fingerprint",
]


class JobState(str, Enum):
    """Lifecycle of a submitted job."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    SKIPPED = "skipped"  # a dependency failed or was cancelled
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobSpec:
    """One unit of work for the engine.

    Attributes
    ----------
    kind:
        Handler name: ``"metrics"``, ``"diagram"``, ``"pipeline"``,
        ``"pipeline_stage"``, or a custom kind registered on the
        engine.
    params:
        Handler parameters.  Datasets, golds, and experiments are
        referenced by their platform names (strings); pipeline jobs may
        carry a :class:`~repro.matching.pipeline.MatchingPipeline`
        object directly.
    job_id:
        Unique id within one engine; auto-assigned at submit time when
        empty.
    depends_on:
        Ids of jobs that must succeed first.  Dependency *values* are
        passed to the handler in this order.
    cacheable:
        Whether the result may be served from / stored into the
        content-addressed cache.
    """

    kind: str
    params: Mapping[str, object] = field(default_factory=dict)
    job_id: str = ""
    depends_on: tuple[str, ...] = ()
    cacheable: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "depends_on", tuple(self.depends_on))

    def with_params(self, **overrides: object) -> "JobSpec":
        """A copy with ``overrides`` merged into :attr:`params`."""
        merged = {**self.params, **overrides}
        return JobSpec(
            kind=self.kind,
            params=merged,
            job_id=self.job_id,
            depends_on=self.depends_on,
            cacheable=self.cacheable,
        )


@dataclass
class JobResult:
    """Terminal (or in-flight) status of one job."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.PENDING
    value: object = None
    error: str | None = None
    cached: bool = False
    cache_key: str | None = None
    seconds: float = 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-serializable summary (value omitted unless terminal)."""
        summary: dict[str, object] = {
            "id": self.job_id,
            "kind": self.spec.kind,
            "state": self.state.value,
            "cached": self.cached,
            "seconds": round(self.seconds, 6),
        }
        if self.error is not None:
            summary["error"] = self.error
        return summary


def expand_sweep(
    base: JobSpec, parameter: str, values: Iterable[object]
) -> list[JobSpec]:
    """Fan a base spec out over a parameter grid (batch sweep).

    Each value yields one job whose id is ``{base id}@{value}``; the
    sweep jobs are independent (no dependencies between them) so the
    scheduler runs them concurrently.

    >>> specs = expand_sweep(
    ...     JobSpec("metrics", {"dataset": "d", "gold": "g"}, job_id="m"),
    ...     "threshold", [0.5, 0.7],
    ... )
    >>> [spec.job_id for spec in specs]
    ['m@0.5', 'm@0.7']
    """
    specs = []
    for value in values:
        spec = base.with_params(**{parameter: value})
        specs.append(
            JobSpec(
                kind=spec.kind,
                params=spec.params,
                job_id=f"{base.job_id}@{value}" if base.job_id else "",
                depends_on=base.depends_on,
                cacheable=base.cacheable,
            )
        )
    return specs


# -- content fingerprints ----------------------------------------------------------

_dataset_memo: "WeakKeyDictionary[Dataset, str]" = WeakKeyDictionary()
_experiment_memo: "WeakKeyDictionary[Experiment, str]" = WeakKeyDictionary()


def _digest(document: object) -> str:
    """SHA-256 over the canonical JSON encoding of ``document``."""
    encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def dataset_fingerprint(dataset: Dataset) -> str:
    """Digest of a dataset's schema and record contents (memoized)."""
    cached = _dataset_memo.get(dataset)
    if cached is None:
        cached = _digest(
            {
                "attributes": list(dataset.attributes),
                "records": [
                    [record.record_id, sorted(record.values.items())]
                    for record in dataset
                ],
            }
        )
        _dataset_memo[dataset] = cached
    return cached


def experiment_fingerprint(experiment: Experiment) -> str:
    """Digest of an experiment's match set, scores included (memoized)."""
    cached = _experiment_memo.get(experiment)
    if cached is None:
        cached = _digest(
            sorted(
                [
                    match.pair[0],
                    match.pair[1],
                    match.score,
                    match.from_clustering,
                ]
                for match in experiment
            )
        )
        _experiment_memo[experiment] = cached
    return cached


def gold_fingerprint(gold: GoldStandard) -> str:
    """Digest of a gold standard's duplicate clusters (memoized).

    :class:`GoldStandard` is an ``eq``-dataclass and thus unhashable,
    so the digest is cached on the instance instead of in a
    ``WeakKeyDictionary`` — without it, every cache-key computation on
    the serving hot path would re-sort and re-hash the full clustering.
    The cache attribute is not a dataclass field, so equality and repr
    are unaffected.
    """
    cached = gold.__dict__.get("_content_fingerprint")
    if cached is None:
        cached = _digest(
            sorted(
                sorted(cluster)
                for cluster in gold.clustering.nontrivial_clusters()
            )
        )
        gold.__dict__["_content_fingerprint"] = cached
    return cached


def content_fingerprint(value: object) -> object:
    """Recursively replace domain objects by their content digests.

    Produces a JSON-serializable token tree for cache-key hashing.
    Callables are tokenized by qualified name — custom decision models
    or preparers should therefore be named functions, not lambdas that
    close over differing constants.
    """
    if isinstance(value, Dataset):
        return {"dataset": dataset_fingerprint(value)}
    if isinstance(value, Experiment):
        return {"experiment": experiment_fingerprint(value)}
    if isinstance(value, GoldStandard):
        return {"gold": gold_fingerprint(value)}
    if isinstance(value, Mapping):
        return {str(k): content_fingerprint(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [content_fingerprint(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if callable(value):
        fingerprinter = getattr(value, "config_fingerprint", None)
        if fingerprinter is not None:
            return fingerprinter()
        qualname = getattr(value, "__qualname__", None)
        if qualname is not None:  # plain functions, classes, methods
            return {"callable": f"{getattr(value, '__module__', '?')}.{qualname}"}
        # callable *instances* (decision models etc.) fall through to
        # the class + attribute-state token below — repr() would embed
        # the memory address, which is neither stable across processes
        # nor unique within one.
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    cls = type(value)
    token = f"{cls.__module__}.{cls.__qualname__}"
    state = getattr(value, "__dict__", None)
    if not isinstance(state, dict):
        state = {
            slot: getattr(value, slot)
            for slot in getattr(cls, "__slots__", ())
            if hasattr(value, slot)
        }
    if state:
        return {
            "object": token,
            "state": {
                str(key): content_fingerprint(item)
                for key, item in sorted(state.items())
            },
        }
    if cls.__repr__ is not object.__repr__:  # address-free custom repr
        return {"object": token, "repr": repr(value)}
    return {"object": token}


def job_cache_key(kind: str, token: object) -> str:
    """The content-addressed cache key of one job computation."""
    return _digest({"kind": kind, "token": content_fingerprint(token)})


_id_counter = itertools.count(1)


def next_job_id(kind: str) -> str:
    """A fresh process-unique job id for specs submitted without one."""
    return f"{kind}-{next(_id_counter)}"


def ensure_unique_ids(specs: Sequence[JobSpec]) -> None:
    """Raise ``ValueError`` when two specs share a non-empty id."""
    seen: set[str] = set()
    for spec in specs:
        if spec.job_id:
            if spec.job_id in seen:
                raise ValueError(f"duplicate job id {spec.job_id!r}")
            seen.add(spec.job_id)
