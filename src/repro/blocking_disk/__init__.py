"""Disk-backed, SQL-pushdown blocking for larger-than-memory corpora.

Persists blocking keys, MinHash signatures, and LSH band buckets into
indexed SQLite tables and generates candidate pairs with SQL self-joins
and window functions, streamed back in bounded chunks — candidate sets
are identical to the in-memory blockers of
:mod:`repro.matching.blocking` / :mod:`repro.matching.lsh`, but Python
memory stays O(chunk) instead of O(corpus).  Flip a
:class:`~repro.matching.pipeline.MatchingPipeline` onto this path with
``blocking_storage="disk"`` (an execution knob: never part of the
config fingerprint), or a streaming session via the
``"blocking_storage"`` config key.
"""

from repro.blocking_disk.blockers import (
    DiskBlockingPlan,
    disk_candidates,
    disk_lsh_blocking,
    disk_sorted_neighborhood,
    disk_standard_blocking,
    disk_token_blocking,
    lsh_plan,
    plan_for_generator,
    run_disk_blocking,
    sorted_neighborhood_plan,
    spill_records,
    standard_plan,
    stream_candidates,
    token_plan,
)
from repro.blocking_disk.incremental import DiskBlockingIndex
from repro.blocking_disk.store import (
    BLOCKING_SCHEMA,
    DEFAULT_CHUNK_SIZE,
    DiskBlockingStore,
)

__all__ = [
    "BLOCKING_SCHEMA",
    "DEFAULT_CHUNK_SIZE",
    "DiskBlockingIndex",
    "DiskBlockingPlan",
    "DiskBlockingStore",
    "disk_candidates",
    "disk_lsh_blocking",
    "disk_sorted_neighborhood",
    "disk_standard_blocking",
    "disk_token_blocking",
    "lsh_plan",
    "plan_for_generator",
    "run_disk_blocking",
    "sorted_neighborhood_plan",
    "spill_records",
    "standard_plan",
    "stream_candidates",
    "token_plan",
]
