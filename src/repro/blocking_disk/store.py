"""SQLite-resident blocking state: keys, signatures, and the pair join.

Every in-memory blocker materializes ``dict[str, list[str]]`` block
membership lists plus the full candidate set in Python memory, so the
corpus size a machine can block is RAM-bound.  :class:`DiskBlockingStore`
keeps that state in indexed SQLite tables instead and pushes the pair
generation down into the storage engine — an equi-self-join over the
membership table for key/bucket schemes, a ``ROW_NUMBER()`` window
function for the sorted-neighborhood method — streaming the result back
in bounded chunks.  Python memory then holds one chunk at a time, no
matter how large the corpus or its blocks are.

The candidate sets are *identical* to the in-memory blockers, by
construction: the same key emitters produce the same ``(block_key,
record_id)`` rows, and SQLite's default BINARY collation compares TEXT
byte-wise, which over UTF-8 equals Python's code-point string order —
so SQL's ``record_id < record_id`` canonicalization and ``ORDER BY
block_key, record_id`` reproduce :func:`repro.core.pairs.make_pair` and
the sorted-neighborhood sort exactly.

The tables live either in a scratch database (default: a temp file,
removed on close) or inside a :class:`~repro.storage.database.FrostStore`
file — they are part of the store schema since ``user_version`` 3, and
older store files migrate in place on open.
"""

from __future__ import annotations

import json
import shutil
import sqlite3
import tempfile
import time
import weakref
from collections.abc import Iterable, Iterator
from itertools import islice
from pathlib import Path

from repro.core.pairs import Pair
from repro.telemetry.metrics import get_metrics

__all__ = ["BLOCKING_SCHEMA", "DiskBlockingStore", "DEFAULT_CHUNK_SIZE"]

# Appended to the FrostStore schema (user_version 3) and bootstrapped
# standalone for scratch stores.  ``entry_id`` aliases SQLite's rowid,
# so block membership keeps its arrival order — the property the
# incremental index's emission cap depends on.
BLOCKING_SCHEMA = """
CREATE TABLE IF NOT EXISTS blocking_runs (
    run_id INTEGER PRIMARY KEY,
    scheme TEXT NOT NULL,
    config TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS blocking_keys (
    entry_id INTEGER PRIMARY KEY,
    run_id INTEGER NOT NULL REFERENCES blocking_runs(run_id),
    block_key TEXT NOT NULL,
    record_id TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_blocking_keys_run_key
    ON blocking_keys(run_id, block_key, record_id);
CREATE TABLE IF NOT EXISTS blocking_signatures (
    run_id INTEGER NOT NULL REFERENCES blocking_runs(run_id),
    record_id TEXT NOT NULL,
    signature BLOB NOT NULL,
    PRIMARY KEY (run_id, record_id)
);
"""

DEFAULT_CHUNK_SIZE = 50_000

_ROWS_SPILLED = get_metrics().counter(
    "frost_blocking_rows_spilled_total",
    "Block-membership rows spilled to the disk blocking store",
)
_CHUNKS_STREAMED = get_metrics().counter(
    "frost_blocking_chunks_total",
    "Candidate chunks streamed back from disk-backed SQL blocking joins",
)
_DISK_RUNS = get_metrics().counter(
    "frost_blocking_disk_runs_total",
    "Blocking runs executed through the disk-backed SQL path",
)

# The equi-self-join: two rows of one block become a candidate pair,
# canonicalized by the BINARY-collation `<` (== Python string order on
# UTF-8 text).  DISTINCT collapses pairs sharing several blocks; the
# ORDER BY makes chunk boundaries deterministic.  Both fold into one
# temp b-tree, which SQLite spills to disk past its page-cache budget.
_EQUI_JOIN = """
SELECT DISTINCT a.record_id, b.record_id
FROM blocking_keys AS a
JOIN blocking_keys AS b
    ON b.run_id = a.run_id
    AND b.block_key = a.block_key
    AND b.record_id > a.record_id
WHERE a.run_id = :run_id{purge_filter}
ORDER BY a.record_id, b.record_id
"""

_PURGE_FILTER = """
    AND a.block_key NOT IN (
        SELECT block_key FROM blocking_keys
        WHERE run_id = :run_id
        GROUP BY block_key
        HAVING COUNT(*) > :max_block_size)
"""

# Sorted-neighborhood pushdown: ROW_NUMBER() over (key, record_id)
# reproduces the tie-broken Python sort, and the position band-join
# pairs each record with its window successors.  Window pairs are not
# id-ordered, so the CASE pair canonicalizes per row.
_WINDOW_JOIN = """
WITH ordered AS (
    SELECT record_id,
           ROW_NUMBER() OVER (ORDER BY block_key, record_id) AS pos
    FROM blocking_keys WHERE run_id = :run_id
)
SELECT
    CASE WHEN a.record_id < b.record_id
         THEN a.record_id ELSE b.record_id END AS first_id,
    CASE WHEN a.record_id < b.record_id
         THEN b.record_id ELSE a.record_id END AS second_id
FROM ordered AS a
JOIN ordered AS b
    ON b.pos > a.pos AND b.pos < a.pos + :window
ORDER BY first_id, second_id
"""


def _cleanup(connection: sqlite3.Connection | None, scratch: str | None) -> None:
    if connection is not None:
        try:
            connection.close()
        except sqlite3.Error:  # pragma: no cover - close() is best-effort
            pass
    if scratch is not None:
        shutil.rmtree(scratch, ignore_errors=True)


class DiskBlockingStore:
    """Owns the blocking tables of one SQLite database.

    Parameters
    ----------
    path:
        Database file to use.  ``None`` (default) creates a scratch
        temp file that is deleted on :meth:`close` (or at garbage
        collection).  Pointing it at a
        :class:`~repro.storage.database.FrostStore` file co-locates
        blocking state with the platform's datasets.
    connection:
        Reuse an existing connection instead of opening one (the
        in-memory FrostStore case — a second connection to
        ``":memory:"`` would see a different database).  Borrowed
        connections are never closed and their durability pragmas are
        left untouched.
    chunk_size:
        Default rows per streamed candidate chunk — the peak number of
        pairs held in Python memory during a join.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        connection: sqlite3.Connection | None = None,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = chunk_size
        scratch = None
        if connection is not None:
            if path is not None:
                raise ValueError("pass either path or connection, not both")
            self._connection = connection
            owned = None
        else:
            if path is None:
                scratch = tempfile.mkdtemp(prefix="frost-blocking-")
                path = Path(scratch) / "blocking.sqlite3"
            self._connection = sqlite3.connect(
                str(path), check_same_thread=False
            )
            owned = self._connection
            # Blocking state is derived data: recompute beats recover,
            # so scratch durability is traded for spill throughput.
            # The page-cache cap keeps the join's memory footprint
            # bounded (temp b-trees past it spill to disk files).
            self._connection.execute("PRAGMA journal_mode=OFF")
            self._connection.execute("PRAGMA synchronous=OFF")
            self._connection.execute("PRAGMA cache_size=-16384")
            self._connection.execute("PRAGMA temp_store=FILE")
        self._connection.executescript(BLOCKING_SCHEMA)
        self._connection.commit()
        self._finalizer = weakref.finalize(self, _cleanup, owned, scratch)

    @property
    def connection(self) -> sqlite3.Connection:
        """The underlying SQLite connection (single-threaded use)."""
        return self._connection

    def close(self) -> None:
        """Close an owned connection and remove a scratch database."""
        self._finalizer()

    def __enter__(self) -> "DiskBlockingStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- runs -------------------------------------------------------------------

    def begin_run(self, scheme: str, config: object = None) -> int:
        """Register one blocking run; returns its ``run_id``."""
        with self._connection:
            cursor = self._connection.execute(
                "INSERT INTO blocking_runs (scheme, config, created_at) "
                "VALUES (?, ?, ?)",
                (scheme, json.dumps(config, sort_keys=True), time.time()),
            )
        _DISK_RUNS.inc()
        return cursor.lastrowid

    def run_info(self, run_id: int) -> dict:
        """Scheme and config of a run (raises ``KeyError`` if unknown)."""
        row = self._connection.execute(
            "SELECT scheme, config FROM blocking_runs WHERE run_id = ?",
            (run_id,),
        ).fetchone()
        if row is None:
            raise KeyError(f"no blocking run {run_id}")
        return {"scheme": row[0], "config": json.loads(row[1])}

    def drop_run(self, run_id: int) -> None:
        """Delete a run's key, signature, and catalog rows."""
        with self._connection:
            self._connection.execute(
                "DELETE FROM blocking_keys WHERE run_id = ?", (run_id,)
            )
            self._connection.execute(
                "DELETE FROM blocking_signatures WHERE run_id = ?", (run_id,)
            )
            self._connection.execute(
                "DELETE FROM blocking_runs WHERE run_id = ?", (run_id,)
            )

    # -- spilling ---------------------------------------------------------------

    def spill_keys(
        self, run_id: int, rows: Iterable[tuple[str, str]]
    ) -> int:
        """Append ``(block_key, record_id)`` rows in bounded batches.

        ``rows`` may be any iterable — a generator over a record stream
        never materializes more than one insert batch in memory.
        Returns the number of rows written.
        """
        total = 0
        iterator = iter(rows)
        while True:
            batch = list(islice(iterator, self.chunk_size))
            if not batch:
                break
            with self._connection:
                self._connection.executemany(
                    "INSERT INTO blocking_keys (run_id, block_key, record_id) "
                    "VALUES (?, ?, ?)",
                    ((run_id, key, record_id) for key, record_id in batch),
                )
            total += len(batch)
        _ROWS_SPILLED.inc(total)
        return total

    def spill_signatures(
        self, run_id: int, rows: Iterable[tuple[str, bytes]]
    ) -> int:
        """Append ``(record_id, packed_signature)`` rows in batches."""
        total = 0
        iterator = iter(rows)
        while True:
            batch = list(islice(iterator, self.chunk_size))
            if not batch:
                break
            with self._connection:
                self._connection.executemany(
                    "INSERT INTO blocking_signatures "
                    "(run_id, record_id, signature) VALUES (?, ?, ?)",
                    ((run_id, record_id, blob) for record_id, blob in batch),
                )
            total += len(batch)
        return total

    def signature(self, run_id: int, record_id: str) -> bytes | None:
        """The persisted MinHash signature blob of one record, if any."""
        row = self._connection.execute(
            "SELECT signature FROM blocking_signatures "
            "WHERE run_id = ? AND record_id = ?",
            (run_id, record_id),
        ).fetchone()
        return None if row is None else row[0]

    def key_count(self, run_id: int) -> int:
        """Number of membership rows spilled for a run."""
        return self._connection.execute(
            "SELECT COUNT(*) FROM blocking_keys WHERE run_id = ?", (run_id,)
        ).fetchone()[0]

    def block_count(self, run_id: int) -> int:
        """Number of distinct block keys of a run."""
        return self._connection.execute(
            "SELECT COUNT(DISTINCT block_key) FROM blocking_keys "
            "WHERE run_id = ?",
            (run_id,),
        ).fetchone()[0]

    # -- the pushed-down joins ---------------------------------------------------

    def purge_stats(
        self, run_id: int, max_block_size: int | None
    ) -> tuple[int, int]:
        """``(blocks, memberships)`` the purge filter will drop."""
        if max_block_size is None:
            return (0, 0)
        blocks, records = self._connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(n), 0) FROM ("
            "    SELECT COUNT(*) AS n FROM blocking_keys"
            "    WHERE run_id = ? GROUP BY block_key HAVING COUNT(*) > ?)",
            (run_id, max_block_size),
        ).fetchone()
        return (blocks, records)

    def iter_candidate_chunks(
        self,
        run_id: int,
        *,
        max_block_size: int | None = None,
        window: int | None = None,
        chunk_size: int | None = None,
    ) -> Iterator[list[Pair]]:
        """Stream a run's candidate pairs in bounded, sorted chunks.

        With ``window`` set the sorted-neighborhood window join runs
        (``max_block_size`` must then be ``None``); otherwise the
        equi-self-join with the optional oversized-block purge filter.
        Each yielded chunk is a sorted list of canonical pairs of at
        most ``chunk_size`` elements — the bounded-memory contract.
        """
        if window is not None:
            if window < 2:
                raise ValueError(f"window must be at least 2, got {window}")
            if max_block_size is not None:
                raise ValueError(
                    "window joins have no block purge; pass max_block_size=None"
                )
            query = _WINDOW_JOIN
            parameters: dict[str, object] = {"run_id": run_id, "window": window}
        else:
            purge_filter = "" if max_block_size is None else _PURGE_FILTER
            query = _EQUI_JOIN.format(purge_filter=purge_filter)
            parameters = {"run_id": run_id}
            if max_block_size is not None:
                parameters["max_block_size"] = max_block_size
        size = chunk_size or self.chunk_size
        cursor = self._connection.execute(query, parameters)
        try:
            while True:
                chunk = cursor.fetchmany(size)
                if not chunk:
                    break
                _CHUNKS_STREAMED.inc()
                yield [(first, second) for first, second in chunk]
        finally:
            cursor.close()

    def candidates(
        self,
        run_id: int,
        *,
        max_block_size: int | None = None,
        window: int | None = None,
    ) -> set[Pair]:
        """A run's full candidate set (chunks folded into one set)."""
        result: set[Pair] = set()
        for chunk in self.iter_candidate_chunks(
            run_id, max_block_size=max_block_size, window=window
        ):
            result.update(chunk)
        return result
