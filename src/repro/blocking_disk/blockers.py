"""Disk-executed counterparts of the batch blockers (SQL pushdown plans).

A :class:`DiskBlockingPlan` describes how one blocking scheme spills
into the :class:`~repro.blocking_disk.store.DiskBlockingStore` tables:
an ``emit`` function mapping each record to its block keys (plus, for
MinHash-LSH, the packed signature blob to persist), the purge cap, and
— for the sorted-neighborhood method — the window the SQL join applies.
:func:`run_disk_blocking` executes a plan end-to-end and returns the
same candidate set the in-memory blocker would, having never held more
than one spill batch and one result chunk in Python memory.

Identity with the in-memory path is by construction, not coincidence:
plans reuse the exact key emitters of the delta-blocking machinery
(:func:`~repro.streaming.delta_blocking.token_keys`,
:func:`~repro.streaming.delta_blocking.single_key`,
:meth:`~repro.matching.lsh.MinHasher.band_keys`), so the ``(block_key,
record_id)`` rows agree row-for-row, and the SQL joins reproduce the
Python pair canonicalization (see :mod:`repro.blocking_disk.store`).

:func:`plan_for_generator` maps a pipeline's candidate generator to its
plan: generators exposing a ``disk_blocking_plan()`` hook (``LshBlocking``,
the streaming config's batch blocker) plan themselves; the bare
:func:`~repro.matching.blocking.token_blocking` function is recognized
by identity; anything else — custom callables, composed blockers —
returns ``None`` and the pipeline falls back to the in-memory path
(with a warning and a ``frost_blocking_disk_fallback_total`` tick),
which is safe because the knob never changes the candidate set.
"""

from __future__ import annotations

import struct
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

from repro.blocking_disk.store import DiskBlockingStore
from repro.core.pairs import Pair
from repro.core.records import Record
from repro.matching.blocking import (
    BlockingKey,
    note_purged_blocks,
    token_blocking,
)
from repro.matching.lsh import LshConfig, MinHasher, record_tokens
from repro.streaming.delta_blocking import single_key, token_keys

__all__ = [
    "DiskBlockingPlan",
    "plan_for_generator",
    "standard_plan",
    "token_plan",
    "sorted_neighborhood_plan",
    "lsh_plan",
    "spill_records",
    "stream_candidates",
    "run_disk_blocking",
    "disk_candidates",
    "disk_standard_blocking",
    "disk_token_blocking",
    "disk_sorted_neighborhood",
    "disk_lsh_blocking",
]

Emit = Callable[[Record], tuple[Sequence[str], bytes | None]]


@dataclass(frozen=True)
class DiskBlockingPlan:
    """How one blocking scheme executes inside the storage engine."""

    scheme: str
    emit: Emit
    max_block_size: int | None = None
    window: int | None = None
    config: Mapping[str, object] = field(default_factory=dict)


def _keys_only(emitter: Callable[[Record], Sequence[str]]) -> Emit:
    def emit(record: Record) -> tuple[Sequence[str], bytes | None]:
        return emitter(record), None

    return emit


def standard_plan(
    key: BlockingKey, config: Mapping[str, object] | None = None
) -> DiskBlockingPlan:
    """Standard key blocking: one row per record, ``None`` keys skipped."""
    return DiskBlockingPlan(
        scheme="standard_blocking",
        emit=_keys_only(single_key(key)),
        config=dict(config or {}),
    )


def token_plan(
    attributes: Iterable[str] | None = None,
    min_token_length: int = 3,
    max_block_size: int | None = 200,
) -> DiskBlockingPlan:
    """Token blocking: one row per (long) token, oversized blocks purged."""
    return DiskBlockingPlan(
        scheme="token_blocking",
        emit=_keys_only(token_keys(attributes, min_token_length)),
        max_block_size=max_block_size,
        config={
            "attributes": list(attributes) if attributes is not None else None,
            "min_token_length": min_token_length,
            "max_block_size": max_block_size,
        },
    )


def sorted_neighborhood_plan(
    key: BlockingKey, window: int = 5
) -> DiskBlockingPlan:
    """Sorted-neighborhood: every record gets exactly one row (``None``
    keys sort first under ``""``), and the window join pairs records by
    their ``ROW_NUMBER()`` position over ``(block_key, record_id)``."""
    if window < 2:
        raise ValueError(f"window must be at least 2, got {window}")

    def emit(record: Record) -> tuple[Sequence[str], bytes | None]:
        return (key(record) or "",), None

    return DiskBlockingPlan(
        scheme="sorted_neighborhood",
        emit=emit,
        window=window,
        config={"window": window},
    )


def lsh_plan(config: LshConfig | None = None) -> DiskBlockingPlan:
    """MinHash-LSH: band-bucket rows plus the packed signature blob.

    Each record is hashed once — the signature feeds both the persisted
    blob (``<num_perm`` unsigned 64-bit little-endian values``>``) and
    the band keys, via
    :meth:`~repro.matching.lsh.MinHasher.band_keys_from_signature`.
    """
    config = config or LshConfig()
    hasher = MinHasher(config)
    packer = struct.Struct(f"<{config.num_perm}Q")

    def emit(record: Record) -> tuple[Sequence[str], bytes | None]:
        tokens = record_tokens(
            record,
            attributes=config.attributes,
            min_token_length=config.min_token_length,
            shingle_size=config.shingle_size,
        )
        signature = hasher.signature(tokens)
        if signature is None:
            return (), None
        return (
            hasher.band_keys_from_signature(signature),
            packer.pack(*signature),
        )

    return DiskBlockingPlan(
        scheme="lsh_blocking",
        emit=emit,
        max_block_size=config.max_block_size,
        config=config.as_dict(),
    )


def plan_for_generator(generator: object) -> DiskBlockingPlan | None:
    """The SQL-pushdown plan of a pipeline candidate generator, if any."""
    planner = getattr(generator, "disk_blocking_plan", None)
    if planner is not None:
        return planner()
    if generator is token_blocking:
        return token_plan()
    return None


# -- execution ------------------------------------------------------------------


def spill_records(
    store: DiskBlockingStore,
    run_id: int,
    plan: DiskBlockingPlan,
    records: Iterable[Record],
) -> int:
    """Spill one record stream's key (and signature) rows; returns rows.

    ``records`` may be a generator — batching happens inside the store,
    so arbitrarily large streams spill in bounded memory.  Callable
    repeatedly for batched corpora (the benchmark generates the corpus
    in slices and frees each one after its spill).
    """
    signatures: list[tuple[str, bytes]] = []

    def rows() -> Iterator[tuple[str, str]]:
        for record in records:
            keys, blob = plan.emit(record)
            if blob is not None:
                signatures.append((record.record_id, blob))
                if len(signatures) >= store.chunk_size:
                    store.spill_signatures(run_id, signatures)
                    signatures.clear()
            for key in keys:
                yield key, record.record_id

    spilled = store.spill_keys(run_id, rows())
    if signatures:
        store.spill_signatures(run_id, signatures)
    return spilled


def stream_candidates(
    store: DiskBlockingStore,
    run_id: int,
    plan: DiskBlockingPlan,
    chunk_size: int | None = None,
) -> Iterator[list[Pair]]:
    """Stream a spilled run's candidate pairs in bounded, sorted chunks.

    Reports the purge pass (counters + one warning) before the join, so
    dropped oversized blocks are observable exactly like on the
    in-memory path.
    """
    purged_blocks, purged_records = store.purge_stats(
        run_id, plan.max_block_size
    )
    note_purged_blocks(f"disk:{plan.scheme}", purged_blocks, purged_records)
    return store.iter_candidate_chunks(
        run_id,
        max_block_size=plan.max_block_size,
        window=plan.window,
        chunk_size=chunk_size,
    )


def run_disk_blocking(
    plan: DiskBlockingPlan,
    records: Iterable[Record],
    store: DiskBlockingStore | None = None,
) -> set[Pair]:
    """Execute a plan end-to-end: spill, join, fold chunks into a set.

    Without ``store`` a scratch database is created and removed — the
    drop-in replacement for calling the in-memory blocker.  The result
    *set* is materialized (downstream scoring needs it); the bounded-
    memory spill/join machinery is reusable piecewise via
    :func:`spill_records` and :func:`stream_candidates` where even the
    candidate set must stay on disk.
    """
    owns = store is None
    store = store or DiskBlockingStore()
    try:
        run_id = store.begin_run(plan.scheme, dict(plan.config))
        spill_records(store, run_id, plan, records)
        candidates: set[Pair] = set()
        for chunk in stream_candidates(store, run_id, plan):
            candidates.update(chunk)
        return candidates
    finally:
        if owns:
            store.close()


def disk_candidates(
    generator: object, dataset: Iterable[Record]
) -> set[Pair] | None:
    """Run a pipeline candidate generator through the disk path, if it
    has a plan; ``None`` signals the caller to fall back in-memory."""
    plan = plan_for_generator(generator)
    if plan is None:
        return None
    return run_disk_blocking(plan, dataset)


# -- direct counterparts of the batch blockers ----------------------------------


def disk_standard_blocking(
    dataset: Iterable[Record],
    key: BlockingKey,
    store: DiskBlockingStore | None = None,
) -> set[Pair]:
    """Disk-executed :func:`~repro.matching.blocking.standard_blocking`."""
    return run_disk_blocking(standard_plan(key), dataset, store=store)


def disk_token_blocking(
    dataset: Iterable[Record],
    attributes: Iterable[str] | None = None,
    min_token_length: int = 3,
    max_block_size: int | None = 200,
    store: DiskBlockingStore | None = None,
) -> set[Pair]:
    """Disk-executed :func:`~repro.matching.blocking.token_blocking`."""
    return run_disk_blocking(
        token_plan(attributes, min_token_length, max_block_size),
        dataset,
        store=store,
    )


def disk_sorted_neighborhood(
    dataset: Iterable[Record],
    key: BlockingKey,
    window: int = 5,
    store: DiskBlockingStore | None = None,
) -> set[Pair]:
    """Disk-executed :func:`~repro.matching.blocking.sorted_neighborhood`
    (the ``ROW_NUMBER()`` window-function join)."""
    return run_disk_blocking(
        sorted_neighborhood_plan(key, window), dataset, store=store
    )


def disk_lsh_blocking(
    dataset: Iterable[Record],
    config: LshConfig | None = None,
    store: DiskBlockingStore | None = None,
) -> set[Pair]:
    """Disk-executed :func:`~repro.matching.lsh.lsh_blocking` — band
    buckets and signatures persisted, the pair join pushed down."""
    return run_disk_blocking(lsh_plan(config), dataset, store=store)
