"""Disk-backed incremental delta blocking for streaming sessions.

:class:`DiskBlockingIndex` is a drop-in
:class:`~repro.streaming.delta_blocking.IncrementalBlockingIndex` whose
block membership lists live in the
:class:`~repro.blocking_disk.store.DiskBlockingStore` tables instead of
a Python ``dict[str, list[str]]``.  Ingest, retract, restore, and the
emission-cap semantics are identical — pair emission consults the
stored members of each touched block (in arrival order, via the rowid-
aliased ``entry_id``), exactly like the in-memory list walk — so the
union of deltas over any ingest split equals the batch candidate set,
the property durable sessions and their resume path are built on.

Only the per-record id set stays in Python memory (O(records) strings,
needed for the duplicate-ingest guard); the O(memberships) block state
— the part that grows with key fan-out — is on disk.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.blocking_disk.store import DiskBlockingStore
from repro.core.pairs import make_pair
from repro.core.records import Record
from repro.streaming.delta_blocking import (
    DeltaIngest,
    IncrementalBlockingIndex,
    KeyEmitter,
)

__all__ = ["DiskBlockingIndex"]


class DiskBlockingIndex(IncrementalBlockingIndex):
    """SQLite-backed live block index emitting delta candidate pairs.

    Parameters
    ----------
    keys_for / max_block_size:
        As for :class:`IncrementalBlockingIndex`.
    store:
        The disk store holding the membership rows.  ``None`` (default)
        creates a private scratch database, removed when the index is
        closed or garbage-collected.
    """

    def __init__(
        self,
        keys_for: KeyEmitter,
        max_block_size: int | None = None,
        store: DiskBlockingStore | None = None,
    ) -> None:
        super().__init__(keys_for, max_block_size)
        self._owns_store = store is None
        self._store = store or DiskBlockingStore()
        self._run_id = self._store.begin_run("incremental", {})
        # the dict the parent allocated stays empty: membership lives
        # in the store's blocking_keys rows
        self._blocks.clear()

    def close(self) -> None:
        """Release a privately-owned scratch store."""
        if self._owns_store:
            self._store.close()

    # -- queries ----------------------------------------------------------------

    @property
    def block_count(self) -> int:
        return self._store.block_count(self._run_id)

    def block_items(self) -> list[tuple[str, str]]:
        return list(
            self._store.connection.execute(
                "SELECT block_key, record_id FROM blocking_keys "
                "WHERE run_id = ? ORDER BY block_key, record_id",
                (self._run_id,),
            )
        )

    def _members(self, key: str) -> list[str]:
        return [
            record_id
            for (record_id,) in self._store.connection.execute(
                "SELECT record_id FROM blocking_keys "
                "WHERE run_id = ? AND block_key = ? ORDER BY entry_id",
                (self._run_id, key),
            )
        ]

    # -- mutation ---------------------------------------------------------------

    def ingest_delta(self, records: Iterable[Record]) -> DeltaIngest:
        emitted = set()
        memberships: list[tuple[str, str]] = []
        record_ids: list[str] = []
        connection = self._store.connection
        # committed in one batch at the end (also on error, mirroring
        # the in-memory index, which keeps earlier rows of a failed
        # ingest too — the session layer owns rollback, via retract())
        try:
            for record in records:
                record_id = record.record_id
                if record_id in self._records:
                    raise ValueError(
                        f"record {record_id!r} is already indexed"
                    )
                self._records.add(record_id)
                record_ids.append(record_id)
                for key in self._keys_for(record):
                    members = self._members(key)
                    if (
                        self.max_block_size is None
                        or len(members) < self.max_block_size
                    ):
                        emitted.update(
                            make_pair(member, record_id) for member in members
                        )
                    connection.execute(
                        "INSERT INTO blocking_keys "
                        "(run_id, block_key, record_id) VALUES (?, ?, ?)",
                        (self._run_id, key, record_id),
                    )
                    memberships.append((key, record_id))
        finally:
            connection.commit()
        return DeltaIngest(
            pairs=sorted(emitted),
            memberships=memberships,
            record_ids=record_ids,
        )

    def retract(self, delta: DeltaIngest) -> None:
        """Undo one :meth:`ingest_delta` (durable-persist rollback).

        A record ingests at most once, so ``(block_key, record_id)``
        identifies exactly the rows that ingest added.
        """
        with self._store.connection as connection:
            connection.executemany(
                "DELETE FROM blocking_keys "
                "WHERE run_id = ? AND block_key = ? AND record_id = ?",
                (
                    (self._run_id, key, record_id)
                    for key, record_id in delta.memberships
                ),
            )
        self._records.difference_update(delta.record_ids)

    def restore(self, memberships: Iterable[tuple[str, str]]) -> None:
        if self._records:
            raise ValueError("restore() requires an empty index")
        rows = list(memberships)
        with self._store.connection as connection:
            connection.executemany(
                "INSERT INTO blocking_keys (run_id, block_key, record_id) "
                "VALUES (?, ?, ?)",
                ((self._run_id, key, record_id) for key, record_id in rows),
            )
        self._records.update(record_id for _, record_id in rows)
