"""SQLite-backed persistent store (Appendix A.3).

Snowman persists datasets and experiments in SQLite "which can be
bundled together with the application" and assigns "a unique numerical
ID to each record, allowing constant time access" at import time.  This
module reproduces that storage design: one SQLite file (or in-memory
database), per-dataset record tables created dynamically, experiments
stored over numeric record ids, and gold standards stored as cluster
assignments.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.core.clustering import Clustering
from repro.core.experiment import Experiment, GoldStandard, Match
from repro.core.pairs import make_pair
from repro.core.records import Dataset, Record

__all__ = ["FrostStore", "StorageError"]


class StorageError(RuntimeError):
    """Raised for storage-level failures (unknown names, collisions)."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS datasets (
    dataset_id INTEGER PRIMARY KEY,
    name TEXT UNIQUE NOT NULL,
    attributes TEXT NOT NULL,
    record_count INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    dataset_id INTEGER NOT NULL REFERENCES datasets(dataset_id),
    numeric_id INTEGER NOT NULL,
    native_id TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (dataset_id, numeric_id)
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_records_native
    ON records(dataset_id, native_id);
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id INTEGER PRIMARY KEY,
    dataset_id INTEGER NOT NULL REFERENCES datasets(dataset_id),
    name TEXT NOT NULL,
    solution TEXT,
    metadata TEXT NOT NULL,
    UNIQUE (dataset_id, name)
);
CREATE TABLE IF NOT EXISTS matches (
    experiment_id INTEGER NOT NULL REFERENCES experiments(experiment_id),
    first_numeric INTEGER NOT NULL,
    second_numeric INTEGER NOT NULL,
    score REAL,
    from_clustering INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (experiment_id, first_numeric, second_numeric)
);
CREATE TABLE IF NOT EXISTS gold_standards (
    gold_id INTEGER PRIMARY KEY,
    dataset_id INTEGER NOT NULL REFERENCES datasets(dataset_id),
    name TEXT NOT NULL,
    UNIQUE (dataset_id, name)
);
CREATE TABLE IF NOT EXISTS gold_assignments (
    gold_id INTEGER NOT NULL REFERENCES gold_standards(gold_id),
    numeric_id INTEGER NOT NULL,
    cluster_index INTEGER NOT NULL,
    PRIMARY KEY (gold_id, numeric_id)
);
CREATE TABLE IF NOT EXISTS result_cache (
    cache_key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    created_at REAL NOT NULL
);
"""


class FrostStore:
    """Persistent store for datasets, experiments, and gold standards.

    Parameters
    ----------
    path:
        SQLite file path, or ``":memory:"`` (default) for an ephemeral
        store.  A single connection is used — Snowman's back-end is
        likewise single-threaded (Appendix A.6) — but writes are
        serialized behind a lock so the store can back the execution
        engine's worker pool (:mod:`repro.engine`).

    Multi-statement writes run inside explicit transactions with
    foreign keys enforced, so a failed import never leaves partial
    rows behind.
    """

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._connection = sqlite3.connect(str(path), check_same_thread=False)
        self._connection.execute("PRAGMA foreign_keys=ON")
        self._connection.executescript(_SCHEMA)
        self._connection.commit()
        self._lock = threading.Lock()

    def close(self) -> None:
        """Close the underlying SQLite connection."""
        self._connection.close()

    def __enter__(self) -> "FrostStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- datasets ---------------------------------------------------------------

    def save_dataset(self, dataset: Dataset) -> int:
        """Persist a dataset; numeric ids are assigned by import order.

        Runs as one transaction: either the dataset row and all record
        rows land, or none do.
        """
        with self._lock, self._connection:
            cursor = self._connection.cursor()
            try:
                cursor.execute(
                    "INSERT INTO datasets (name, attributes, record_count) "
                    "VALUES (?, ?, ?)",
                    (
                        dataset.name,
                        json.dumps(list(dataset.attributes)),
                        len(dataset),
                    ),
                )
            except sqlite3.IntegrityError:
                raise StorageError(
                    f"dataset {dataset.name!r} already stored"
                ) from None
            dataset_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO records (dataset_id, numeric_id, native_id, payload) "
                "VALUES (?, ?, ?, ?)",
                (
                    (
                        dataset_id,
                        numeric_id,
                        record.record_id,
                        json.dumps(dict(record.values)),
                    )
                    for numeric_id, record in enumerate(dataset)
                ),
            )
        return dataset_id

    def load_dataset(self, name: str) -> Dataset:
        """Load a dataset by name (records in original import order)."""
        row = self._connection.execute(
            "SELECT dataset_id, attributes FROM datasets WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no dataset named {name!r}")
        dataset_id, attributes_json = row
        records = [
            Record(record_id=native_id, values=json.loads(payload))
            for native_id, payload in self._connection.execute(
                "SELECT native_id, payload FROM records "
                "WHERE dataset_id = ? ORDER BY numeric_id",
                (dataset_id,),
            )
        ]
        return Dataset(records, name=name, attributes=json.loads(attributes_json))

    def dataset_names(self) -> list[str]:
        """Names of all stored datasets, sorted."""
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM datasets ORDER BY name"
            )
        ]

    def _dataset_id(self, name: str) -> int:
        row = self._connection.execute(
            "SELECT dataset_id FROM datasets WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no dataset named {name!r}")
        return row[0]

    def _numeric_ids(self, dataset_id: int) -> dict[str, int]:
        return {
            native: numeric
            for native, numeric in self._connection.execute(
                "SELECT native_id, numeric_id FROM records WHERE dataset_id = ?",
                (dataset_id,),
            )
        }

    def _native_ids(self, dataset_id: int) -> dict[int, str]:
        return {
            numeric: native
            for native, numeric in self._connection.execute(
                "SELECT native_id, numeric_id FROM records WHERE dataset_id = ?",
                (dataset_id,),
            )
        }

    # -- experiments --------------------------------------------------------------

    def save_experiment(self, dataset_name: str, experiment: Experiment) -> int:
        """Persist an experiment over the dataset's numeric record ids.

        The native→numeric mapping at import time is the Snowman
        optimization: it takes ``O(|Matches| · log|D|)`` and makes all
        later evaluations id-arithmetic only (§5.3).
        """
        dataset_id = self._dataset_id(dataset_name)
        numeric = self._numeric_ids(dataset_id)

        def numeric_pair(match: Match) -> tuple[int, int]:
            try:
                first = numeric[match.pair[0]]
                second = numeric[match.pair[1]]
            except KeyError as missing:
                raise StorageError(
                    f"experiment {experiment.name!r} references unknown "
                    f"record {missing} of dataset {dataset_name!r}"
                ) from None
            return (first, second) if first < second else (second, first)

        with self._lock, self._connection:
            cursor = self._connection.cursor()
            try:
                cursor.execute(
                    "INSERT INTO experiments (dataset_id, name, solution, metadata) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        dataset_id,
                        experiment.name,
                        experiment.solution,
                        json.dumps(experiment.metadata, default=str),
                    ),
                )
            except sqlite3.IntegrityError:
                raise StorageError(
                    f"experiment {experiment.name!r} already stored for "
                    f"dataset {dataset_name!r}"
                ) from None
            experiment_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO matches (experiment_id, first_numeric, second_numeric, "
                "score, from_clustering) VALUES (?, ?, ?, ?, ?)",
                (
                    (
                        experiment_id,
                        *numeric_pair(match),
                        match.score,
                        int(match.from_clustering),
                    )
                    for match in experiment.matches
                ),
            )
        return experiment_id

    def load_experiment(self, dataset_name: str, experiment_name: str) -> Experiment:
        """Load an experiment of a dataset by name."""
        dataset_id = self._dataset_id(dataset_name)
        row = self._connection.execute(
            "SELECT experiment_id, solution, metadata FROM experiments "
            "WHERE dataset_id = ? AND name = ?",
            (dataset_id, experiment_name),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no experiment {experiment_name!r} for dataset {dataset_name!r}"
            )
        experiment_id, solution, metadata_json = row
        native = self._native_ids(dataset_id)
        matches = [
            Match(
                pair=make_pair(native[first], native[second]),
                score=score,
                from_clustering=bool(from_clustering),
            )
            for first, second, score, from_clustering in self._connection.execute(
                "SELECT first_numeric, second_numeric, score, from_clustering "
                "FROM matches WHERE experiment_id = ?",
                (experiment_id,),
            )
        ]
        return Experiment(
            matches,
            name=experiment_name,
            solution=solution,
            metadata=json.loads(metadata_json),
        )

    def experiment_names(self, dataset_name: str) -> list[str]:
        """Names of a dataset's stored experiments, sorted."""
        dataset_id = self._dataset_id(dataset_name)
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM experiments WHERE dataset_id = ? ORDER BY name",
                (dataset_id,),
            )
        ]

    def delete_experiment(self, dataset_name: str, experiment_name: str) -> None:
        """Delete an experiment and its matches."""
        dataset_id = self._dataset_id(dataset_name)
        row = self._connection.execute(
            "SELECT experiment_id FROM experiments WHERE dataset_id = ? AND name = ?",
            (dataset_id, experiment_name),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no experiment {experiment_name!r} for dataset {dataset_name!r}"
            )
        with self._lock, self._connection:
            self._connection.execute(
                "DELETE FROM matches WHERE experiment_id = ?", (row[0],)
            )
            self._connection.execute(
                "DELETE FROM experiments WHERE experiment_id = ?", (row[0],)
            )

    # -- gold standards --------------------------------------------------------------

    def save_gold_standard(self, dataset_name: str, gold: GoldStandard) -> int:
        """Persist a gold standard over the dataset's numeric ids."""
        dataset_id = self._dataset_id(dataset_name)
        numeric = self._numeric_ids(dataset_id)
        rows = []
        for cluster_index, cluster in enumerate(gold.clustering.clusters):
            for record_id in cluster:
                if record_id not in numeric:
                    raise StorageError(
                        f"gold {gold.name!r} references unknown record "
                        f"{record_id!r} of dataset {dataset_name!r}"
                    )
                rows.append((numeric[record_id], cluster_index))
        with self._lock, self._connection:
            cursor = self._connection.cursor()
            try:
                cursor.execute(
                    "INSERT INTO gold_standards (dataset_id, name) VALUES (?, ?)",
                    (dataset_id, gold.name),
                )
            except sqlite3.IntegrityError:
                raise StorageError(
                    f"gold standard {gold.name!r} already stored for "
                    f"dataset {dataset_name!r}"
                ) from None
            gold_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO gold_assignments (gold_id, numeric_id, cluster_index) "
                "VALUES (?, ?, ?)",
                ((gold_id, numeric_id, index) for numeric_id, index in rows),
            )
        return gold_id

    def load_gold_standard(self, dataset_name: str, gold_name: str) -> GoldStandard:
        """Load a gold standard of a dataset by name."""
        dataset_id = self._dataset_id(dataset_name)
        row = self._connection.execute(
            "SELECT gold_id FROM gold_standards WHERE dataset_id = ? AND name = ?",
            (dataset_id, gold_name),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no gold standard {gold_name!r} for dataset {dataset_name!r}"
            )
        native = self._native_ids(dataset_id)
        clusters: dict[int, list[str]] = {}
        for numeric_id, cluster_index in self._connection.execute(
            "SELECT numeric_id, cluster_index FROM gold_assignments WHERE gold_id = ?",
            (row[0],),
        ):
            clusters.setdefault(cluster_index, []).append(native[numeric_id])
        return GoldStandard(clustering=Clustering(clusters.values()), name=gold_name)

    def gold_standard_names(self, dataset_name: str) -> list[str]:
        """Names of a dataset's stored gold standards, sorted."""
        dataset_id = self._dataset_id(dataset_name)
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM gold_standards WHERE dataset_id = ? ORDER BY name",
                (dataset_id,),
            )
        ]

    # -- result cache -------------------------------------------------------------

    def cache_get(self, cache_key: str) -> object | None:
        """The cached payload under ``cache_key``, or ``None`` on a miss.

        Backs the engine's content-addressed result cache
        (:mod:`repro.engine.cache`): keys are digests of dataset +
        config + gold-standard content, payloads are JSON documents.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM result_cache WHERE cache_key = ?",
                (cache_key,),
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def cache_put(self, cache_key: str, kind: str, payload: object) -> None:
        """Persist ``payload`` (JSON-serializable) under ``cache_key``."""
        document = json.dumps(payload)
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO result_cache "
                "(cache_key, kind, payload, created_at) VALUES (?, ?, ?, ?)",
                (cache_key, kind, document, time.time()),
            )

    def cache_entries(self) -> list[tuple[str, str]]:
        """All ``(cache_key, kind)`` rows, oldest first."""
        with self._lock:
            return list(
                self._connection.execute(
                    "SELECT cache_key, kind FROM result_cache ORDER BY created_at"
                )
            )

    def cache_clear(self) -> int:
        """Drop all cached results; returns the number of rows deleted."""
        with self._lock, self._connection:
            cursor = self._connection.execute("DELETE FROM result_cache")
            return cursor.rowcount
