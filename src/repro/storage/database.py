"""SQLite-backed persistent store (Appendix A.3).

Snowman persists datasets and experiments in SQLite "which can be
bundled together with the application" and assigns "a unique numerical
ID to each record, allowing constant time access" at import time.  This
module reproduces that storage design: one SQLite file (or in-memory
database), per-dataset record tables created dynamically, experiments
stored over numeric record ids, and gold standards stored as cluster
assignments.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path

from repro.blocking_disk.store import BLOCKING_SCHEMA, DiskBlockingStore
from repro.core.clustering import Clustering
from repro.core.experiment import Experiment, GoldStandard, Match
from repro.core.notify import ListenerSet
from repro.core.pairs import make_pair
from repro.core.records import Dataset, Record
from repro.telemetry.metrics import get_metrics
from repro.telemetry.store import TELEMETRY_SCHEMA, TelemetryStore

__all__ = ["FrostStore", "StorageError", "SCHEMA_VERSION"]

# Bumped whenever the schema grows new tables.  Every table is created
# with IF NOT EXISTS, so opening an older file migrates it in place:
# the missing tables are added and the version is stamped.  Files
# written by a *newer* schema than this code knows are refused — the
# tables may carry semantics this version would silently corrupt.
#   1: seed .. PR 5 (datasets/experiments/golds/result_cache/streams)
#   2: PR 7 match-graph adjacency tables (graphs/graph_nodes/
#      graph_edges/graph_components)
#   3: PR 9 disk-backed blocking tables (blocking_runs/blocking_keys/
#      blocking_signatures — see repro.blocking_disk)
#   4: PR 10 telemetry warehouse tables (telemetry_runs/telemetry_spans/
#      telemetry_metrics/telemetry_profiles/telemetry_trajectories —
#      see repro.telemetry.store)
SCHEMA_VERSION = 4

# Process-wide connection-pool traffic, feeding GET /metrics.
_CONNECTIONS_OPENED = get_metrics().counter(
    "frost_store_connections_opened_total",
    "SQLite connections opened by store connection pools",
)
_CONNECTIONS_CLOSED = get_metrics().counter(
    "frost_store_connections_closed_total",
    "SQLite connections closed (pruned, drained, or lost races)",
)


class StorageError(RuntimeError):
    """Raised for storage-level failures (unknown names, collisions)."""


_SCHEMA = """
CREATE TABLE IF NOT EXISTS datasets (
    dataset_id INTEGER PRIMARY KEY,
    name TEXT UNIQUE NOT NULL,
    attributes TEXT NOT NULL,
    record_count INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS records (
    dataset_id INTEGER NOT NULL REFERENCES datasets(dataset_id),
    numeric_id INTEGER NOT NULL,
    native_id TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (dataset_id, numeric_id)
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_records_native
    ON records(dataset_id, native_id);
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id INTEGER PRIMARY KEY,
    dataset_id INTEGER NOT NULL REFERENCES datasets(dataset_id),
    name TEXT NOT NULL,
    solution TEXT,
    metadata TEXT NOT NULL,
    UNIQUE (dataset_id, name)
);
CREATE TABLE IF NOT EXISTS matches (
    experiment_id INTEGER NOT NULL REFERENCES experiments(experiment_id),
    first_numeric INTEGER NOT NULL,
    second_numeric INTEGER NOT NULL,
    score REAL,
    from_clustering INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (experiment_id, first_numeric, second_numeric)
);
CREATE TABLE IF NOT EXISTS gold_standards (
    gold_id INTEGER PRIMARY KEY,
    dataset_id INTEGER NOT NULL REFERENCES datasets(dataset_id),
    name TEXT NOT NULL,
    UNIQUE (dataset_id, name)
);
CREATE TABLE IF NOT EXISTS gold_assignments (
    gold_id INTEGER NOT NULL REFERENCES gold_standards(gold_id),
    numeric_id INTEGER NOT NULL,
    cluster_index INTEGER NOT NULL,
    PRIMARY KEY (gold_id, numeric_id)
);
CREATE TABLE IF NOT EXISTS result_cache (
    cache_key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    payload TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS streams (
    stream_id INTEGER PRIMARY KEY,
    name TEXT UNIQUE NOT NULL,
    config TEXT NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS stream_records (
    stream_id INTEGER NOT NULL REFERENCES streams(stream_id),
    numeric_id INTEGER NOT NULL,
    native_id TEXT NOT NULL,
    payload TEXT NOT NULL,
    batch_index INTEGER NOT NULL,
    PRIMARY KEY (stream_id, numeric_id)
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_stream_records_native
    ON stream_records(stream_id, native_id);
CREATE TABLE IF NOT EXISTS stream_blocks (
    stream_id INTEGER NOT NULL REFERENCES streams(stream_id),
    block_key TEXT NOT NULL,
    numeric_id INTEGER NOT NULL,
    PRIMARY KEY (stream_id, block_key, numeric_id)
);
CREATE TABLE IF NOT EXISTS stream_merges (
    stream_id INTEGER NOT NULL REFERENCES streams(stream_id),
    batch_index INTEGER NOT NULL,
    merge_index INTEGER NOT NULL,
    first_numeric INTEGER NOT NULL,
    second_numeric INTEGER NOT NULL,
    score REAL,
    PRIMARY KEY (stream_id, batch_index, merge_index)
);
CREATE TABLE IF NOT EXISTS stream_snapshots (
    stream_id INTEGER NOT NULL REFERENCES streams(stream_id),
    version INTEGER NOT NULL,
    parent_version INTEGER,
    created_at REAL NOT NULL,
    record_count INTEGER NOT NULL,
    cluster_count INTEGER NOT NULL,
    pair_count INTEGER NOT NULL,
    delta_candidates INTEGER NOT NULL,
    accepted_matches INTEGER NOT NULL,
    PRIMARY KEY (stream_id, version)
);
CREATE TABLE IF NOT EXISTS graphs (
    graph_id INTEGER PRIMARY KEY,
    name TEXT UNIQUE NOT NULL,
    threshold REAL NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    batch_count INTEGER NOT NULL DEFAULT 0,
    node_count INTEGER NOT NULL DEFAULT 0,
    edge_count INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS graph_nodes (
    graph_id INTEGER NOT NULL REFERENCES graphs(graph_id),
    node_id INTEGER NOT NULL,
    native_id TEXT NOT NULL,
    PRIMARY KEY (graph_id, node_id)
);
CREATE UNIQUE INDEX IF NOT EXISTS idx_graph_nodes_native
    ON graph_nodes(graph_id, native_id);
CREATE TABLE IF NOT EXISTS graph_edges (
    graph_id INTEGER NOT NULL REFERENCES graphs(graph_id),
    first_node INTEGER NOT NULL,
    second_node INTEGER NOT NULL,
    score REAL NOT NULL,
    accepted INTEGER NOT NULL,
    breakdown TEXT,
    PRIMARY KEY (graph_id, first_node, second_node)
);
CREATE INDEX IF NOT EXISTS idx_graph_edges_second
    ON graph_edges(graph_id, second_node);
CREATE TABLE IF NOT EXISTS graph_components (
    graph_id INTEGER NOT NULL REFERENCES graphs(graph_id),
    node_id INTEGER NOT NULL,
    component INTEGER NOT NULL,
    PRIMARY KEY (graph_id, node_id)
);
CREATE INDEX IF NOT EXISTS idx_graph_components_component
    ON graph_components(graph_id, component);
""" + BLOCKING_SCHEMA + TELEMETRY_SCHEMA


class FrostStore:
    """Persistent store for datasets, experiments, and gold standards.

    Parameters
    ----------
    path:
        SQLite file path, or ``":memory:"`` (default) for an ephemeral
        store.

    Thread safety: file-backed stores hand each thread its **own**
    SQLite connection (created lazily, pooled for :meth:`close`), so
    the multi-threaded HTTP front-end and the engine's worker pool can
    read concurrently without sharing cursors, readers are isolated
    from in-flight write transactions, and writers across connections
    wait on each other through SQLite's busy handler.  In-memory
    stores keep one shared connection — separate connections to
    ``":memory:"`` would each see a private, empty database.  Sharing
    is crash-safe (CPython's ``sqlite3`` serializes statement
    execution, ``sqlite3.threadsafety == 3``) but, as in the original
    single-connection design, same-connection readers are **not**
    isolated from a concurrent multi-statement write transaction —
    production serving should use a file-backed store, which is what
    ``python -m repro serve`` does.  In both modes, multi-statement
    writes serialize behind :attr:`_lock` and run inside explicit
    transactions with foreign keys enforced, so a failed import never
    leaves partial rows behind.
    """

    _BUSY_TIMEOUT_MS = 10_000

    def __init__(self, path: str | Path = ":memory:") -> None:
        self._path = str(path)
        self._in_memory = self._path == ":memory:"
        self._lock = threading.Lock()
        self._local = threading.local()
        self._pool: list[tuple[threading.Thread, sqlite3.Connection]] = []
        self._pool_lock = threading.Lock()
        self._closed = False
        self._graph_listeners = ListenerSet()
        # The creating thread's connection doubles as the schema
        # bootstrapper (and, for :memory:, as the one shared handle).
        connection = self._connect()
        stored_version = connection.execute("PRAGMA user_version").fetchone()[0]
        if stored_version > SCHEMA_VERSION:
            connection.close()
            raise StorageError(
                f"store {self._path!r} uses schema version {stored_version}, "
                f"newer than the supported version {SCHEMA_VERSION}"
            )
        # Every table is IF NOT EXISTS, so pre-existing files (e.g. a
        # store written before the graph tables existed) migrate in
        # place: missing tables are added, present ones are untouched.
        connection.executescript(_SCHEMA)
        if stored_version < SCHEMA_VERSION:
            connection.execute(f"PRAGMA user_version={SCHEMA_VERSION:d}")
        connection.commit()
        if self._in_memory:
            self._shared_connection = connection
        else:
            self._local.connection = connection

    def _connect(self) -> sqlite3.Connection:
        """Open, configure, and pool one SQLite connection."""
        if self._closed:
            raise StorageError(f"store {self._path!r} is closed")
        try:
            connection = sqlite3.connect(self._path, check_same_thread=False)
        except sqlite3.Error as error:
            raise StorageError(
                f"cannot open store {self._path!r}: {error}"
            ) from None
        connection.execute("PRAGMA foreign_keys=ON")
        # Writers on sibling connections hold the file briefly during
        # commits; waiting beats surfacing sqlite3.OperationalError to
        # a concurrent reader thread.
        connection.execute(f"PRAGMA busy_timeout={self._BUSY_TIMEOUT_MS}")
        _CONNECTIONS_OPENED.inc()
        with self._pool_lock:
            if self._closed:
                # lost a race with close(): never pool past the drain
                connection.close()
                _CONNECTIONS_CLOSED.inc()
                raise StorageError(f"store {self._path!r} is closed")
            if not self._in_memory:
                # A thread-per-connection server retires request
                # threads constantly; without pruning, every retired
                # thread's connection stays pinned by the pool forever
                # (EMFILE eventually).  The :memory: store is exempt —
                # its one shared connection must outlive its creator.
                alive = []
                for thread, pooled in self._pool:
                    if thread.is_alive():
                        alive.append((thread, pooled))
                    else:
                        pooled.close()
                        _CONNECTIONS_CLOSED.inc()
                self._pool = alive
            self._pool.append((threading.current_thread(), connection))
        return connection

    @property
    def _connection(self) -> sqlite3.Connection:
        """The calling thread's connection (shared one for :memory:)."""
        if self._closed:
            raise StorageError(f"store {self._path!r} is closed")
        if self._in_memory:
            return self._shared_connection
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = self._connect()
            self._local.connection = connection
        return connection

    def close(self) -> None:
        """Close every pooled connection (all threads' handles)."""
        self._closed = True
        with self._pool_lock:
            entries, self._pool = self._pool, []
        for _, connection in entries:
            connection.close()
        _CONNECTIONS_CLOSED.inc(len(entries))

    def __enter__(self) -> "FrostStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- datasets ---------------------------------------------------------------

    def save_dataset(self, dataset: Dataset) -> int:
        """Persist a dataset; numeric ids are assigned by import order.

        Runs as one transaction: either the dataset row and all record
        rows land, or none do.
        """
        with self._lock, self._connection:
            cursor = self._connection.cursor()
            try:
                cursor.execute(
                    "INSERT INTO datasets (name, attributes, record_count) "
                    "VALUES (?, ?, ?)",
                    (
                        dataset.name,
                        json.dumps(list(dataset.attributes)),
                        len(dataset),
                    ),
                )
            except sqlite3.IntegrityError:
                raise StorageError(
                    f"dataset {dataset.name!r} already stored"
                ) from None
            dataset_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO records (dataset_id, numeric_id, native_id, payload) "
                "VALUES (?, ?, ?, ?)",
                (
                    (
                        dataset_id,
                        numeric_id,
                        record.record_id,
                        json.dumps(dict(record.values)),
                    )
                    for numeric_id, record in enumerate(dataset)
                ),
            )
        return dataset_id

    def load_dataset(self, name: str) -> Dataset:
        """Load a dataset by name (records in original import order)."""
        row = self._connection.execute(
            "SELECT dataset_id, attributes FROM datasets WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no dataset named {name!r}")
        dataset_id, attributes_json = row
        records = [
            Record(record_id=native_id, values=json.loads(payload))
            for native_id, payload in self._connection.execute(
                "SELECT native_id, payload FROM records "
                "WHERE dataset_id = ? ORDER BY numeric_id",
                (dataset_id,),
            )
        ]
        return Dataset(records, name=name, attributes=json.loads(attributes_json))

    def dataset_names(self) -> list[str]:
        """Names of all stored datasets, sorted."""
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM datasets ORDER BY name"
            )
        ]

    def _dataset_id(self, name: str) -> int:
        row = self._connection.execute(
            "SELECT dataset_id FROM datasets WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no dataset named {name!r}")
        return row[0]

    def _numeric_ids(self, dataset_id: int) -> dict[str, int]:
        return {
            native: numeric
            for native, numeric in self._connection.execute(
                "SELECT native_id, numeric_id FROM records WHERE dataset_id = ?",
                (dataset_id,),
            )
        }

    def _native_ids(self, dataset_id: int) -> dict[int, str]:
        return {
            numeric: native
            for native, numeric in self._connection.execute(
                "SELECT native_id, numeric_id FROM records WHERE dataset_id = ?",
                (dataset_id,),
            )
        }

    # -- experiments --------------------------------------------------------------

    def save_experiment(self, dataset_name: str, experiment: Experiment) -> int:
        """Persist an experiment over the dataset's numeric record ids.

        The native→numeric mapping at import time is the Snowman
        optimization: it takes ``O(|Matches| · log|D|)`` and makes all
        later evaluations id-arithmetic only (§5.3).
        """
        dataset_id = self._dataset_id(dataset_name)
        numeric = self._numeric_ids(dataset_id)

        def numeric_pair(match: Match) -> tuple[int, int]:
            try:
                first = numeric[match.pair[0]]
                second = numeric[match.pair[1]]
            except KeyError as missing:
                raise StorageError(
                    f"experiment {experiment.name!r} references unknown "
                    f"record {missing} of dataset {dataset_name!r}"
                ) from None
            return (first, second) if first < second else (second, first)

        with self._lock, self._connection:
            cursor = self._connection.cursor()
            try:
                cursor.execute(
                    "INSERT INTO experiments (dataset_id, name, solution, metadata) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        dataset_id,
                        experiment.name,
                        experiment.solution,
                        json.dumps(experiment.metadata, default=str),
                    ),
                )
            except sqlite3.IntegrityError:
                raise StorageError(
                    f"experiment {experiment.name!r} already stored for "
                    f"dataset {dataset_name!r}"
                ) from None
            experiment_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO matches (experiment_id, first_numeric, second_numeric, "
                "score, from_clustering) VALUES (?, ?, ?, ?, ?)",
                (
                    (
                        experiment_id,
                        *numeric_pair(match),
                        match.score,
                        int(match.from_clustering),
                    )
                    for match in experiment.matches
                ),
            )
        return experiment_id

    def load_experiment(self, dataset_name: str, experiment_name: str) -> Experiment:
        """Load an experiment of a dataset by name."""
        dataset_id = self._dataset_id(dataset_name)
        row = self._connection.execute(
            "SELECT experiment_id, solution, metadata FROM experiments "
            "WHERE dataset_id = ? AND name = ?",
            (dataset_id, experiment_name),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no experiment {experiment_name!r} for dataset {dataset_name!r}"
            )
        experiment_id, solution, metadata_json = row
        native = self._native_ids(dataset_id)
        matches = [
            Match(
                pair=make_pair(native[first], native[second]),
                score=score,
                from_clustering=bool(from_clustering),
            )
            for first, second, score, from_clustering in self._connection.execute(
                "SELECT first_numeric, second_numeric, score, from_clustering "
                "FROM matches WHERE experiment_id = ?",
                (experiment_id,),
            )
        ]
        return Experiment(
            matches,
            name=experiment_name,
            solution=solution,
            metadata=json.loads(metadata_json),
        )

    def experiment_names(self, dataset_name: str) -> list[str]:
        """Names of a dataset's stored experiments, sorted."""
        dataset_id = self._dataset_id(dataset_name)
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM experiments WHERE dataset_id = ? ORDER BY name",
                (dataset_id,),
            )
        ]

    def delete_experiment(self, dataset_name: str, experiment_name: str) -> None:
        """Delete an experiment and its matches."""
        dataset_id = self._dataset_id(dataset_name)
        row = self._connection.execute(
            "SELECT experiment_id FROM experiments WHERE dataset_id = ? AND name = ?",
            (dataset_id, experiment_name),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no experiment {experiment_name!r} for dataset {dataset_name!r}"
            )
        with self._lock, self._connection:
            self._connection.execute(
                "DELETE FROM matches WHERE experiment_id = ?", (row[0],)
            )
            self._connection.execute(
                "DELETE FROM experiments WHERE experiment_id = ?", (row[0],)
            )

    # -- gold standards --------------------------------------------------------------

    def save_gold_standard(self, dataset_name: str, gold: GoldStandard) -> int:
        """Persist a gold standard over the dataset's numeric ids."""
        dataset_id = self._dataset_id(dataset_name)
        numeric = self._numeric_ids(dataset_id)
        rows = []
        for cluster_index, cluster in enumerate(gold.clustering.clusters):
            for record_id in cluster:
                if record_id not in numeric:
                    raise StorageError(
                        f"gold {gold.name!r} references unknown record "
                        f"{record_id!r} of dataset {dataset_name!r}"
                    )
                rows.append((numeric[record_id], cluster_index))
        with self._lock, self._connection:
            cursor = self._connection.cursor()
            try:
                cursor.execute(
                    "INSERT INTO gold_standards (dataset_id, name) VALUES (?, ?)",
                    (dataset_id, gold.name),
                )
            except sqlite3.IntegrityError:
                raise StorageError(
                    f"gold standard {gold.name!r} already stored for "
                    f"dataset {dataset_name!r}"
                ) from None
            gold_id = cursor.lastrowid
            cursor.executemany(
                "INSERT INTO gold_assignments (gold_id, numeric_id, cluster_index) "
                "VALUES (?, ?, ?)",
                ((gold_id, numeric_id, index) for numeric_id, index in rows),
            )
        return gold_id

    def load_gold_standard(self, dataset_name: str, gold_name: str) -> GoldStandard:
        """Load a gold standard of a dataset by name."""
        dataset_id = self._dataset_id(dataset_name)
        row = self._connection.execute(
            "SELECT gold_id FROM gold_standards WHERE dataset_id = ? AND name = ?",
            (dataset_id, gold_name),
        ).fetchone()
        if row is None:
            raise StorageError(
                f"no gold standard {gold_name!r} for dataset {dataset_name!r}"
            )
        native = self._native_ids(dataset_id)
        clusters: dict[int, list[str]] = {}
        for numeric_id, cluster_index in self._connection.execute(
            "SELECT numeric_id, cluster_index FROM gold_assignments WHERE gold_id = ?",
            (row[0],),
        ):
            clusters.setdefault(cluster_index, []).append(native[numeric_id])
        return GoldStandard(clustering=Clustering(clusters.values()), name=gold_name)

    def gold_standard_names(self, dataset_name: str) -> list[str]:
        """Names of a dataset's stored gold standards, sorted."""
        dataset_id = self._dataset_id(dataset_name)
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM gold_standards WHERE dataset_id = ? ORDER BY name",
                (dataset_id,),
            )
        ]

    # -- result cache -------------------------------------------------------------

    def cache_get(self, cache_key: str) -> object | None:
        """The cached payload under ``cache_key``, or ``None`` on a miss.

        Backs the engine's content-addressed result cache
        (:mod:`repro.engine.cache`): keys are digests of dataset +
        config + gold-standard content, payloads are JSON documents.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT payload FROM result_cache WHERE cache_key = ?",
                (cache_key,),
            ).fetchone()
        return None if row is None else json.loads(row[0])

    def cache_put(self, cache_key: str, kind: str, payload: object) -> None:
        """Persist ``payload`` (JSON-serializable) under ``cache_key``."""
        document = json.dumps(payload)
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO result_cache "
                "(cache_key, kind, payload, created_at) VALUES (?, ?, ?, ?)",
                (cache_key, kind, document, time.time()),
            )

    def cache_entries(self) -> list[tuple[str, str]]:
        """All ``(cache_key, kind)`` rows, oldest first."""
        with self._lock:
            return list(
                self._connection.execute(
                    "SELECT cache_key, kind FROM result_cache ORDER BY created_at"
                )
            )

    def cache_clear(self) -> int:
        """Drop all cached results; returns the number of rows deleted."""
        with self._lock, self._connection:
            cursor = self._connection.execute("DELETE FROM result_cache")
            return cursor.rowcount

    # -- streaming sessions --------------------------------------------------------

    def create_stream(self, name: str, config: object) -> int:
        """Register a durable streaming session under ``name``.

        ``config`` is the JSON document a
        :class:`~repro.streaming.StreamingMatcher` can be rebuilt from
        (see :mod:`repro.streaming.config`).
        """
        with self._lock, self._connection:
            try:
                cursor = self._connection.execute(
                    "INSERT INTO streams (name, config, created_at) "
                    "VALUES (?, ?, ?)",
                    (name, json.dumps(config), time.time()),
                )
            except sqlite3.IntegrityError:
                raise StorageError(f"stream {name!r} already stored") from None
            return cursor.lastrowid

    def stream_names(self) -> list[str]:
        """Names of all stored streams, sorted."""
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM streams ORDER BY name"
            )
        ]

    def _stream_id(self, name: str) -> int:
        row = self._connection.execute(
            "SELECT stream_id FROM streams WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no stream named {name!r}")
        return row[0]

    def stream_config(self, name: str) -> dict:
        """The stored session config of stream ``name``."""
        row = self._connection.execute(
            "SELECT config FROM streams WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no stream named {name!r}")
        return json.loads(row[0])

    def append_stream_batch(
        self,
        name: str,
        batch_index: int,
        records: list[tuple[int, str, dict]],
        blocks: list[tuple[str, int]],
        merges: list[tuple[int, int, float | None]],
        snapshot: dict,
    ) -> None:
        """Persist one ingest atomically: records, blocks, merges, snapshot.

        ``records`` rows are ``(numeric_id, native_id, payload)``,
        ``blocks`` rows ``(block_key, numeric_id)`` (only the *delta*
        memberships of this batch), ``merges`` rows
        ``(first_numeric, second_numeric, score)`` — the accepted-match
        merge log — and ``snapshot`` the versioned summary produced by
        the session.  Either the whole batch lands or none of it, so a
        crashed ingest never leaves a stream half-written.
        """
        with self._lock, self._connection:
            stream_id = self._stream_id(name)
            try:
                self._connection.executemany(
                    "INSERT INTO stream_records "
                    "(stream_id, numeric_id, native_id, payload, batch_index) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (
                        (stream_id, numeric_id, native_id, json.dumps(payload),
                         batch_index)
                        for numeric_id, native_id, payload in records
                    ),
                )
                self._connection.executemany(
                    "INSERT INTO stream_blocks "
                    "(stream_id, block_key, numeric_id) VALUES (?, ?, ?)",
                    (
                        (stream_id, block_key, numeric_id)
                        for block_key, numeric_id in blocks
                    ),
                )
                self._connection.executemany(
                    "INSERT INTO stream_merges (stream_id, batch_index, "
                    "merge_index, first_numeric, second_numeric, score) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        (stream_id, batch_index, merge_index, first, second,
                         score)
                        for merge_index, (first, second, score)
                        in enumerate(merges)
                    ),
                )
                self._connection.execute(
                    "INSERT INTO stream_snapshots (stream_id, version, "
                    "parent_version, created_at, record_count, cluster_count, "
                    "pair_count, delta_candidates, accepted_matches) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        stream_id,
                        snapshot["version"],
                        snapshot["parent_version"],
                        time.time(),
                        snapshot["record_count"],
                        snapshot["cluster_count"],
                        snapshot["pair_count"],
                        snapshot["delta_candidates"],
                        snapshot["accepted_matches"],
                    ),
                )
            except sqlite3.IntegrityError as collision:
                raise StorageError(
                    f"stream {name!r}: batch {batch_index} collides with "
                    f"stored state ({collision})"
                ) from None

    def load_stream(self, name: str) -> dict:
        """Everything needed to resume stream ``name`` as one document.

        Returns ``config``, ``records`` rows
        ``(numeric_id, native_id, payload)`` ordered by numeric id,
        ``blocks`` rows ``(block_key, numeric_id)``, ``merges`` rows
        ``(batch_index, first_numeric, second_numeric, score)`` in
        ingest order, and ``snapshots`` as keyword-ready dictionaries,
        oldest first.
        """
        stream_id = self._stream_id(name)
        records = [
            (numeric_id, native_id, json.loads(payload))
            for numeric_id, native_id, payload in self._connection.execute(
                "SELECT numeric_id, native_id, payload FROM stream_records "
                "WHERE stream_id = ? ORDER BY numeric_id",
                (stream_id,),
            )
        ]
        blocks = list(
            self._connection.execute(
                "SELECT block_key, numeric_id FROM stream_blocks "
                "WHERE stream_id = ? ORDER BY block_key, numeric_id",
                (stream_id,),
            )
        )
        merges = list(
            self._connection.execute(
                "SELECT batch_index, first_numeric, second_numeric, score "
                "FROM stream_merges WHERE stream_id = ? "
                "ORDER BY batch_index, merge_index",
                (stream_id,),
            )
        )
        return {
            "config": self.stream_config(name),
            "records": records,
            "blocks": blocks,
            "merges": merges,
            "snapshots": self.stream_snapshot_lineage(name),
        }

    # -- match graphs --------------------------------------------------------------

    @property
    def schema_version(self) -> int:
        """The schema version stamped into this store file."""
        return self._connection.execute("PRAGMA user_version").fetchone()[0]

    def blocking_store(self) -> DiskBlockingStore:
        """A disk-blocking view over this store's blocking tables.

        Blocking runs spilled through it live next to the datasets
        (schema version 3), so a platform store file carries its own
        reproducible blocking state.  The view borrows the calling
        thread's connection — closing it never closes the store.
        """
        return DiskBlockingStore(connection=self._connection)

    def telemetry_store(self, max_runs: int | None = None) -> TelemetryStore:
        """A telemetry-warehouse view over this store's telemetry tables.

        Traces recorded through it live next to the data they measured
        (schema version 4), so a platform store file carries its own
        performance history.  The view borrows the calling thread's
        connection — closing it never closes the store.
        """
        return TelemetryStore(connection=self._connection, max_runs=max_runs)

    def subscribe_graph(self, listener) -> None:
        """Call ``listener(graph_name)`` after every graph write.

        The graph counterpart of :meth:`FrostPlatform.subscribe`: the
        serving layer subscribes here so a streaming ingest (or any
        other graph write) invalidates the graph's cached traversal
        payloads before the next read.  Bound methods are held weakly.
        """
        self._graph_listeners.subscribe(listener)

    def create_graph(self, name: str, threshold: float) -> int:
        """Register an empty match graph under ``name``."""
        with self._lock, self._connection:
            try:
                cursor = self._connection.execute(
                    "INSERT INTO graphs (name, threshold, created_at, "
                    "updated_at) VALUES (?, ?, ?, ?)",
                    (name, float(threshold), time.time(), time.time()),
                )
            except sqlite3.IntegrityError:
                raise StorageError(f"graph {name!r} already stored") from None
            graph_id = cursor.lastrowid
        self._graph_listeners.notify(name)
        return graph_id

    def delete_graph(self, name: str) -> None:
        """Drop a graph and all its nodes, edges, and components."""
        with self._lock, self._connection:
            graph_id = self._graph_id(name)
            for table in ("graph_components", "graph_edges", "graph_nodes"):
                self._connection.execute(
                    f"DELETE FROM {table} WHERE graph_id = ?", (graph_id,)
                )
            self._connection.execute(
                "DELETE FROM graphs WHERE graph_id = ?", (graph_id,)
            )
        self._graph_listeners.notify(name)

    def graph_names(self) -> list[str]:
        """Names of all stored graphs, sorted."""
        return [
            name
            for (name,) in self._connection.execute(
                "SELECT name FROM graphs ORDER BY name"
            )
        ]

    def _graph_id(self, name: str) -> int:
        row = self._connection.execute(
            "SELECT graph_id FROM graphs WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise StorageError(f"no graph named {name!r}")
        return row[0]

    def graph_meta(self, name: str) -> dict:
        """Summary row of graph ``name`` (threshold, counts, timestamps)."""
        row = self._connection.execute(
            "SELECT threshold, created_at, updated_at, batch_count, "
            "node_count, edge_count FROM graphs WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None:
            raise StorageError(f"no graph named {name!r}")
        threshold, created_at, updated_at, batches, nodes, edges = row
        return {
            "name": name,
            "threshold": threshold,
            "created_at": created_at,
            "updated_at": updated_at,
            "batch_count": batches,
            "node_count": nodes,
            "edge_count": edges,
        }

    def append_graph_batch(
        self,
        name: str,
        nodes: list[tuple[int, str]],
        edges: list[tuple[int, int, float, bool, str | None]],
        components: list[tuple[int, int]],
    ) -> None:
        """Persist one graph delta atomically: nodes, edges, relabels.

        ``nodes`` rows are ``(node_id, native_id)``, ``edges`` rows
        ``(first_node, second_node, score, accepted, breakdown_json)``
        with ``first_node < second_node``, and ``components`` rows
        ``(node_id, component)`` — the membership assignments this
        batch *changed* (new singletons and every node whose component
        label moved), replacing any previous label.  Either the whole
        delta lands or none of it.
        """
        with self._lock, self._connection:
            graph_id = self._graph_id(name)
            try:
                self._connection.executemany(
                    "INSERT INTO graph_nodes (graph_id, node_id, native_id) "
                    "VALUES (?, ?, ?)",
                    ((graph_id, node_id, native) for node_id, native in nodes),
                )
                self._connection.executemany(
                    "INSERT INTO graph_edges (graph_id, first_node, "
                    "second_node, score, accepted, breakdown) "
                    "VALUES (?, ?, ?, ?, ?, ?)",
                    (
                        (graph_id, first, second, score, int(accepted),
                         breakdown)
                        for first, second, score, accepted, breakdown in edges
                    ),
                )
            except sqlite3.IntegrityError as collision:
                raise StorageError(
                    f"graph {name!r}: batch collides with stored state "
                    f"({collision})"
                ) from None
            self._connection.executemany(
                "INSERT OR REPLACE INTO graph_components "
                "(graph_id, node_id, component) VALUES (?, ?, ?)",
                (
                    (graph_id, node_id, component)
                    for node_id, component in components
                ),
            )
            self._connection.execute(
                "UPDATE graphs SET updated_at = ?, batch_count = batch_count "
                "+ 1, node_count = node_count + ?, edge_count = edge_count "
                "+ ? WHERE graph_id = ?",
                (time.time(), len(nodes), len(edges), graph_id),
            )
        self._graph_listeners.notify(name)

    def load_graph(self, name: str) -> dict:
        """Everything stored for graph ``name`` as one document.

        Returns ``meta`` (see :meth:`graph_meta`), ``nodes`` rows
        ``(node_id, native_id)`` ordered by node id, ``edges`` rows
        ``(first_node, second_node, score, accepted, breakdown_json)``
        in canonical pair order, and ``components`` rows
        ``(node_id, component)``.
        """
        meta = self.graph_meta(name)
        graph_id = self._graph_id(name)
        nodes = list(
            self._connection.execute(
                "SELECT node_id, native_id FROM graph_nodes "
                "WHERE graph_id = ? ORDER BY node_id",
                (graph_id,),
            )
        )
        edges = [
            (first, second, score, bool(accepted), breakdown)
            for first, second, score, accepted, breakdown
            in self._connection.execute(
                "SELECT first_node, second_node, score, accepted, breakdown "
                "FROM graph_edges WHERE graph_id = ? "
                "ORDER BY first_node, second_node",
                (graph_id,),
            )
        ]
        components = list(
            self._connection.execute(
                "SELECT node_id, component FROM graph_components "
                "WHERE graph_id = ? ORDER BY node_id",
                (graph_id,),
            )
        )
        return {
            "meta": meta,
            "nodes": nodes,
            "edges": edges,
            "components": components,
        }

    def stream_snapshot_lineage(self, name: str) -> list[dict]:
        """The snapshot lineage of stream ``name``, oldest first."""
        stream_id = self._stream_id(name)
        return [
            {
                "version": version,
                "parent_version": parent_version,
                "record_count": record_count,
                "cluster_count": cluster_count,
                "pair_count": pair_count,
                "delta_candidates": delta_candidates,
                "accepted_matches": accepted_matches,
            }
            for version, parent_version, record_count, cluster_count,
            pair_count, delta_candidates, accepted_matches
            in self._connection.execute(
                "SELECT version, parent_version, record_count, cluster_count, "
                "pair_count, delta_candidates, accepted_matches "
                "FROM stream_snapshots WHERE stream_id = ? ORDER BY version",
                (stream_id,),
            )
        ]
