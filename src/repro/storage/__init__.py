"""SQLite persistence for datasets, experiments, and gold standards."""

from repro.storage.database import FrostStore, StorageError

__all__ = ["FrostStore", "StorageError"]
