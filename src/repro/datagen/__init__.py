"""Synthetic benchmark-data generation.

Replaces the paper's real-world artifacts (Cora, FreeDB CDs, Magellan
Songs, SIGMOD 2021 contest data) with calibrated generators — see
DESIGN.md §3 for the substitution rationale.
"""

from repro.datagen.corruption import CorruptionModel, DEFAULT_CORRUPTORS
from repro.datagen.domains import (
    make_cora_like_benchmark,
    make_freedb_like_benchmark,
    make_person_benchmark,
    make_songs_like_benchmark,
    make_x4_like_benchmark,
)
from repro.datagen.generator import (
    DirtyDatasetGenerator,
    GeneratedBenchmark,
    cluster_sizes_fixed,
    cluster_sizes_zipf,
    scored_benchmark_experiment,
)
from repro.datagen.sigmod import (
    LabeledPairs,
    SigmodContestData,
    SigmodSplit,
    make_sigmod_contest,
)

__all__ = [
    "CorruptionModel",
    "DEFAULT_CORRUPTORS",
    "DirtyDatasetGenerator",
    "GeneratedBenchmark",
    "LabeledPairs",
    "SigmodContestData",
    "SigmodSplit",
    "cluster_sizes_fixed",
    "cluster_sizes_zipf",
    "make_cora_like_benchmark",
    "make_freedb_like_benchmark",
    "make_person_benchmark",
    "make_sigmod_contest",
    "make_songs_like_benchmark",
    "make_x4_like_benchmark",
    "scored_benchmark_experiment",
]
