"""Synthetic stand-ins for the ACM SIGMOD 2021 contest datasets.

The contest's notebook datasets D2 ("Notebook") and D3 ("Notebook
large") with their train/test splits X2/Z2 and X3/Z3 are not available
offline.  This module generates calibrated substitutes whose *profiles*
match Table 2 of the paper:

==========  =======  =======  =======  =======
profile      X2       Z2       X3       Z3
==========  =======  =======  =======  =======
sparsity     11.1%    19.7%    50.1%    42.6%
textuality   28.0     23.7     15.5     15.4
positive     2.2%     3.6%     2.2%     12.1%
vocab sim        59.0%            37.7%
==========  =======  =======  =======  =======

Sparsity and textuality are controlled directly by the generator;
vocabulary similarity is controlled by partially disjoint marketing
vocabularies between the train and test splits; the positive ratio is
defined over the *labeled pair sets* the splits ship (as in the
contest, whose ground truth is a labeled pair list).  Record counts
default to 1/20 of the originals so the full study runs on a laptop;
pass ``scale=1.0`` for paper-size datasets.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.experiment import GoldStandard
from repro.core.pairs import Pair, make_pair
from repro.core.records import Dataset
from repro.datagen import vocab
from repro.datagen.corruption import CorruptionModel
from repro.datagen.generator import DirtyDatasetGenerator, cluster_sizes_zipf

__all__ = ["LabeledPairs", "SigmodSplit", "SigmodContestData", "make_sigmod_contest"]

# extended marketing vocabulary, deterministically partitioned between
# the splits to control vocabulary similarity.  The pool must be large
# relative to the corruption-generated token noise, otherwise unique
# typo variants dominate the vocabulary union and wash the control out.
_SUFFIXES = (
    "", "s", "ed", "ing", "x", "z", "2", "9", "er", "est", "ly", "o",
    "pro", "max", "lite", "hd",
)
_EXTRA_WORDS = [
    f"{word}{suffix}" for word in vocab.MARKETING_WORDS for suffix in _SUFFIXES
] + [
    f"{first}{second}"
    for first in vocab.MARKETING_WORDS
    for second in ("deal", "shop", "store", "item", "sale", "buy", "top", "hot")
]


@dataclass
class LabeledPairs:
    """A labeled pair set: the contest's development data format."""

    pairs: list[tuple[Pair, bool]]

    @property
    def positive_ratio(self) -> float:
        """Fraction of labeled pairs that are duplicates."""
        if not self.pairs:
            return 0.0
        positives = sum(1 for _, label in self.pairs if label)
        return positives / len(self.pairs)

    def positives(self) -> list[Pair]:
        """The duplicate pairs among the labeled pairs."""
        return [pair for pair, label in self.pairs if label]


@dataclass
class SigmodSplit:
    """One train or test split: dataset + gold + labeled pairs."""

    dataset: Dataset
    gold: GoldStandard
    labeled: LabeledPairs


@dataclass
class SigmodContestData:
    """The full synthetic contest: D2 and D3, each with train and test."""

    x2: SigmodSplit
    z2: SigmodSplit
    x3: SigmodSplit
    z3: SigmodSplit

    def split(self, name: str) -> SigmodSplit:
        """Look up a split by name (x2/z2/x3/z3)."""
        try:
            return {"x2": self.x2, "z2": self.z2, "x3": self.x3, "z3": self.z3}[
                name.lower()
            ]
        except KeyError:
            raise KeyError(f"unknown split {name!r}; use x2/z2/x3/z3") from None


def _notebook_factory(
    word_pool: Sequence[str], words_per_value: int
):
    """Notebook-offer entity factory with controlled textuality.

    ``words_per_value`` tunes the average token count of attribute
    values (the TX profile dimension): filler tokens from ``word_pool``
    pad the title and description up to the target.
    """

    def factory(rng: random.Random) -> dict[str, str | None]:
        brand = rng.choice(vocab.LAPTOP_BRANDS)
        series = rng.choice(vocab.LAPTOP_SERIES)
        cpu = rng.choice(vocab.CPU_MODELS)
        ram = rng.choice(vocab.RAM_SIZES)
        storage = rng.choice(vocab.STORAGE)
        screen = rng.choice(vocab.SCREEN_SIZES)
        model_number = f"{series[:2]}{rng.randrange(100, 9999)}"

        def padded(core: list[str], target: int) -> str:
            tokens = list(core)
            while len(tokens) < target:
                tokens.append(rng.choice(word_pool))
            rng.shuffle(tokens)
            return " ".join(tokens)

        core_title = [
            brand, series, model_number, cpu, f"{ram}gb", storage,
            f"{screen} inch",
        ]
        # title and description carry the bulk of the textuality; short
        # structured attributes pull the average down, so they overshoot
        title_target = max(len(core_title), int(words_per_value * 2.6))
        description_target = max(4, int(words_per_value * 3.4))
        return {
            "title": padded(core_title, title_target),
            "brand": brand,
            "cpu": cpu,
            "ram": f"{ram} gb",
            "hdd": storage,
            "screen": f"{screen} inch",
            "description": padded(
                [brand, series, cpu, rng.choice(word_pool)], description_target
            ),
        }

    return factory


def _word_pool(shared_fraction: float, side: str, seed: int) -> list[str]:
    """A split-specific word pool sharing ``shared_fraction`` of words.

    Both sides always receive the shared prefix of a deterministic
    shuffle; the remainder is divided disjointly, which drives the
    vocabulary-similarity profile down for small fractions.
    """
    rng = random.Random(seed)
    words = list(_EXTRA_WORDS)
    rng.shuffle(words)
    shared_count = int(len(words) * shared_fraction)
    shared = words[:shared_count]
    rest = words[shared_count:]
    half = len(rest) // 2
    own = rest[:half] if side == "train" else rest[half:]
    return shared + own


def _labeled_pairs(
    dataset: Dataset,
    gold: GoldStandard,
    positive_ratio: float,
    pair_count: int,
    seed: int,
) -> LabeledPairs:
    """A labeled pair list with the requested positive ratio."""
    rng = random.Random(seed)
    positives = sorted(gold.pairs())
    rng.shuffle(positives)
    target_positives = min(len(positives), max(1, round(pair_count * positive_ratio)))
    chosen: list[tuple[Pair, bool]] = [
        (pair, True) for pair in positives[:target_positives]
    ]
    ids = dataset.record_ids
    seen = set(pair for pair, _ in chosen)
    gold_clustering = gold.clustering
    attempts = 0
    while len(chosen) < pair_count and attempts < 50 * pair_count:
        attempts += 1
        first, second = rng.sample(ids, 2)
        pair = make_pair(first, second)
        if pair in seen:
            continue
        seen.add(pair)
        chosen.append((pair, gold_clustering.same_cluster(*pair)))
    rng.shuffle(chosen)
    return LabeledPairs(pairs=chosen)


def _make_split(
    name: str,
    record_count: int,
    sparsity: float,
    words_per_value: float,
    word_pool: Sequence[str],
    positive_ratio: float,
    labeled_pair_count: int,
    corruption: CorruptionModel,
    seed: int,
) -> SigmodSplit:
    generator = DirtyDatasetGenerator(
        entity_factory=_notebook_factory(word_pool, int(words_per_value)),
        cluster_sizes=cluster_sizes_zipf(maximum=5, skew=1.6),
        corruption=corruption,
        base_sparsity=sparsity,
        corrupt_originals=True,
        name=name,
        id_prefix=f"{name}_",
        seed=seed,
    )
    benchmark = generator.generate(record_count)
    labeled = _labeled_pairs(
        benchmark.dataset,
        benchmark.gold,
        positive_ratio=positive_ratio,
        pair_count=labeled_pair_count,
        seed=seed + 7,
    )
    return SigmodSplit(dataset=benchmark.dataset, gold=benchmark.gold, labeled=labeled)


def make_sigmod_contest(scale: float = 0.05, seed: int = 0) -> SigmodContestData:
    """Generate the synthetic contest data at ``scale`` of original sizes.

    Original record counts (Table 2): X2 58 653, Z2 18 915, X3 56 616,
    Z3 35 778.  The default ``scale=0.05`` yields ~2.9k/0.9k/2.8k/1.8k
    records — enough to reproduce the profile and cross-dataset effects
    on a laptop.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")

    def scaled(count: int) -> int:
        return max(50, round(count * scale))

    def labeled(count: int) -> int:
        # keep enough labeled pairs (and hence positives) for learned
        # matchers to train on even at small scales
        return max(1_500, round(count * scale))

    # D2's splits share most vocabulary, D3's far less (paper: VS 59%
    # vs 37.7%).  Corruption noise floods the token union with unique
    # variants, so the *absolute* VS of the synthetic data sits far
    # below the paper's (documented in EXPERIMENTS.md); the shared
    # fractions are pushed to the extremes so the relative ordering —
    # the property the Appendix C analysis builds on — is robust.
    pool_x2 = _word_pool(shared_fraction=0.95, side="train", seed=seed + 100)
    pool_z2 = _word_pool(shared_fraction=0.95, side="test", seed=seed + 100)
    pool_x3 = _word_pool(shared_fraction=0.05, side="train", seed=seed + 200)
    pool_z3 = _word_pool(shared_fraction=0.05, side="test", seed=seed + 200)

    corruption_d2 = CorruptionModel(attribute_rate=0.45, errors_per_value=1.6)
    corruption_d3 = CorruptionModel(attribute_rate=0.45, errors_per_value=1.6)

    x2 = _make_split(
        "x2", scaled(58_653), sparsity=0.111, words_per_value=28.0,
        word_pool=pool_x2, positive_ratio=0.022,
        labeled_pair_count=labeled(20_000), corruption=corruption_d2,
        seed=seed + 1,
    )
    z2 = _make_split(
        "z2", scaled(18_915), sparsity=0.197, words_per_value=23.7,
        word_pool=pool_z2, positive_ratio=0.036,
        labeled_pair_count=labeled(8_000), corruption=corruption_d2,
        seed=seed + 2,
    )
    x3 = _make_split(
        "x3", scaled(56_616), sparsity=0.501, words_per_value=15.5,
        word_pool=pool_x3, positive_ratio=0.022,
        labeled_pair_count=labeled(20_000), corruption=corruption_d3,
        seed=seed + 3,
    )
    z3 = _make_split(
        "z3", scaled(35_778), sparsity=0.426, words_per_value=15.4,
        word_pool=pool_z3, positive_ratio=0.121,
        labeled_pair_count=labeled(8_000), corruption=corruption_d3,
        seed=seed + 4,
    )
    return SigmodContestData(x2=x2, z2=z2, x3=x3, z3=z3)
