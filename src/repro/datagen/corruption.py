"""Error/corruption model for synthetic duplicates.

Test-data generators such as TDGen [2] and GeCo [11] create duplicates
by applying realistic transformations to clean records.  We implement
the common error classes: keyboard typos (insertion, deletion,
substitution, transposition), OCR confusions, token operations
(swap, drop, duplicate), abbreviation, case noise, and whitespace
noise.  A :class:`CorruptionModel` composes them with configurable
rates and drives everything from a seeded ``random.Random`` so that
generated benchmarks are reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

__all__ = [
    "typo_insert",
    "typo_delete",
    "typo_substitute",
    "typo_transpose",
    "ocr_confuse",
    "swap_tokens",
    "drop_token",
    "duplicate_token",
    "abbreviate_token",
    "case_noise",
    "whitespace_noise",
    "CorruptionModel",
    "DEFAULT_CORRUPTORS",
]

Corruptor = Callable[[str, random.Random], str]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"

_OCR_CONFUSIONS = {
    "0": "o", "o": "0", "1": "l", "l": "1", "5": "s", "s": "5",
    "8": "b", "b": "8", "2": "z", "z": "2", "m": "rn", "g": "q",
}


def typo_insert(value: str, rng: random.Random) -> str:
    """Insert a random letter at a random position."""
    if not value:
        return value
    position = rng.randrange(len(value) + 1)
    return value[:position] + rng.choice(_ALPHABET) + value[position:]


def typo_delete(value: str, rng: random.Random) -> str:
    """Delete one random character."""
    if len(value) < 2:
        return value
    position = rng.randrange(len(value))
    return value[:position] + value[position + 1 :]


def typo_substitute(value: str, rng: random.Random) -> str:
    """Replace one random character with a random letter."""
    if not value:
        return value
    position = rng.randrange(len(value))
    return value[:position] + rng.choice(_ALPHABET) + value[position + 1 :]


def typo_transpose(value: str, rng: random.Random) -> str:
    """Swap two adjacent characters."""
    if len(value) < 2:
        return value
    position = rng.randrange(len(value) - 1)
    return (
        value[:position]
        + value[position + 1]
        + value[position]
        + value[position + 2 :]
    )


def ocr_confuse(value: str, rng: random.Random) -> str:
    """Apply one OCR-style character confusion, if any applies."""
    candidates = [i for i, char in enumerate(value) if char in _OCR_CONFUSIONS]
    if not candidates:
        return value
    position = rng.choice(candidates)
    return value[:position] + _OCR_CONFUSIONS[value[position]] + value[position + 1 :]


def swap_tokens(value: str, rng: random.Random) -> str:
    """Swap two adjacent word tokens (e.g. 'john smith' -> 'smith john')."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    position = rng.randrange(len(tokens) - 1)
    tokens[position], tokens[position + 1] = tokens[position + 1], tokens[position]
    return " ".join(tokens)


def drop_token(value: str, rng: random.Random) -> str:
    """Drop one word token."""
    tokens = value.split()
    if len(tokens) < 2:
        return value
    tokens.pop(rng.randrange(len(tokens)))
    return " ".join(tokens)


def duplicate_token(value: str, rng: random.Random) -> str:
    """Repeat one word token (copy-paste noise)."""
    tokens = value.split()
    if not tokens:
        return value
    position = rng.randrange(len(tokens))
    tokens.insert(position, tokens[position])
    return " ".join(tokens)


def abbreviate_token(value: str, rng: random.Random) -> str:
    """Abbreviate one token to its initial ('john' -> 'j.')."""
    tokens = value.split()
    candidates = [i for i, token in enumerate(tokens) if len(token) > 2]
    if not candidates:
        return value
    position = rng.choice(candidates)
    tokens[position] = tokens[position][0] + "."
    return " ".join(tokens)


def case_noise(value: str, rng: random.Random) -> str:
    """Randomly change the case of one token."""
    tokens = value.split()
    if not tokens:
        return value
    position = rng.randrange(len(tokens))
    token = tokens[position]
    tokens[position] = token.upper() if rng.random() < 0.5 else token.capitalize()
    return " ".join(tokens)


def whitespace_noise(value: str, rng: random.Random) -> str:
    """Inject a doubled space or strip an existing space."""
    if " " in value and rng.random() < 0.5:
        position = value.index(" ")
        return value[:position] + value[position + 1 :]
    if not value:
        return value
    position = rng.randrange(len(value))
    return value[:position] + "  " + value[position:]


DEFAULT_CORRUPTORS: tuple[Corruptor, ...] = (
    typo_insert,
    typo_delete,
    typo_substitute,
    typo_transpose,
    ocr_confuse,
    swap_tokens,
    drop_token,
    abbreviate_token,
    case_noise,
    whitespace_noise,
)


@dataclass
class CorruptionModel:
    """Composable per-attribute corruption.

    Attributes
    ----------
    attribute_rate:
        Probability that an attribute value is corrupted at all.
    errors_per_value:
        Expected number of corruptor applications per corrupted value
        (geometric: after each application another follows with
        probability ``1 - 1/errors_per_value``... clamped to at least
        one application).
    null_rate:
        Probability that an attribute value is replaced by ``None``
        (drives the sparsity dimension of Table 2).
    corruptors:
        The corruptor pool to sample from.
    """

    attribute_rate: float = 0.4
    errors_per_value: float = 1.5
    null_rate: float = 0.0
    corruptors: Sequence[Corruptor] = field(default=DEFAULT_CORRUPTORS)

    def corrupt_value(self, value: str | None, rng: random.Random) -> str | None:
        """Corrupt a single attribute value."""
        if self.null_rate > 0.0 and rng.random() < self.null_rate:
            return None
        if value is None or rng.random() >= self.attribute_rate:
            return value
        applications = 1
        continue_probability = max(0.0, 1.0 - 1.0 / max(self.errors_per_value, 1.0))
        while rng.random() < continue_probability:
            applications += 1
        corrupted = value
        for _ in range(applications):
            corrupted = rng.choice(list(self.corruptors))(corrupted, rng)
        return corrupted

    def corrupt_record(
        self, values: dict[str, str | None], rng: random.Random
    ) -> dict[str, str | None]:
        """Corrupt all attribute values of one record independently."""
        return {
            attribute: self.corrupt_value(value, rng)
            for attribute, value in values.items()
        }
