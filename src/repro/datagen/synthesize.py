"""Synthesize experiments with a target quality level.

Several of the paper's studies (Figures 6 and 7, §5.4) observe matching
solutions whose quality evolves over time or effort.  The original
solutions (SIGMOD contest submissions) are unavailable, so we
synthesize result sets with a *scheduled* quality against a known gold
standard: recall controls how many true pairs are included, precision
controls how many false pairs are mixed in.  Every synthesized
experiment is then measured with the real metric machinery — the
numbers reported by the benchmarks are measured, not asserted.

The synthesized match set is *closure-stable*: true positives are
whole sub-cliques of gold clusters and false positives form a matching
over otherwise-unused records, so transitively closing the result adds
no pairs and the measured precision/recall stay close to the targets
(random pairs would chain into large components under closure and blow
the false-positive count far past the target).
"""

from __future__ import annotations

import random

from repro.core.experiment import Experiment, GoldStandard, Match
from repro.core.pairs import Pair, make_pair
from repro.core.records import Dataset

__all__ = ["synthesize_experiment"]


def _true_positive_cliques(
    gold: GoldStandard, tp_budget: int, rng: random.Random
) -> tuple[list[Pair], set[str], list[tuple[list[str], set[int | None]]]]:
    """Closed TP pair set of ~``tp_budget`` pairs.

    Whole gold clusters are included while the budget allows; the last
    cluster is cut down to a sub-clique whose pair count fits.  Returns
    the pairs, the records used, and the resulting experiment clusters
    (members plus the gold clusters they touch) so that the
    false-positive phase can attach further records to them.
    """
    clusters = [
        list(members)
        for members in gold.clustering.clusters
        if len(members) >= 2
    ]
    rng.shuffle(clusters)
    pairs: list[Pair] = []
    used: set[str] = set()
    experiment_clusters: list[tuple[list[str], set[int | None]]] = []
    for members in clusters:
        if tp_budget <= 0:
            break
        size = len(members)
        if size * (size - 1) // 2 > tp_budget:
            # largest k with C(k, 2) <= remaining budget
            k = 1
            while (k + 1) * k // 2 <= tp_budget:
                k += 1
            members = rng.sample(members, k)
        if len(members) < 2:
            continue
        members = sorted(members)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                pairs.append(make_pair(first, second))
        used.update(members)
        tp_budget -= len(members) * (len(members) - 1) // 2
        experiment_clusters.append(
            (list(members), {gold.clustering.cluster_index(members[0])})
        )
    return pairs, used, experiment_clusters


def synthesize_experiment(
    dataset: Dataset,
    gold: GoldStandard,
    precision: float,
    recall: float,
    seed: int = 0,
    name: str = "synthesized",
    with_scores: bool = True,
) -> Experiment:
    """An experiment with approximately the requested precision/recall.

    ``recall`` of the gold pairs are included as true positives; false
    positives are added until the requested ``precision`` is met.  With
    ``with_scores``, true pairs receive higher noisy scores than false
    ones so that threshold sweeps behave realistically.

    The requested values are targets: tiny datasets quantize them, and
    very low precision targets can exhaust the records available for
    closure-stable false positives.
    """
    if not 0.0 <= recall <= 1.0:
        raise ValueError(f"recall must be in [0, 1], got {recall}")
    if not 0.0 < precision <= 1.0:
        raise ValueError(f"precision must be in (0, 1], got {precision}")
    rng = random.Random(seed)
    tp_budget = round(gold.pair_count() * recall)
    true_positives, used, junk = _true_positive_cliques(gold, tp_budget, rng)

    matches: list[Match] = []
    for pair in true_positives:
        score = min(1.0, max(0.0, rng.gauss(0.85, 0.08))) if with_scores else None
        matches.append(Match(pair=pair, score=score))

    # precision = tp / (tp + fp)  =>  fp = tp * (1 - p) / p
    fp_budget = round(len(true_positives) * (1.0 - precision) / precision)
    clustering = gold.clustering
    free = [record_id for record_id in dataset.record_ids if record_id not in used]
    rng.shuffle(free)

    def fp_score() -> float | None:
        if not with_scores:
            return None
        return min(1.0, max(0.0, rng.gauss(0.62, 0.1)))

    # Attach unused records to existing clusters (the TP cliques count)
    # with exact pair accounting: attaching a record to a cluster of
    # size k whose members share no gold cluster with it creates
    # exactly k false pairs under transitive closure.  This hits the
    # precision target even when the gold standard is dense and few
    # records are free (e.g. the X4 benchmark).
    for record_id in free:
        if fp_budget <= 0:
            break
        gold_index = clustering.cluster_index(record_id)
        # largest joinable cluster whose size still fits the budget
        best: tuple[list[str], set[int | None]] | None = None
        for members, gold_indexes in junk:
            if gold_index is not None and gold_index in gold_indexes:
                continue
            if len(members) > fp_budget:
                continue
            if best is None or len(members) > len(best[0]):
                best = (members, gold_indexes)
        if best is None:
            junk.append(([record_id], {gold_index}))
            continue
        members, gold_indexes = best
        matches.append(
            Match(pair=make_pair(record_id, members[0]), score=fp_score())
        )
        fp_budget -= len(members)
        members.append(record_id)
        gold_indexes.add(gold_index)
    return Experiment(matches, name=name, solution="synthesized")
