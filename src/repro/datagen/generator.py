"""The dirty-dataset generation engine.

Mirrors the architecture of GeCo [11] and TDGen [2]: an *entity
factory* produces clean entities, a cluster-size distribution decides
how many duplicate records each entity receives, and a
:class:`~repro.datagen.corruption.CorruptionModel` distorts the
duplicates.  The output is a :class:`~repro.core.records.Dataset` plus
its :class:`~repro.core.experiment.GoldStandard` — a complete synthetic
benchmark (§3.1.2: "the artificial creation of test data can be
automated").
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.clustering import Clustering
from repro.core.experiment import GoldStandard
from repro.core.records import Dataset, Record
from repro.datagen.corruption import CorruptionModel

__all__ = [
    "EntityFactory",
    "cluster_sizes_zipf",
    "cluster_sizes_fixed",
    "DirtyDatasetGenerator",
    "GeneratedBenchmark",
]

EntityFactory = Callable[[random.Random], dict[str, str | None]]
ClusterSizeSampler = Callable[[random.Random], int]


def cluster_sizes_zipf(maximum: int = 6, skew: float = 2.0) -> ClusterSizeSampler:
    """Zipf-like cluster sizes: most entities have few duplicates.

    Size ``k`` has weight ``1 / k**skew``; sizes range from 1 (clean
    entity, no duplicate) to ``maximum``.
    """
    if maximum < 1:
        raise ValueError(f"maximum cluster size must be >= 1, got {maximum}")
    sizes = list(range(1, maximum + 1))
    weights = [1.0 / size**skew for size in sizes]

    def sample(rng: random.Random) -> int:
        return rng.choices(sizes, weights=weights, k=1)[0]

    return sample


def cluster_sizes_fixed(size: int) -> ClusterSizeSampler:
    """Every entity gets exactly ``size`` records."""
    if size < 1:
        raise ValueError(f"cluster size must be >= 1, got {size}")
    return lambda rng: size


@dataclass
class GeneratedBenchmark:
    """A generated dataset together with its ground truth."""

    dataset: Dataset
    gold: GoldStandard

    @property
    def duplicate_pairs(self) -> int:
        """Number of true duplicate pairs in the gold standard."""
        return self.gold.pair_count()


@dataclass
class DirtyDatasetGenerator:
    """Generates a dirty dataset with known duplicate clusters.

    Parameters
    ----------
    entity_factory:
        Produces one clean entity's attribute values.
    cluster_sizes:
        Samples how many records represent each entity.
    corruption:
        Distortion applied to every duplicate (the first record of a
        cluster stays clean unless ``corrupt_originals``).
    base_sparsity:
        Probability that a clean value is dropped *before* duplication
        — models datasets that are sparse to begin with (Table 2's
        SP dimension), uniformly across the cluster.
    corrupt_originals:
        Also corrupt the first record of each cluster (no pristine
        master record, as in most real-world datasets).
    name / id_prefix / seed:
        Naming and reproducibility controls.
    """

    entity_factory: EntityFactory
    cluster_sizes: ClusterSizeSampler = field(default_factory=cluster_sizes_zipf)
    corruption: CorruptionModel = field(default_factory=CorruptionModel)
    base_sparsity: float = 0.0
    corrupt_originals: bool = False
    name: str = "synthetic"
    id_prefix: str = "r"
    seed: int = 0

    def generate(self, record_count: int) -> GeneratedBenchmark:
        """Generate approximately ``record_count`` records.

        The count is met exactly: the final cluster is truncated when
        it would overshoot.
        """
        if record_count < 0:
            raise ValueError(f"record count must be non-negative, got {record_count}")
        rng = random.Random(self.seed)
        records: list[Record] = []
        clusters: list[list[str]] = []
        entity_index = 0
        while len(records) < record_count:
            size = min(self.cluster_sizes(rng), record_count - len(records))
            clean = self.entity_factory(rng)
            if self.base_sparsity > 0.0:
                clean = {
                    attribute: (
                        None if rng.random() < self.base_sparsity else value
                    )
                    for attribute, value in clean.items()
                }
            cluster_ids: list[str] = []
            for copy_index in range(size):
                record_id = f"{self.id_prefix}{entity_index}-{copy_index}"
                if copy_index == 0 and not self.corrupt_originals:
                    values = dict(clean)
                else:
                    values = self.corruption.corrupt_record(clean, rng)
                records.append(Record(record_id=record_id, values=values))
                cluster_ids.append(record_id)
            clusters.append(cluster_ids)
            entity_index += 1
        # shuffle so duplicates are not adjacent (blocking must earn it)
        rng.shuffle(records)
        dataset = Dataset(records, name=self.name)
        gold = GoldStandard(
            clustering=Clustering(clusters), name=f"{self.name}-gold"
        )
        return GeneratedBenchmark(dataset=dataset, gold=gold)


def scored_benchmark_experiment(
    benchmark: GeneratedBenchmark,
    target_matches: int,
    noise: float = 0.15,
    seed: int = 0,
    name: str = "synthetic-run",
):
    """A synthetic *experiment* with plausible similarity scores.

    Used by the runtime benchmarks (Table 1), which need experiments of
    a specific match count: true duplicate pairs receive high noisy
    scores, and random non-duplicate pairs fill up (or cut down) to
    ``target_matches`` with lower noisy scores.  Scores are clamped to
    ``[0, 1]``.
    """
    from repro.core.experiment import Experiment, Match
    from repro.core.pairs import make_pair

    rng = random.Random(seed)
    dataset = benchmark.dataset
    true_pairs = sorted(benchmark.gold.pairs())
    rng.shuffle(true_pairs)
    matches: list[Match] = []
    taken = set()
    for pair in true_pairs[:target_matches]:
        score = min(1.0, max(0.0, rng.gauss(0.82, noise)))
        matches.append(Match(pair=pair, score=score))
        taken.add(pair)
    ids = dataset.record_ids
    attempts = 0
    while len(matches) < target_matches and attempts < 50 * target_matches:
        attempts += 1
        first, second = rng.sample(ids, 2)
        pair = make_pair(first, second)
        if pair in taken:
            continue
        taken.add(pair)
        score = min(1.0, max(0.0, rng.gauss(0.55, noise)))
        matches.append(Match(pair=pair, score=score))
    return Experiment(matches, name=name, solution="synthetic")
