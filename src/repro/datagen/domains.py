"""Domain-specific entity factories.

One factory per benchmark domain referenced by the paper: person
records (CDDB-style customers), bibliographic records ("HPI Cora"),
CD records ("FreeDB CDs"), song records ("Magellan Songs"), and product
offers ("Altosight X4").  Each factory draws from the embedded word
pools and produces schemas resembling the originals.
"""

from __future__ import annotations

import random

from repro.datagen import vocab
from repro.datagen.corruption import CorruptionModel
from repro.datagen.generator import (
    DirtyDatasetGenerator,
    GeneratedBenchmark,
    cluster_sizes_zipf,
)

__all__ = [
    "person_entity",
    "bibliographic_entity",
    "cd_entity",
    "song_entity",
    "product_offer_entity",
    "make_person_benchmark",
    "make_cora_like_benchmark",
    "make_freedb_like_benchmark",
    "make_songs_like_benchmark",
    "make_x4_like_benchmark",
]


def person_entity(rng: random.Random) -> dict[str, str | None]:
    """A customer-like person record (name, address, phone, birth year)."""
    given = rng.choice(vocab.GIVEN_NAMES)
    surname = rng.choice(vocab.SURNAMES)
    return {
        "first_name": given,
        "last_name": surname,
        "street": f"{rng.randrange(1, 999)} {rng.choice(vocab.STREETS)} st",
        "city": rng.choice(vocab.CITIES),
        "zip": f"{rng.randrange(10000, 99999)}",
        "phone": f"{rng.randrange(200, 999)}-{rng.randrange(100, 999)}-{rng.randrange(1000, 9999)}",
        "birth_year": str(rng.randrange(1930, 2005)),
    }


def bibliographic_entity(rng: random.Random) -> dict[str, str | None]:
    """A Cora-like citation record (authors, title, venue, year, pages)."""
    author_count = rng.choices([1, 2, 3, 4], weights=[3, 4, 2, 1], k=1)[0]
    authors = ", ".join(
        f"{rng.choice(vocab.GIVEN_NAMES)[0]}. {rng.choice(vocab.SURNAMES)}"
        for _ in range(author_count)
    )
    title_words = rng.sample(vocab.RESEARCH_WORDS, k=rng.randrange(4, 9))
    start_page = rng.randrange(1, 800)
    return {
        "author": authors,
        "title": " ".join(title_words),
        "venue": rng.choice(vocab.VENUES),
        "year": str(rng.randrange(1985, 2005)),
        "pages": f"{start_page}-{start_page + rng.randrange(5, 30)}",
        "volume": str(rng.randrange(1, 40)),
        "publisher": rng.choice(["morgan kaufmann", "springer", "acm press", "mit press", "elsevier"]),
    }


def cd_entity(rng: random.Random) -> dict[str, str | None]:
    """A FreeDB-like CD record (artist, album title, genre, year, tracks)."""
    artist = " ".join(rng.sample(vocab.ARTIST_WORDS, k=rng.randrange(1, 3)))
    title = " ".join(rng.sample(vocab.MUSIC_WORDS, k=rng.randrange(1, 4)))
    return {
        "artist": artist,
        "dtitle": title,
        "category": rng.choice(vocab.GENRES),
        "year": str(rng.randrange(1960, 2005)),
        "genre": rng.choice(vocab.GENRES),
        "cdextra": None,
        "tracks": str(rng.randrange(6, 22)),
    }


def song_entity(rng: random.Random) -> dict[str, str | None]:
    """A Magellan-Songs-like record (title, artist, album, duration, year)."""
    return {
        "title": " ".join(rng.sample(vocab.MUSIC_WORDS, k=rng.randrange(1, 5))),
        "artist_name": " ".join(rng.sample(vocab.ARTIST_WORDS, k=rng.randrange(1, 3))),
        "release": " ".join(rng.sample(vocab.MUSIC_WORDS, k=rng.randrange(1, 3))),
        "duration": str(rng.randrange(90, 600)),
        "year": str(rng.randrange(1955, 2012)),
        "artist_familiarity": f"{rng.random():.4f}",
    }


def product_offer_entity(rng: random.Random) -> dict[str, str | None]:
    """An Altosight-X4-like product offer.

    "Most of the matching has to be based on unstructured, cluttered
    information in the attribute name" (§5.4): the name mixes brand,
    product words, capacity, and marketing noise.
    """
    brand = rng.choice(vocab.PRODUCT_BRANDS)
    capacity = rng.choice(["8", "16", "32", "64", "128", "256"])
    core = rng.sample(vocab.PRODUCT_WORDS, k=rng.randrange(2, 5))
    noise = rng.sample(vocab.MARKETING_WORDS, k=rng.randrange(0, 4))
    name_tokens = [brand, *core, f"{capacity}gb", *noise]
    rng.shuffle(name_tokens)
    return {
        "name": " ".join(name_tokens),
        "brand": brand,
        "size": f"{capacity}gb",
        "price": f"{rng.randrange(5, 120)}.{rng.randrange(0, 100):02d}",
    }


# -- packaged benchmarks calibrated to the paper's dataset sizes ----------------------


def make_person_benchmark(
    record_count: int = 1000, seed: int = 0
) -> GeneratedBenchmark:
    """A small customer-deduplication benchmark (quickstart scale)."""
    generator = DirtyDatasetGenerator(
        entity_factory=person_entity,
        cluster_sizes=cluster_sizes_zipf(maximum=4),
        corruption=CorruptionModel(attribute_rate=0.35, null_rate=0.05),
        name="persons",
        id_prefix="p",
        seed=seed,
    )
    return generator.generate(record_count)


def make_cora_like_benchmark(
    record_count: int = 1879, seed: int = 1
) -> GeneratedBenchmark:
    """Cora-like citations: 1 879 records, large duplicate clusters.

    The real Cora has ~1.9k records in a few hundred clusters with some
    very large clusters, yielding ~5k duplicate pairs — we use a heavy
    cluster-size tail to match that regime (Table 1 row "HPI Cora").
    """
    generator = DirtyDatasetGenerator(
        entity_factory=bibliographic_entity,
        cluster_sizes=cluster_sizes_zipf(maximum=12, skew=1.2),
        corruption=CorruptionModel(attribute_rate=0.45, null_rate=0.12),
        name="cora-like",
        id_prefix="c",
        seed=seed,
    )
    return generator.generate(record_count)


def make_freedb_like_benchmark(
    record_count: int = 9763, seed: int = 2
) -> GeneratedBenchmark:
    """FreeDB-CDs-like: 9 763 records but very few duplicates (147 pairs)."""
    generator = DirtyDatasetGenerator(
        entity_factory=cd_entity,
        cluster_sizes=cluster_sizes_zipf(maximum=2, skew=4.3),
        corruption=CorruptionModel(attribute_rate=0.3, null_rate=0.1),
        name="freedb-like",
        id_prefix="f",
        seed=seed,
    )
    return generator.generate(record_count)


def make_songs_like_benchmark(
    record_count: int = 100_000, seed: int = 3
) -> GeneratedBenchmark:
    """Magellan-Songs-like at a configurable scale (Table 1 rows 4–5)."""
    generator = DirtyDatasetGenerator(
        entity_factory=song_entity,
        cluster_sizes=cluster_sizes_zipf(maximum=3, skew=2.2),
        corruption=CorruptionModel(attribute_rate=0.3, null_rate=0.08),
        name="songs-like",
        id_prefix="s",
        seed=seed,
    )
    return generator.generate(record_count)


def make_x4_like_benchmark(record_count: int = 835, seed: int = 4) -> GeneratedBenchmark:
    """Altosight-X4-like: 835 product offers, dense duplicate clusters.

    X4 has 4 005 matched pairs over 835 records — clusters are large
    (mean size ≈ 10 gives C(10,2)=45 pairs each), so we use near-uniform
    large cluster sizes.
    """
    generator = DirtyDatasetGenerator(
        entity_factory=product_offer_entity,
        cluster_sizes=lambda rng: rng.randrange(7, 14),
        corruption=CorruptionModel(attribute_rate=0.5, errors_per_value=2.0),
        corrupt_originals=True,
        name="x4-like",
        id_prefix="x",
        seed=seed,
    )
    return generator.generate(record_count)
