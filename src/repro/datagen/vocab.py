"""Word pools for the synthetic dataset generators.

Small embedded vocabularies per domain; generators combine, corrupt,
and re-sample them, so the effective vocabulary of a generated dataset
is considerably larger than these seed lists.
"""

from __future__ import annotations

GIVEN_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "nancy", "daniel", "lisa", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "dorothy",
    "kevin", "carol", "brian", "amanda", "george", "melissa", "edward",
    "deborah",
]

SURNAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts",
]

CITIES = [
    "springfield", "riverside", "franklin", "greenville", "bristol",
    "clinton", "fairview", "salem", "madison", "georgetown", "arlington",
    "ashland", "dover", "oxford", "jackson", "burlington", "manchester",
    "milton", "newport", "auburn", "centerville", "dayton", "lexington",
    "milford", "winchester", "cleveland", "hudson", "kingston", "riverton",
    "lakewood",
]

STREETS = [
    "main", "church", "oak", "pine", "maple", "cedar", "elm", "washington",
    "lake", "hill", "park", "walnut", "spring", "north", "ridge", "mill",
    "river", "meadow", "forest", "highland", "sunset", "valley", "chestnut",
    "franklin", "prospect",
]

RESEARCH_WORDS = [
    "learning", "inference", "bayesian", "networks", "probabilistic",
    "reasoning", "knowledge", "discovery", "classification", "clustering",
    "induction", "relational", "models", "decision", "trees", "boosting",
    "reinforcement", "planning", "agents", "markov", "optimization",
    "approximate", "sampling", "statistical", "databases", "matching",
    "integration", "retrieval", "information", "extraction", "structured",
    "efficient", "scalable", "adaptive", "hierarchical", "distributed",
    "generalization", "estimation", "stochastic", "gradient",
]

VENUES = [
    "proceedings of the international conference on machine learning",
    "journal of artificial intelligence research",
    "proceedings of aaai",
    "machine learning",
    "artificial intelligence",
    "proceedings of the national conference on artificial intelligence",
    "proceedings of ijcai",
    "neural computation",
    "proceedings of uai",
    "data mining and knowledge discovery",
]

MUSIC_WORDS = [
    "love", "night", "heart", "dream", "fire", "rain", "dance", "blue",
    "summer", "road", "river", "light", "shadow", "moon", "star", "golden",
    "broken", "wild", "silent", "electric", "midnight", "forever", "lonely",
    "crazy", "sweet", "city", "angel", "ghost", "thunder", "velvet",
]

ARTIST_WORDS = [
    "the", "black", "red", "stone", "kings", "queens", "echo", "neon",
    "crystal", "iron", "silver", "arcade", "phantom", "royal", "lunar",
    "cosmic", "velvet", "atomic", "electric", "savage", "golden", "wolves",
    "tigers", "ravens", "foxes",
]

GENRES = [
    "rock", "pop", "jazz", "blues", "folk", "electronic", "classical",
    "country", "metal", "soul", "funk", "ambient",
]

LAPTOP_BRANDS = [
    "lenovo", "dell", "hp", "asus", "acer", "apple", "toshiba", "msi",
    "samsung", "sony",
]

LAPTOP_SERIES = [
    "thinkpad", "ideapad", "latitude", "inspiron", "pavilion", "elitebook",
    "zenbook", "vivobook", "aspire", "travelmate", "macbook", "satellite",
    "prestige", "notebook", "vaio", "chromebook",
]

CPU_MODELS = [
    "intel core i3-4010u", "intel core i5-4200u", "intel core i7-4500u",
    "intel core i5-5200u", "intel core i7-5500u", "intel celeron n2840",
    "intel pentium n3540", "amd a6-6310", "amd a8-6410", "amd e1-6010",
    "intel core i5-6200u", "intel core i7-6500u",
]

SCREEN_SIZES = ["11.6", "12.5", "13.3", "14", "15.6", "17.3"]
RAM_SIZES = ["2", "4", "6", "8", "12", "16"]
STORAGE = ["128gb ssd", "256gb ssd", "500gb hdd", "1tb hdd", "32gb emmc"]

PRODUCT_WORDS = [
    "usb", "flash", "drive", "memory", "stick", "card", "micro", "sdhc",
    "sdxc", "class", "speed", "high", "ultra", "premium", "pro", "plus",
    "mini", "portable", "gen", "type",
]

PRODUCT_BRANDS = [
    "sandisk", "kingston", "toshiba", "samsung", "lexar", "pny", "transcend",
    "sony", "intenso", "verbatim",
]

MARKETING_WORDS = [
    "new", "original", "sealed", "retail", "pack", "warranty", "official",
    "fast", "shipping", "best", "price", "offer", "deal", "genuine", "oem",
    "bulk", "limited", "edition", "free", "authentic",
]
