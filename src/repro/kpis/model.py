"""Soft KPIs: effort, cost, lifecycle, and categorical properties (§3.3).

"Most of these KPIs model the human effort [...] we measure such effort
using two variables: (i) the amount of time an expert needs to finish
the task (HR-amount), and (ii) the expert's skill level from 0
(untrained) to 100 (highly skilled)."  Combining HR-amount and
expertise yields a rough estimate of monetary cost, since expertise is
typically related to pay level [6].
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field

__all__ = [
    "Effort",
    "DeploymentType",
    "InterfaceType",
    "MatchingTechnique",
    "LifecycleExpenditures",
    "SolutionProperties",
    "ExperimentKpis",
]


@dataclass(frozen=True)
class Effort:
    """Human effort as (HR-amount, expertise).

    Attributes
    ----------
    hr_amount:
        Hours of work required.
    expertise:
        Skill level of the person performing it, 0 (untrained) to
        100 (highly skilled).
    """

    hr_amount: float
    expertise: float

    def __post_init__(self) -> None:
        if self.hr_amount < 0:
            raise ValueError(f"HR-amount must be non-negative, got {self.hr_amount}")
        if not 0 <= self.expertise <= 100:
            raise ValueError(
                f"expertise must be in [0, 100], got {self.expertise}"
            )

    def cost(
        self, base_rate: float = 40.0, expertise_premium: float = 2.0
    ) -> float:
        """Monetary cost estimate.

        Hourly rate grows linearly with expertise ("expertise is
        typically related to pay level"): at expertise 0 the rate is
        ``base_rate``; at 100 it is ``base_rate * (1 +
        expertise_premium)``.
        """
        rate = base_rate * (1.0 + expertise_premium * self.expertise / 100.0)
        return self.hr_amount * rate

    def __add__(self, other: "Effort") -> "Effort":
        """Sum of efforts: hours add; expertise is the hour-weighted mean."""
        hours = self.hr_amount + other.hr_amount
        if hours == 0:
            return Effort(0.0, max(self.expertise, other.expertise))
        expertise = (
            self.hr_amount * self.expertise + other.hr_amount * other.expertise
        ) / hours
        return Effort(hours, expertise)


class DeploymentType(enum.Enum):
    """Categorical KPI: development/deployment types (§3.3)."""

    ON_PREMISE = "on-premise"
    CLOUD = "cloud"
    HYBRID = "hybrid"


class InterfaceType(enum.Enum):
    """Categorical KPI: interfaces supported by the solution (§3.3)."""

    GUI = "gui"
    API = "api"
    CLI = "cli"


class MatchingTechnique(enum.Enum):
    """Categorical KPI: techniques supported by the solution (§3.3)."""

    RULE_BASED = "rule-based"
    CLUSTERING = "clustering"
    PROBABILISTIC = "probabilistic"
    MACHINE_LEARNING = "machine-learning"
    ACTIVE_LEARNING = "active-learning"


@dataclass
class LifecycleExpenditures:
    """Lifecycle expenditure KPIs, based on life-cycle cost analysis [23].

    Attributes
    ----------
    general_costs:
        Monetary life-cycle costs (licenses, infrastructure, support).
    production_readiness:
        Effort to get the solution ready for production within the
        company's ecosystem.
    domain_configuration:
        Domain-specific configuration effort (e.g. manual labeling of
        training data).
    technical_configuration:
        Technique-specific configuration effort (e.g. algorithm
        selection).
    """

    general_costs: float = 0.0
    production_readiness: Effort = field(default_factory=lambda: Effort(0, 0))
    domain_configuration: Effort = field(default_factory=lambda: Effort(0, 0))
    technical_configuration: Effort = field(default_factory=lambda: Effort(0, 0))

    def total_effort(self) -> Effort:
        """All configuration effort combined."""
        return (
            self.production_readiness
            + self.domain_configuration
            + self.technical_configuration
        )

    def total_cost(
        self, base_rate: float = 40.0, expertise_premium: float = 2.0
    ) -> float:
        """General costs plus all effort converted to money (§3.3:
        "the effort-based metrics can be converted into costs [...] and
        added to general costs")."""
        return self.general_costs + self.total_effort().cost(
            base_rate, expertise_premium
        )


@dataclass
class SolutionProperties:
    """The full soft-KPI sheet of one matching solution."""

    name: str
    lifecycle: LifecycleExpenditures = field(default_factory=LifecycleExpenditures)
    deployment_types: frozenset[DeploymentType] = frozenset()
    interfaces: frozenset[InterfaceType] = frozenset()
    techniques: frozenset[MatchingTechnique] = frozenset()
    notes: Mapping[str, str] = field(default_factory=dict)


@dataclass
class ExperimentKpis:
    """Per-experiment soft KPIs (§3.3: "Soft KPIs of Experiments").

    Attributes
    ----------
    setup_effort:
        Effort needed to set up the experiment (e.g. acquisition of
        suitable test data).
    configuration_effort:
        Effort spent configuring the solution for this particular run;
        the x-axis of the Figure 6 effort diagrams.
    runtime_seconds:
        Runtime the matching solution required to complete the
        experiment.
    """

    setup_effort: Effort = field(default_factory=lambda: Effort(0, 0))
    configuration_effort: Effort = field(default_factory=lambda: Effort(0, 0))
    runtime_seconds: float = 0.0

    def total_effort(self) -> Effort:
        """Setup plus configuration effort combined."""
        return self.setup_effort + self.configuration_effort
