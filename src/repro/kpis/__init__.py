"""Soft KPIs: effort, cost, lifecycle, and their evaluation (§3.3, §5.5)."""

from repro.kpis.decision import Aggregator, KpiDecisionMatrix, SolutionEntry
from repro.kpis.diagrams import (
    EffortCurve,
    EffortPoint,
    effort_to_reach,
    out_of_box_score,
    render_effort_diagram,
)
from repro.kpis.effort_study import (
    ContestTimelineSimulator,
    EffortStudySimulator,
    SolutionProfile,
)
from repro.kpis.model import (
    DeploymentType,
    Effort,
    ExperimentKpis,
    InterfaceType,
    LifecycleExpenditures,
    MatchingTechnique,
    SolutionProperties,
)

__all__ = [
    "Aggregator",
    "ContestTimelineSimulator",
    "DeploymentType",
    "Effort",
    "EffortCurve",
    "EffortPoint",
    "EffortStudySimulator",
    "ExperimentKpis",
    "InterfaceType",
    "KpiDecisionMatrix",
    "LifecycleExpenditures",
    "MatchingTechnique",
    "SolutionEntry",
    "SolutionProfile",
    "effort_to_reach",
    "out_of_box_score",
    "render_effort_diagram",
]
