"""Soft-KPI evaluation: decision matrix and aggregation (§3.3).

"Frost supports two different evaluation techniques for soft KPIs.  On
the one hand, it provides a decision matrix including all above metrics
side by side.  Importantly, this decision matrix also includes quality
metrics to provide a holistic view [...].  On the other hand, Frost
provides users the ability to aggregate metrics [...] Because this
aggregation depends on the use case, Frost does not pre-define
aggregation strategies, but provides a framework."
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.kpis.model import SolutionProperties

__all__ = ["SolutionEntry", "KpiDecisionMatrix", "Aggregator"]


@dataclass
class SolutionEntry:
    """One row of the KPI decision matrix: a solution with its numbers.

    ``quality_metrics`` carries the hard metrics (precision, recall,
    f1, ...) measured on a reference benchmark so that the matrix gives
    the "holistic view of the attractiveness of the compared
    solutions".
    """

    properties: SolutionProperties
    quality_metrics: Mapping[str, float] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """The solution's display name."""
        return self.properties.name


class KpiDecisionMatrix:
    """Side-by-side comparison of matching solutions (§3.3)."""

    def __init__(self, entries: Sequence[SolutionEntry]) -> None:
        if not entries:
            raise ValueError("decision matrix needs at least one solution")
        names = [entry.name for entry in entries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate solution names: {names}")
        self.entries = list(entries)

    def rows(
        self, base_rate: float = 40.0, expertise_premium: float = 2.0
    ) -> list[dict[str, object]]:
        """One dictionary per solution with every KPI side by side."""
        result = []
        for entry in self.entries:
            lifecycle = entry.properties.lifecycle
            total_effort = lifecycle.total_effort()
            row: dict[str, object] = {
                "solution": entry.name,
                "general_costs": lifecycle.general_costs,
                "effort_hours": total_effort.hr_amount,
                "effort_expertise": total_effort.expertise,
                "estimated_cost": lifecycle.total_cost(base_rate, expertise_premium),
                "deployment": sorted(
                    d.value for d in entry.properties.deployment_types
                ),
                "interfaces": sorted(i.value for i in entry.properties.interfaces),
                "techniques": sorted(t.value for t in entry.properties.techniques),
            }
            row.update(entry.quality_metrics)
            result.append(row)
        return result

    def render(self, metrics: Sequence[str] = ("f1",)) -> str:
        """Plain-text matrix for terminal display."""
        columns = ["solution", "estimated_cost", "effort_hours", *metrics]
        rows = self.rows()
        header = "".join(f"{column:>18}" for column in columns)
        lines = [header, "-" * len(header)]
        for row in rows:
            cells = []
            for column in columns:
                value = row.get(column, "-")
                if isinstance(value, float):
                    cells.append(f"{value:>18.2f}")
                else:
                    cells.append(f"{str(value):>18}")
            lines.append("".join(cells))
        return "\n".join(lines)

    def aggregate(self, aggregator: "Aggregator") -> dict[str, float]:
        """Use-case-specific aggregate score per solution.

        The aggregation strategy is entirely user-defined, matching the
        paper's framework approach.
        """
        return {
            entry.name: aggregator(entry) for entry in self.entries
        }

    def best(self, aggregator: "Aggregator") -> SolutionEntry:
        """The solution maximizing the user's aggregate score."""
        scores = self.aggregate(aggregator)
        best_name = max(scores, key=lambda name: (scores[name], name))
        return next(entry for entry in self.entries if entry.name == best_name)


Aggregator = Callable[[SolutionEntry], float]
