"""Effort/metric diagrams (§3.3, following FEVER [38]).

"Frost aids users in analyzing soft KPIs for experiments with a
diagram-based approach.  This helps answer questions, such as how much
effort is needed to achieve a specific metric threshold (e.g., 80%
precision), whether increased runtime yields better results, or how
good a matching solution is out-of-the-box."
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["EffortPoint", "EffortCurve", "effort_to_reach", "out_of_box_score"]


@dataclass(frozen=True)
class EffortPoint:
    """One tracked (effort, metric) observation of an optimization run."""

    effort_hours: float
    metric_value: float


@dataclass
class EffortCurve:
    """Metric-vs-effort curve of one solution (a line of Figure 6).

    Points are kept sorted by effort; ``best_so_far`` yields the
    monotone envelope ("maximum f1 score against effort spent").
    """

    solution: str
    points: list[EffortPoint]

    def __post_init__(self) -> None:
        self.points = sorted(
            self.points, key=lambda point: (point.effort_hours, point.metric_value)
        )

    def best_so_far(self) -> list[EffortPoint]:
        """The running-maximum envelope of the curve."""
        envelope: list[EffortPoint] = []
        best = float("-inf")
        for point in self.points:
            best = max(best, point.metric_value)
            envelope.append(EffortPoint(point.effort_hours, best))
        return envelope

    def final_value(self) -> float:
        """Best metric value over the whole run."""
        if not self.points:
            raise ValueError(f"curve for {self.solution!r} has no points")
        return max(point.metric_value for point in self.points)

    def breakthrough(self, jump: float = 0.15) -> float | None:
        """Effort at which the metric first jumped by ``jump`` or more.

        "Each solution had a breakthrough point-in-time at which the
        performance increased significantly" (§5.5).  Returns ``None``
        when no such jump occurs.
        """
        envelope = self.best_so_far()
        for previous, current in zip(envelope, envelope[1:]):
            if current.metric_value - previous.metric_value >= jump:
                return current.effort_hours
        return None

    def barrier(self, window: float = 4.0, improvement: float = 0.01) -> float | None:
        """Effort after which the envelope never gains ``improvement``
        or more — the "barrier at around 14 hours, above which only
        minor improvements were achieved" (§5.5).

        A barrier claim needs evidence: a candidate point must be
        followed by at least ``window`` hours of observations, so the
        tail of the curve never counts as a barrier by default.
        """
        envelope = self.best_so_far()
        if not envelope:
            return None
        last_hour = envelope[-1].effort_hours
        for index, point in enumerate(envelope):
            if last_hour - point.effort_hours < window:
                return None
            if all(
                later.metric_value - point.metric_value < improvement
                for later in envelope[index + 1 :]
            ):
                return point.effort_hours
        return None


def effort_to_reach(curve: EffortCurve, target: float) -> float | None:
    """Hours needed until the metric first reaches ``target``.

    The FEVER question: "How much effort is needed to reach 80%
    precision?" [38].  ``None`` when the target is never reached.
    """
    for point in curve.best_so_far():
        if point.metric_value >= target:
            return point.effort_hours
    return None


def out_of_box_score(curve: EffortCurve) -> float:
    """Metric value at the minimal tracked effort (the first point).

    "How good a matching solution is out-of-the-box versus how much
    effort it takes to improve the results" (§3.3).
    """
    if not curve.points:
        raise ValueError(f"curve for {curve.solution!r} has no points")
    return curve.points[0].metric_value


def render_effort_diagram(
    curves: Sequence[EffortCurve], width: int = 60, height: int = 16
) -> str:
    """ASCII rendering of several effort curves (Figure 6 style)."""
    if not curves:
        return "(no curves)"
    max_effort = max(
        (point.effort_hours for curve in curves for point in curve.points),
        default=1.0,
    )
    max_effort = max(max_effort, 1e-9)
    grid = [[" "] * width for _ in range(height)]
    symbols = "ox+*#@"
    for index, curve in enumerate(curves):
        symbol = symbols[index % len(symbols)]
        for point in curve.best_so_far():
            column = min(width - 1, int(point.effort_hours / max_effort * (width - 1)))
            row = min(height - 1, int((1.0 - point.metric_value) * (height - 1)))
            grid[row][column] = symbol
    lines = ["metric"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + f"> effort (0..{max_effort:.1f}h)")
    legend = "  ".join(
        f"{symbols[i % len(symbols)]}={curve.solution}"
        for i, curve in enumerate(curves)
    )
    lines.append(legend)
    return "\n".join(lines)
