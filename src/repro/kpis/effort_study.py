"""Effort-study simulators for Figures 6 and 7 (§5.5).

The paper manually optimized three matching solutions for the SIGMOD
D4 dataset, tracking effort; and analyzed the contest leaderboard over
time.  Neither the human annotators nor the submission history are
available, so we *simulate the generative process* the paper describes
— breakthroughs, asymptotic barriers, trial-and-error dips — and
measure every simulated state with the real benchmark machinery
(synthesized result sets scored by real confusion matrices).  See
DESIGN.md §3 for the substitution rationale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.confusion import ConfusionMatrix
from repro.core.experiment import GoldStandard
from repro.core.records import Dataset
from repro.datagen.synthesize import synthesize_experiment
from repro.kpis.diagrams import EffortCurve, EffortPoint
from repro.metrics.pairwise import f1_score

__all__ = ["SolutionProfile", "EffortStudySimulator", "ContestTimelineSimulator"]


@dataclass(frozen=True)
class SolutionProfile:
    """The effort-response profile of one simulated matching solution.

    Attributes
    ----------
    name:
        Display name, e.g. ``"rule-based"``.
    out_of_box:
        Target f1 before any configuration effort.
    plateau:
        The asymptotic maximum achievable f1 ("specific to each
        matching solution and dataset", §5.5).
    breakthrough_hours:
        Effort at which performance jumps significantly.
    breakthrough_gain:
        Fraction of the out-of-box→plateau gap closed at the
        breakthrough.
    barrier_hours:
        Effort above which only minor improvements are achieved
        (the paper observed ~14 h for all three solutions).
    """

    name: str
    out_of_box: float
    plateau: float
    breakthrough_hours: float
    breakthrough_gain: float = 0.6
    barrier_hours: float = 14.0


def _scheduled_f1(profile: SolutionProfile, hours: float) -> float:
    """The latent quality of a solution after ``hours`` of configuration.

    Piecewise: slow ramp before the breakthrough, a jump at the
    breakthrough, then asymptotic approach to the plateau that is
    nearly flat past the barrier.
    """
    gap = profile.plateau - profile.out_of_box
    if hours < profile.breakthrough_hours:
        ramp = 0.15 * gap * hours / max(profile.breakthrough_hours, 1e-9)
        return profile.out_of_box + ramp
    after_jump = profile.out_of_box + profile.breakthrough_gain * gap
    remaining = profile.plateau - after_jump
    # exponential saturation, ~98% of remaining gap closed at the barrier
    span = max(profile.barrier_hours - profile.breakthrough_hours, 1e-9)
    progress = 1.0 - 0.02 ** ((hours - profile.breakthrough_hours) / span)
    return after_jump + remaining * progress


@dataclass
class EffortStudySimulator:
    """Reproduces the Figure 6 study: max f1 against effort spent.

    Every checkpoint synthesizes a result set with the scheduled latent
    quality and measures its *actual* f1 with a real confusion matrix,
    so quantization and sampling noise behave like real evaluations.
    """

    dataset: Dataset
    gold: GoldStandard
    profiles: list[SolutionProfile] = field(default_factory=list)
    checkpoint_hours: float = 1.0
    total_hours: float = 24.0
    seed: int = 0

    def run(self) -> list[EffortCurve]:
        """Simulate all profiles; one measured EffortCurve per profile."""
        curves: list[EffortCurve] = []
        total_pairs = self.dataset.total_pairs()
        for profile_index, profile in enumerate(self.profiles):
            rng = random.Random(self.seed * 1000 + profile_index)
            points: list[EffortPoint] = []
            hours = 0.0
            while hours <= self.total_hours + 1e-9:
                target = _scheduled_f1(profile, hours)
                target = min(0.995, max(0.05, target + rng.gauss(0.0, 0.004)))
                # split the target f1 into precision/recall around a
                # solution-specific balance
                balance = 0.9 + 0.2 * rng.random()
                precision = min(0.999, target * balance)
                recall_denominator = 2 * precision - target
                recall = (
                    min(1.0, precision * target / recall_denominator)
                    if recall_denominator > 1e-9
                    else target
                )
                experiment = synthesize_experiment(
                    self.dataset,
                    self.gold,
                    precision=max(0.05, precision),
                    recall=max(0.01, recall),
                    seed=rng.randrange(1 << 30),
                    name=f"{profile.name}@{hours:.0f}h",
                )
                matrix = ConfusionMatrix.from_clusterings(
                    experiment.clustering(), self.gold.clustering, total_pairs
                )
                points.append(EffortPoint(hours, f1_score(matrix)))
                hours += self.checkpoint_hours
            curves.append(EffortCurve(solution=profile.name, points=points))
        return curves


@dataclass
class ContestTimelineSimulator:
    """Reproduces the Figure 7 study: f1 of contest teams over time.

    "The matching quality of the different teams generally increased
    over time, but sometimes faced significant declines [...] the
    matching task had an overall trial-and-error character."  The
    simulation is a biased random walk on latent quality with
    occasional regressions; every submission is synthesized and
    measured for real.
    """

    dataset: Dataset
    gold: GoldStandard
    team_count: int = 3
    submissions: int = 25
    regression_probability: float = 0.18
    seed: int = 0

    def run(self) -> dict[str, list[tuple[int, float]]]:
        """``team name -> [(submission index, measured f1), ...]``."""
        total_pairs = self.dataset.total_pairs()
        timelines: dict[str, list[tuple[int, float]]] = {}
        for team_index in range(self.team_count):
            rng = random.Random(self.seed * 777 + team_index)
            latent = 0.3 + 0.2 * rng.random()
            ceiling = 0.85 + 0.1 * rng.random()
            timeline: list[tuple[int, float]] = []
            for submission in range(self.submissions):
                if rng.random() < self.regression_probability:
                    # a configuration change that backfired
                    latent -= rng.uniform(0.05, 0.25)
                else:
                    latent += rng.uniform(0.0, 0.5) * (ceiling - latent)
                latent = min(ceiling, max(0.1, latent))
                experiment = synthesize_experiment(
                    self.dataset,
                    self.gold,
                    precision=min(0.999, max(0.1, latent + rng.gauss(0.02, 0.02))),
                    recall=max(0.05, latent + rng.gauss(-0.02, 0.02)),
                    seed=rng.randrange(1 << 30),
                    name=f"team{team_index}-sub{submission}",
                )
                matrix = ConfusionMatrix.from_clusterings(
                    experiment.clustering(), self.gold.clustering, total_pairs
                )
                timeline.append((submission, f1_score(matrix)))
            timelines[f"team-{team_index + 1}"] = timeline
        return timelines
