"""Benchmark-dataset suitability scores (§7 outlook).

"A suitability score based on profiling metrics would be an important
contribution towards the search for suitable benchmark datasets."

This module turns the §3.1.3 decision-matrix features into a single
``[0, 1]`` suitability score per candidate benchmark, adding the
cluster-structure feature the decision matrix lacks ("the amount and
size of duplicate clusters in the ground truth annotation of the
benchmark dataset should closely resemble that of the use case
dataset").  Because use-case datasets have no ground truth, cluster
structure can be estimated from a matching solution's clustering
(cf. Heise et al. [33]).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.core.clustering import Clustering
from repro.core.records import Dataset
from repro.profiling.dataset_profile import DatasetProfile, profile_dataset
from repro.profiling.selection import BenchmarkCandidate, profile_distance
from repro.profiling.vocabulary import vocabulary_similarity

__all__ = [
    "ClusterStructure",
    "cluster_structure",
    "cluster_structure_similarity",
    "SuitabilityReport",
    "suitability_score",
    "recommend_benchmarks",
]


@dataclass(frozen=True)
class ClusterStructure:
    """Summary of a duplicate clustering's shape (§3.1.3).

    Attributes
    ----------
    record_count:
        Records covered by the clustering.
    duplicate_cluster_count:
        Clusters of size >= 2.
    size_histogram:
        ``{cluster size: count}`` over duplicate clusters.
    """

    record_count: int
    duplicate_cluster_count: int
    size_histogram: Mapping[int, int]

    @property
    def duplicate_record_fraction(self) -> float:
        """Fraction of records that live in a duplicate cluster."""
        if self.record_count == 0:
            return 0.0
        in_duplicates = sum(
            size * count for size, count in self.size_histogram.items()
        )
        return min(1.0, in_duplicates / self.record_count)

    @property
    def mean_cluster_size(self) -> float:
        """Mean size of duplicate clusters (0 when there are none)."""
        if self.duplicate_cluster_count == 0:
            return 0.0
        total = sum(size * count for size, count in self.size_histogram.items())
        return total / self.duplicate_cluster_count


def cluster_structure(
    clustering: Clustering, record_count: int | None = None
) -> ClusterStructure:
    """The :class:`ClusterStructure` of a (gold or estimated) clustering.

    ``record_count`` defaults to the number of records the clustering
    mentions; pass the dataset size when singletons are implicit.
    """
    histogram: Counter[int] = Counter()
    mentioned = 0
    for members in clustering.clusters:
        mentioned += len(members)
        if len(members) >= 2:
            histogram[len(members)] += 1
    return ClusterStructure(
        record_count=record_count if record_count is not None else mentioned,
        duplicate_cluster_count=sum(histogram.values()),
        size_histogram=dict(histogram),
    )


def cluster_structure_similarity(
    first: ClusterStructure, second: ClusterStructure
) -> float:
    """Similarity of two cluster structures in ``[0, 1]``.

    Combines (i) agreement of the duplicate-record fractions and
    (ii) ``1 -`` the total-variation distance between the normalized
    cluster-size histograms.  Two datasets with the same duplication
    level and the same size mix score 1.
    """
    fraction_agreement = 1.0 - abs(
        first.duplicate_record_fraction - second.duplicate_record_fraction
    )
    total_a = sum(first.size_histogram.values())
    total_b = sum(second.size_histogram.values())
    if total_a == 0 and total_b == 0:
        histogram_agreement = 1.0
    elif total_a == 0 or total_b == 0:
        histogram_agreement = 0.0
    else:
        sizes = set(first.size_histogram) | set(second.size_histogram)
        total_variation = 0.5 * sum(
            abs(
                first.size_histogram.get(size, 0) / total_a
                - second.size_histogram.get(size, 0) / total_b
            )
            for size in sizes
        )
        histogram_agreement = 1.0 - total_variation
    return 0.5 * fraction_agreement + 0.5 * histogram_agreement


@dataclass
class SuitabilityReport:
    """One candidate's suitability with per-feature contributions.

    ``score`` is in ``[0, 1]``; 1 means "profiles indistinguishable
    under the chosen weights".  ``features`` maps feature names to
    their individual similarity contributions (also ``[0, 1]``).
    """

    candidate_name: str
    score: float
    features: dict[str, float]

    def render(self) -> str:
        """Plain-text rendering with per-feature contributions."""
        lines = [f"{self.candidate_name}: suitability {self.score:.3f}"]
        for feature, value in sorted(self.features.items()):
            lines.append(f"  {feature}: {value:.3f}")
        return "\n".join(lines)


def suitability_score(
    use_case: Dataset,
    candidate: BenchmarkCandidate,
    use_case_domain: str | None = None,
    use_case_clustering: Clustering | None = None,
    weights: Mapping[str, float] | None = None,
    cluster_weight: float = 1.0,
) -> SuitabilityReport:
    """Suitability of one candidate benchmark for a use-case dataset.

    ``use_case_clustering`` is the (estimated) duplicate clustering of
    the use case — e.g. a matching solution's output — enabling the
    cluster-structure feature even without a ground truth.  Without it
    (and with candidates lacking gold standards) the feature is
    skipped.
    """
    use_profile = profile_dataset(use_case)
    candidate_profile = candidate.profile()
    vocabulary_sim = vocabulary_similarity(use_case, candidate.dataset)
    same_domain: bool | None
    if use_case_domain is None or candidate.domain is None:
        same_domain = None
    else:
        same_domain = use_case_domain == candidate.domain
    distance = profile_distance(
        use_profile, candidate_profile, vocabulary_sim, same_domain, weights
    )
    features = {
        "profile": 1.0 - distance,
        "vocabulary": vocabulary_sim,
    }

    cluster_sim: float | None = None
    if use_case_clustering is not None and candidate.gold is not None:
        cluster_sim = cluster_structure_similarity(
            cluster_structure(use_case_clustering, len(use_case)),
            cluster_structure(candidate.gold.clustering, len(candidate.dataset)),
        )
        features["cluster_structure"] = cluster_sim

    if cluster_sim is None:
        score = 1.0 - distance
    else:
        profile_weight = 1.0
        total = profile_weight + cluster_weight
        score = (profile_weight * (1.0 - distance) + cluster_weight * cluster_sim) / total
    return SuitabilityReport(
        candidate_name=candidate.dataset.name, score=score, features=features
    )


def recommend_benchmarks(
    use_case: Dataset,
    candidates: Sequence[BenchmarkCandidate],
    use_case_domain: str | None = None,
    use_case_clustering: Clustering | None = None,
    weights: Mapping[str, float] | None = None,
    top: int | None = None,
) -> list[SuitabilityReport]:
    """Rank all candidate benchmarks by suitability, best first."""
    reports = [
        suitability_score(
            use_case,
            candidate,
            use_case_domain=use_case_domain,
            use_case_clustering=use_case_clustering,
            weights=weights,
        )
        for candidate in candidates
    ]
    reports.sort(key=lambda report: (-report.score, report.candidate_name))
    return reports[:top] if top is not None else reports
