"""Dataset profiling and benchmark-dataset selection (§3.1.3, Appendix C)."""

from repro.profiling.dataset_profile import (
    DatasetProfile,
    attribute_sparsity,
    corner_case_ratio,
    positive_ratio,
    profile_dataset,
    schema_complexity,
    sparsity,
    textuality,
)
from repro.profiling.estimation import (
    ClusterEstimate,
    estimate_cluster_histogram,
    estimate_from_sample,
    sample_dataset,
)
from repro.profiling.recommendation import (
    EvaluationRecord,
    EvaluationRepository,
    SolutionRecommendation,
    recommend_solutions,
)
from repro.profiling.selection import (
    BenchmarkCandidate,
    DecisionMatrix,
    profile_distance,
    rank_benchmarks,
)
from repro.profiling.suitability import (
    ClusterStructure,
    SuitabilityReport,
    cluster_structure,
    cluster_structure_similarity,
    recommend_benchmarks,
    suitability_score,
)
from repro.profiling.vocabulary import vocabulary, vocabulary_similarity

__all__ = [
    "BenchmarkCandidate",
    "ClusterEstimate",
    "ClusterStructure",
    "DatasetProfile",
    "DecisionMatrix",
    "EvaluationRecord",
    "EvaluationRepository",
    "SolutionRecommendation",
    "SuitabilityReport",
    "attribute_sparsity",
    "cluster_structure",
    "cluster_structure_similarity",
    "corner_case_ratio",
    "estimate_cluster_histogram",
    "estimate_from_sample",
    "positive_ratio",
    "profile_dataset",
    "profile_distance",
    "rank_benchmarks",
    "recommend_benchmarks",
    "recommend_solutions",
    "sample_dataset",
    "schema_complexity",
    "sparsity",
    "suitability_score",
    "textuality",
    "vocabulary",
    "vocabulary_similarity",
]
