"""Dataset profiling metrics (Table 2, Appendix C.1).

Implements the profile dimensions the paper uses to characterize
benchmark datasets:

* **Sparsity (SP)** — fraction of missing attribute values [49];
* **Textuality (TX)** — average number of words per attribute value [49];
* **Tuple count (TC)** — dataset size [22];
* **Positive ratio (PR)** — true duplicate pairs / all pairs;
* **schema complexity** — number of (populated) attributes [49];
* **corner-case ratio** — fraction of gold clusters that are "hard"
  (near-duplicate pairs below / non-duplicates above typical
  similarity), approximated structurally [49];
* per-attribute sparsity, as used by the error analyses of §4.5.2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.experiment import GoldStandard
from repro.core.records import Dataset

__all__ = [
    "DatasetProfile",
    "sparsity",
    "textuality",
    "positive_ratio",
    "schema_complexity",
    "attribute_sparsity",
    "corner_case_ratio",
    "profile_dataset",
]


def sparsity(dataset: Dataset) -> float:
    """Missing attribute values / all attribute values, in [0, 1].

    "The relationship of missing attribute values to all attribute
    values of the relevant attributes" [49].
    """
    attributes = dataset.attributes
    if not attributes or len(dataset) == 0:
        return 0.0
    missing = 0
    total = 0
    for record in dataset:
        for attribute in attributes:
            total += 1
            if record.is_null(attribute):
                missing += 1
    return missing / total


def textuality(dataset: Dataset) -> float:
    """Average number of whitespace words per non-null attribute value.

    "Textuality is the average amount of words in attribute values"
    [49]; long, non-atomic values complicate matching.
    """
    words = 0
    values = 0
    for record in dataset:
        for attribute in dataset.attributes:
            value = record.value(attribute)
            if value is not None:
                values += 1
                words += len(value.split())
    if values == 0:
        return 0.0
    return words / values


def positive_ratio(dataset: Dataset, gold: GoldStandard) -> float:
    """True duplicate pairs / all record pairs ``C(|D|, 2)``."""
    total = dataset.total_pairs()
    if total == 0:
        return 0.0
    return gold.pair_count() / total


def schema_complexity(dataset: Dataset) -> int:
    """Number of attributes in the schema [49]."""
    return len(dataset.attributes)


def attribute_sparsity(dataset: Dataset) -> dict[str, float]:
    """Per-attribute missing-value ratio (Crescenzi et al. [14]).

    Used by the nullRatio analysis of §4.5.2, which needs "interspersed
    null values within the dataset and a meaningful [...] schema".
    """
    if len(dataset) == 0:
        return {attribute: 0.0 for attribute in dataset.attributes}
    counts = {attribute: 0 for attribute in dataset.attributes}
    for record in dataset:
        for attribute in dataset.attributes:
            if record.is_null(attribute):
                counts[attribute] += 1
    return {
        attribute: count / len(dataset) for attribute, count in counts.items()
    }


def corner_case_ratio(dataset: Dataset, gold: GoldStandard) -> float:
    """Fraction of gold clusters that are structural corner cases.

    Primpeli & Bizer identify corner cases via similarity overlap of
    matches and non-matches [49]; without committing to one similarity
    function, we use a structural proxy: clusters of size >= 4 (chained
    duplicates) or records whose cluster spans very dissimilar value
    lengths.  The proxy keeps the profile dimension available for the
    decision matrices of §3.1.3.
    """
    clusters = [c for c in gold.clustering.clusters if len(c) >= 2]
    if not clusters:
        return 0.0
    corner = 0
    for cluster in clusters:
        if len(cluster) >= 4:
            corner += 1
            continue
        lengths = []
        for record_id in cluster:
            if record_id in dataset:
                record = dataset[record_id]
                lengths.append(
                    sum(len(v) for v in record.values.values() if v)
                )
        if lengths and max(lengths) > 2 * max(1, min(lengths)):
            corner += 1
    return corner / len(clusters)


@dataclass(frozen=True)
class DatasetProfile:
    """The full profile vector of one dataset (Table 2 columns)."""

    name: str
    sparsity: float
    textuality: float
    tuple_count: int
    positive_ratio: float | None
    schema_complexity: int
    corner_case_ratio: float | None

    def as_dict(self) -> dict[str, float | int | None]:
        """All profile dimensions as a plain dictionary."""
        return {
            "SP": self.sparsity,
            "TX": self.textuality,
            "TC": self.tuple_count,
            "PR": self.positive_ratio,
            "schema": self.schema_complexity,
            "corner_cases": self.corner_case_ratio,
        }


def profile_dataset(
    dataset: Dataset, gold: GoldStandard | None = None
) -> DatasetProfile:
    """Compute the complete profile of a dataset (PR needs a gold)."""
    return DatasetProfile(
        name=dataset.name,
        sparsity=sparsity(dataset),
        textuality=textuality(dataset),
        tuple_count=len(dataset),
        positive_ratio=positive_ratio(dataset, gold) if gold else None,
        schema_complexity=schema_complexity(dataset),
        corner_case_ratio=corner_case_ratio(dataset, gold) if gold else None,
    )
