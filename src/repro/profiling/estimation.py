"""Estimating the number and sizes of duplicate clusters (§3.1.3).

"The amount and size of duplicate clusters in the ground truth
annotation of the benchmark dataset should closely resemble that of
the use case dataset.  Because the ground truth annotation for the use
case dataset is unknown, these numbers have to be estimated.  Heise et
al. developed a method for this estimation [33]."

Following that approach, the full dataset's cluster-size histogram is
estimated from a *sample*: a uniform sample including each record with
probability ``q`` thins a duplicate cluster of true size ``s`` into an
observed size ``k`` with binomial probability ``B(s, q)(k)``.  Running
a (cheap) matching solution on the sample yields the observed
histogram; inverting the binomial thinning with non-negative least
squares recovers the full histogram, from which cluster count, mean
size, and duplicate-pair count follow.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from repro.core.clustering import Clustering
from repro.core.records import Dataset

__all__ = [
    "ClusterEstimate",
    "estimate_cluster_histogram",
    "estimate_from_sample",
    "sample_dataset",
]


def sample_dataset(
    dataset: Dataset, fraction: float, seed: int = 0
) -> Dataset:
    """A uniform record sample including each record with ``fraction``.

    Uses per-record Bernoulli sampling (not fixed-size sampling) so the
    binomial-thinning model of the estimator holds exactly.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = random.Random(seed)
    chosen = [
        record.record_id for record in dataset if rng.random() < fraction
    ]
    return dataset.subset(chosen, name=f"{dataset.name}-sample")


@dataclass(frozen=True)
class ClusterEstimate:
    """Estimated duplicate-cluster structure of a full dataset.

    Attributes
    ----------
    size_histogram:
        Estimated ``{cluster size: count}`` over sizes >= 2.
    duplicate_cluster_count:
        Estimated number of duplicate clusters.
    duplicate_pair_count:
        Estimated number of duplicate pairs, ``sum C(s, 2) * count``.
    mean_cluster_size:
        Estimated mean duplicate-cluster size.
    """

    size_histogram: Mapping[int, float]

    @property
    def duplicate_cluster_count(self) -> float:
        return sum(self.size_histogram.values())

    @property
    def duplicate_pair_count(self) -> float:
        return sum(
            count * size * (size - 1) / 2
            for size, count in self.size_histogram.items()
        )

    @property
    def mean_cluster_size(self) -> float:
        clusters = self.duplicate_cluster_count
        if clusters == 0:
            return 0.0
        total = sum(
            count * size for size, count in self.size_histogram.items()
        )
        return total / clusters


def _binomial(s: int, k: int, q: float) -> float:
    return math.comb(s, k) * q**k * (1.0 - q) ** (s - k)


def estimate_cluster_histogram(
    observed: Mapping[int, int],
    fraction: float,
    max_size: int | None = None,
) -> ClusterEstimate:
    """Invert binomial thinning on an observed cluster-size histogram.

    ``observed`` maps sampled cluster sizes (>= 2) to their counts —
    e.g. the clustering a matching solution produced on the sample.
    ``fraction`` is the sampling probability ``q``.  The true
    histogram ``H`` solves ``A @ H = observed`` with
    ``A[k][s] = B(s, q)(k)``; we solve by non-negative least squares
    so the estimate is never negative.

    Note that singleton observations (k <= 1) are not usable: a sampled
    singleton is indistinguishable from a unique record, exactly as in
    the sample-and-clean setting of Heise et al.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    observed = {
        int(size): count for size, count in observed.items() if size >= 2
    }
    if not observed:
        return ClusterEstimate(size_histogram={})
    observed_max = max(observed)
    if max_size is None:
        # with thinning, true clusters are plausibly larger than any
        # observed one; allow headroom inversely proportional to q
        max_size = max(observed_max, min(50, int(observed_max / fraction) + 2))
    if max_size < observed_max:
        raise ValueError(
            f"max_size {max_size} is below the largest observed size "
            f"{observed_max}"
        )

    sizes = list(range(2, max_size + 1))
    ks = list(range(2, observed_max + 1))
    design = np.zeros((len(ks), len(sizes)))
    for row, k in enumerate(ks):
        for column, s in enumerate(sizes):
            if k <= s:
                design[row, column] = _binomial(s, k, fraction)
    target = np.array([float(observed.get(k, 0)) for k in ks])

    try:
        from scipy.optimize import nnls

        solution, _residual = nnls(design, target)
    except ImportError:  # pragma: no cover - scipy is a soft dependency
        solution, *_rest = np.linalg.lstsq(design, target, rcond=None)
        solution = np.clip(solution, 0.0, None)

    histogram = {
        size: float(count)
        for size, count in zip(sizes, solution)
        if count > 1e-9
    }
    return ClusterEstimate(size_histogram=histogram)


def estimate_from_sample(
    sample_clustering: Clustering,
    fraction: float,
    max_size: int | None = None,
) -> ClusterEstimate:
    """Estimate the full dataset's cluster structure from a sample.

    ``sample_clustering`` is the duplicate clustering a matching
    solution produced on a ``fraction`` Bernoulli sample of the dataset
    (see :func:`sample_dataset`).
    """
    observed: Counter[int] = Counter()
    for members in sample_clustering.clusters:
        if len(members) >= 2:
            observed[len(members)] += 1
    return estimate_cluster_histogram(observed, fraction, max_size=max_size)
