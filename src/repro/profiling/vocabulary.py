"""Vocabulary similarity between datasets (§3.1.3, Appendix C.1).

``VS(D1, D2) = |vocab(D1) ∩ vocab(D2)| / |vocab(D1) ∪ vocab(D2)|``
where ``vocab(D)`` is the whitespace-token set of the dataset.
"Similar vocabularies might cause similar behavior of the matching
solution."
"""

from __future__ import annotations

from repro.core.records import Dataset

__all__ = ["vocabulary", "vocabulary_similarity"]


def vocabulary(dataset: Dataset) -> set[str]:
    """The whitespace-token vocabulary of a dataset."""
    return dataset.vocabulary()


def vocabulary_similarity(first: Dataset, second: Dataset) -> float:
    """Jaccard coefficient of the two vocabularies, in [0, 1]."""
    vocab_a = first.vocabulary()
    vocab_b = second.vocabulary()
    union = vocab_a | vocab_b
    if not union:
        return 1.0
    return len(vocab_a & vocab_b) / len(union)
