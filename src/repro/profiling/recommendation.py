"""Recommending matching solutions (§7 outlook).

"A long-term goal might be to gather matching solutions, benchmark
datasets, and evaluation results in a central repository.  To assist
organizations with real-world matching tasks, Frost could use this
information to automatically determine promising matching solutions."

The :class:`EvaluationRepository` is that central repository: it stores
benchmark datasets (as :class:`~repro.profiling.selection.BenchmarkCandidate`)
and evaluation results (solution × benchmark → quality metrics).
:func:`recommend_solutions` predicts how well each known solution would
do on a new use-case dataset by weighting its benchmark results with
the benchmarks' suitability for the use case.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.records import Dataset
from repro.profiling.selection import BenchmarkCandidate
from repro.profiling.suitability import suitability_score

__all__ = [
    "EvaluationRecord",
    "EvaluationRepository",
    "SolutionRecommendation",
    "recommend_solutions",
]


@dataclass(frozen=True)
class EvaluationRecord:
    """One stored evaluation result: a solution's metrics on a benchmark."""

    solution: str
    benchmark_name: str
    metrics: Mapping[str, float]


class EvaluationRepository:
    """Central repository of benchmarks and evaluation results (§7)."""

    def __init__(self) -> None:
        self._benchmarks: dict[str, BenchmarkCandidate] = {}
        self._records: list[EvaluationRecord] = []

    # -- registry ------------------------------------------------------------------

    def add_benchmark(self, candidate: BenchmarkCandidate) -> None:
        """Register a benchmark dataset (name must be unique)."""
        name = candidate.dataset.name
        if name in self._benchmarks:
            raise ValueError(f"benchmark {name!r} is already registered")
        self._benchmarks[name] = candidate

    def add_result(
        self, solution: str, benchmark_name: str, metrics: Mapping[str, float]
    ) -> None:
        """Store one solution's metrics on a registered benchmark."""
        if benchmark_name not in self._benchmarks:
            known = ", ".join(sorted(self._benchmarks)) or "(none)"
            raise KeyError(
                f"unknown benchmark {benchmark_name!r}; known: {known}"
            )
        self._records.append(
            EvaluationRecord(
                solution=solution,
                benchmark_name=benchmark_name,
                metrics=dict(metrics),
            )
        )

    def benchmarks(self) -> list[BenchmarkCandidate]:
        """All registered benchmarks, sorted by dataset name."""
        return [self._benchmarks[name] for name in sorted(self._benchmarks)]

    def solutions(self) -> list[str]:
        """Names of all solutions with stored results, sorted."""
        return sorted({record.solution for record in self._records})

    def results_for(self, solution: str) -> list[EvaluationRecord]:
        """All stored evaluation records of one solution."""
        return [
            record for record in self._records if record.solution == solution
        ]


@dataclass
class SolutionRecommendation:
    """One recommended solution with its predicted metric value.

    ``support`` counts the benchmark results behind the prediction;
    ``evidence`` maps benchmark names to ``(suitability, metric)``
    pairs so the prediction is auditable.
    """

    solution: str
    predicted_metric: float
    metric_name: str
    support: int
    evidence: dict[str, tuple[float, float]] = field(default_factory=dict)


def recommend_solutions(
    use_case: Dataset,
    repository: EvaluationRepository,
    metric: str = "f1",
    use_case_domain: str | None = None,
    top: int | None = None,
    minimum_suitability: float = 0.0,
) -> list[SolutionRecommendation]:
    """Rank known solutions by suitability-weighted benchmark results.

    For each solution, benchmark results are averaged with weights equal
    to the benchmark's suitability for ``use_case``; benchmarks below
    ``minimum_suitability`` are ignored.  Solutions without any usable
    result are omitted.
    """
    suitabilities = {
        candidate.dataset.name: suitability_score(
            use_case, candidate, use_case_domain=use_case_domain
        ).score
        for candidate in repository.benchmarks()
    }

    recommendations: list[SolutionRecommendation] = []
    for solution in repository.solutions():
        weighted_sum = 0.0
        weight_total = 0.0
        evidence: dict[str, tuple[float, float]] = {}
        for record in repository.results_for(solution):
            if metric not in record.metrics:
                continue
            suitability = suitabilities.get(record.benchmark_name, 0.0)
            if suitability < minimum_suitability:
                continue
            value = record.metrics[metric]
            weighted_sum += suitability * value
            weight_total += suitability
            evidence[record.benchmark_name] = (suitability, value)
        if weight_total > 0.0:
            recommendations.append(
                SolutionRecommendation(
                    solution=solution,
                    predicted_metric=weighted_sum / weight_total,
                    metric_name=metric,
                    support=len(evidence),
                    evidence=evidence,
                )
            )
    recommendations.sort(
        key=lambda rec: (-rec.predicted_metric, rec.solution)
    )
    return recommendations[:top] if top is not None else recommendations
