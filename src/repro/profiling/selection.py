"""Finding a representative benchmark dataset (§3.1.3).

"Frost includes a list of features impacting matching difficulty and
provides decision matrices to compare a given use case dataset with
several benchmark datasets based on these features.  It remains to the
experts to determine how important the individual features are."

A :class:`DecisionMatrix` tabulates profile features of the use-case
dataset against candidate benchmark datasets; :func:`rank_benchmarks`
scores the candidates with user-supplied feature weights.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.experiment import GoldStandard
from repro.core.records import Dataset
from repro.profiling.dataset_profile import DatasetProfile, profile_dataset
from repro.profiling.vocabulary import vocabulary_similarity

__all__ = [
    "BenchmarkCandidate",
    "DecisionMatrix",
    "profile_distance",
    "rank_benchmarks",
]


@dataclass
class BenchmarkCandidate:
    """A benchmark dataset (with gold standard) under consideration."""

    dataset: Dataset
    gold: GoldStandard | None = None
    domain: str | None = None

    def profile(self) -> DatasetProfile:
        """The candidate dataset's profile (cached per call)."""
        return profile_dataset(self.dataset, self.gold)


#: Relative feature weights used when the caller supplies none.  The
#: paper leaves the weighting to experts; these defaults weight the
#: dimensions the paper's own study found influential (sparsity and
#: vocabulary similarity, Appendix C) highest.
DEFAULT_WEIGHTS: dict[str, float] = {
    "sparsity": 2.0,
    "textuality": 1.0,
    "tuple_count": 1.0,
    "vocabulary": 2.0,
    "domain": 1.5,
}


def profile_distance(
    use_case: DatasetProfile,
    candidate: DatasetProfile,
    vocabulary_sim: float,
    same_domain: bool | None,
    weights: Mapping[str, float] | None = None,
) -> float:
    """Weighted dissimilarity of a candidate's profile to the use case.

    Each feature contributes a [0, 1] dissimilarity:

    * sparsity — absolute difference (both already in [0, 1]);
    * textuality — relative difference, capped at 1;
    * tuple count — log-ratio distance, capped at 1 (Draisbach &
      Naumann: size influences the optimal threshold [22]);
    * vocabulary — ``1 - VS``;
    * domain — 0 when matching, 1 when differing, 0.5 when unknown.
    """
    active = dict(DEFAULT_WEIGHTS)
    if weights:
        active.update(weights)
    contributions = {
        "sparsity": abs(use_case.sparsity - candidate.sparsity),
        "textuality": min(
            1.0,
            abs(use_case.textuality - candidate.textuality)
            / max(use_case.textuality, candidate.textuality, 1.0),
        ),
        "tuple_count": min(
            1.0,
            abs(
                math.log10(max(use_case.tuple_count, 1))
                - math.log10(max(candidate.tuple_count, 1))
            )
            / 3.0,
        ),
        "vocabulary": 1.0 - vocabulary_sim,
        "domain": 0.5 if same_domain is None else (0.0 if same_domain else 1.0),
    }
    total_weight = sum(active.values())
    if total_weight == 0:
        return 0.0
    return sum(active[f] * contributions[f] for f in contributions) / total_weight


@dataclass
class DecisionMatrix:
    """Side-by-side profile comparison of candidates vs the use case.

    ``rows`` maps candidate names to their feature dictionaries
    (profile values plus vocabulary similarity and distance score).
    """

    use_case: DatasetProfile
    rows: dict[str, dict[str, float | int | None]] = field(default_factory=dict)

    def render(self) -> str:
        """Plain-text table for terminal display."""
        features = ["SP", "TX", "TC", "VS", "distance"]
        header = f"{'dataset':<22}" + "".join(f"{f:>12}" for f in features)
        lines = [header, "-" * len(header)]
        for name, row in sorted(
            self.rows.items(), key=lambda item: item[1]["distance"]
        ):
            cells = []
            for feature in features:
                value = row.get(feature)
                if value is None:
                    cells.append(f"{'-':>12}")
                elif isinstance(value, int):
                    cells.append(f"{value:>12d}")
                else:
                    cells.append(f"{value:>12.3f}")
            lines.append(f"{name:<22}" + "".join(cells))
        return "\n".join(lines)


def rank_benchmarks(
    use_case: Dataset,
    candidates: Sequence[BenchmarkCandidate],
    use_case_domain: str | None = None,
    weights: Mapping[str, float] | None = None,
) -> DecisionMatrix:
    """Rank candidate benchmarks by profile similarity to the use case.

    The returned decision matrix carries one row per candidate with the
    profile features and the aggregate distance (smaller is a better
    substitute benchmark).
    """
    use_profile = profile_dataset(use_case)
    matrix = DecisionMatrix(use_case=use_profile)
    for candidate in candidates:
        profile = candidate.profile()
        vocab_sim = vocabulary_similarity(use_case, candidate.dataset)
        same_domain: bool | None
        if use_case_domain is None or candidate.domain is None:
            same_domain = None
        else:
            same_domain = use_case_domain == candidate.domain
        distance = profile_distance(
            use_profile, profile, vocab_sim, same_domain, weights
        )
        matrix.rows[profile.name] = {
            "SP": profile.sparsity,
            "TX": profile.textuality,
            "TC": profile.tuple_count,
            "PR": profile.positive_ratio,
            "VS": vocab_sim,
            "distance": distance,
        }
    return matrix
