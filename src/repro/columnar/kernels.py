"""Batch similarity kernels over columnar value-id blocks.

Each kernel scores one attribute for a whole block of candidate pairs
at once, given the two value-id arrays of the block.  The block engine
(:mod:`repro.columnar.compare`) deduplicates the block down to its
*distinct* value-id pairs first — the same two strings are never scored
twice — and every kernel guarantees **bitwise identity** with its
scalar counterpart in :mod:`repro.matching.similarity`:

* set-overlap kernels (token/n-gram Jaccard, overlap coefficient)
  count intersections over the store's sorted interned-id arrays; the
  counts are exact integers, so the final divisions produce the very
  same doubles as the scalar ``len(a & b) / len(a | b)``;
* the numeric kernel evaluates the scalar's relative-distance formula
  elementwise in ``float64`` — IEEE-754 basic operations are
  deterministic, so each lane equals the scalar result bit for bit;
* edit-distance and Jaro–Winkler kernels memoize the scalar functions
  per distinct string pair (identity by construction), with
  Monge–Elkan additionally memoizing its *inner* token-level
  similarity across the whole corpus vocabulary;
* the TF-IDF cosine kernel walks precomputed sparse id-weight arrays
  in the exact insertion order the scalar dot product uses, so even
  the float summation order matches.

:func:`plan_for` inspects an
:class:`~repro.matching.attribute_matching.AttributeComparator` and
returns a :class:`KernelPlan` when *every* configured measure has a
kernel — otherwise the caller falls back to the scalar loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.columnar.store import ColumnarStore
from repro.matching.attribute_matching import AttributeComparator
from repro.matching.similarity import (
    TfIdfCosine,
    exact,
    jaro,
    jaro_winkler,
    levenshtein,
    monge_elkan,
    ngram_jaccard,
    numeric_similarity,
    overlap_coefficient,
    soundex_similarity,
    token_jaccard,
)

__all__ = ["Kernel", "KernelPlan", "plan_for", "kernel_for"]


class Kernel:
    """Scores the distinct value-id pairs of one attribute block.

    ``unique_scores`` receives two equal-length ``int64`` arrays of
    non-null value ids (the deduplicated block) and returns one
    ``float64`` score per pair, bitwise equal to the scalar measure on
    the corresponding strings.
    """

    name = "kernel"

    def unique_scores(
        self, store: ColumnarStore, vids_a: np.ndarray, vids_b: np.ndarray
    ) -> np.ndarray:
        raise NotImplementedError

    def warm(self, store: ColumnarStore) -> None:
        """Precompute the derived arrays this kernel reads from ``store``.

        Called at layout time (:meth:`MatchingPipeline.prepare`) so the
        scoring pass itself touches only ready-made arrays — the columnar
        analogue of paying import/layout cost at load, not per query.
        """


# -- set-overlap kernels -----------------------------------------------------


def _gather_csr(
    indptr: np.ndarray, ids: np.ndarray, vids: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the CSR rows of ``vids`` into (pair-index, id) arrays.

    Returns ``(rows, flat_ids, counts)`` where ``rows[k]`` is the
    position within ``vids`` owning ``flat_ids[k]``; rows ascend and
    each row's ids stay sorted, so the flattened keys below are
    globally sorted.
    """
    counts = indptr[vids + 1] - indptr[vids]
    total = int(counts.sum())
    rows = np.repeat(np.arange(len(vids), dtype=np.int64), counts)
    if total == 0:
        return rows, np.empty(0, dtype=np.int64), counts
    cumulative = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        cumulative - counts, counts
    )
    flat = ids[np.repeat(indptr[vids], counts) + offsets]
    return rows, flat, counts


def _intersection_sizes(
    store_csr: tuple[np.ndarray, np.ndarray],
    vids_a: np.ndarray,
    vids_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pair ``(|A ∩ B|, |A|, |B|)`` over sorted interned-id rows.

    Encodes every (pair, id) membership as ``pair * stride + id`` and
    intersects the two sorted key arrays in one vectorized pass — the
    list-based batch processing move of the columnar-graph-DBMS
    literature, applied to similarity sets.
    """
    indptr, ids = store_csr
    rows_a, flat_a, counts_a = _gather_csr(indptr, ids, vids_a)
    rows_b, flat_b, counts_b = _gather_csr(indptr, ids, vids_b)
    stride = int(ids.max()) + 1 if len(ids) else 1
    keys_a = rows_a * stride + flat_a
    keys_b = rows_b * stride + flat_b
    common = np.intersect1d(keys_a, keys_b, assume_unique=True)
    intersections = np.bincount(
        common // stride, minlength=len(vids_a)
    ).astype(np.int64)
    return intersections, counts_a.astype(np.int64), counts_b.astype(np.int64)


class TokenJaccardKernel(Kernel):
    """Vectorized :func:`~repro.matching.similarity.token_jaccard`."""

    name = "token_jaccard"

    def _csr(self, store: ColumnarStore) -> tuple[np.ndarray, np.ndarray]:
        return store.token_csr()

    def warm(self, store):
        self._csr(store)

    def unique_scores(self, store, vids_a, vids_b):
        inter, len_a, len_b = _intersection_sizes(
            self._csr(store), vids_a, vids_b
        )
        union = len_a + len_b - inter
        scores = np.divide(
            inter,
            union,
            out=np.ones(len(union), dtype=np.float64),
            where=union > 0,  # both empty -> 1.0, like the scalar
        )
        return scores


class NgramJaccardKernel(TokenJaccardKernel):
    """Vectorized :func:`~repro.matching.similarity.ngram_jaccard`."""

    name = "ngram_jaccard"

    def __init__(self, n: int = 2) -> None:
        self.n = n

    def _csr(self, store: ColumnarStore) -> tuple[np.ndarray, np.ndarray]:
        return store.ngram_csr(self.n)


class OverlapKernel(Kernel):
    """Vectorized :func:`~repro.matching.similarity.overlap_coefficient`."""

    name = "overlap"

    def warm(self, store):
        store.token_csr()

    def unique_scores(self, store, vids_a, vids_b):
        inter, len_a, len_b = _intersection_sizes(
            store.token_csr(), vids_a, vids_b
        )
        smaller = np.minimum(len_a, len_b)
        # Scalar: either side empty -> 1.0 iff both empty, else 0.0.
        empty_side = smaller == 0
        both_empty = (len_a == 0) & (len_b == 0)
        scores = np.divide(
            inter,
            smaller,
            out=np.zeros(len(smaller), dtype=np.float64),
            where=~empty_side,
        )
        scores[both_empty] = 1.0
        return scores


# -- elementwise kernels -----------------------------------------------------


class ExactKernel(Kernel):
    """Interned-id equality — one vectorized comparison per pair."""

    name = "exact"

    def unique_scores(self, store, vids_a, vids_b):
        return np.where(vids_a == vids_b, 1.0, 0.0)


class SoundexKernel(Kernel):
    """Vectorized Soundex-code equality with the sentinel fallback."""

    name = "soundex"

    def warm(self, store):
        store.soundex_codes()

    def unique_scores(self, store, vids_a, vids_b):
        codes = store.soundex_codes()
        code_a = codes[vids_a]
        code_b = codes[vids_b]
        # Sentinel code 0 = not encodable -> exact string equality,
        # which interning reduces to value-id equality.
        sentinel = (code_a == 0) | (code_b == 0)
        return np.where(
            sentinel,
            np.where(vids_a == vids_b, 1.0, 0.0),
            np.where(code_a == code_b, 1.0, 0.0),
        )


class NumericKernel(Kernel):
    """Vectorized :func:`~repro.matching.similarity.numeric_similarity`.

    Evaluates the scalar's relative-distance formula lane by lane with
    the same IEEE-754 ``float64`` operations (same operand order, same
    rounding), so every lane is bitwise equal to the scalar result.
    """

    name = "numeric"

    def __init__(self, tolerance: float = 0.2) -> None:
        self.tolerance = tolerance

    def warm(self, store):
        store.numeric()

    def unique_scores(self, store, vids_a, vids_b):
        parsed, usable = store.numeric()
        value_a = parsed[vids_a]
        value_b = parsed[vids_b]
        both = usable[vids_a] & usable[vids_b]
        scale = np.maximum(np.abs(value_a), np.abs(value_b))
        with np.errstate(divide="ignore", invalid="ignore"):
            relative = np.abs(value_a - value_b) / scale
            linear = 1.0 - relative / self.tolerance
        scores = np.where(
            value_a == value_b,
            1.0,
            np.where(
                scale == 0.0,
                1.0,
                np.where(relative >= self.tolerance, 0.0, linear),
            ),
        )
        # Unparsable / non-finite values: exact string equality.
        return np.where(both, scores, np.where(vids_a == vids_b, 1.0, 0.0))


# -- memoized string kernels -------------------------------------------------

# Distinct-pair memoization across stores and batches: the same two
# strings are only ever scored once per process.  Scores come from the
# scalar functions themselves, so identity holds by construction.
_cached_levenshtein = lru_cache(maxsize=131072)(levenshtein)
_cached_jaro = lru_cache(maxsize=131072)(jaro)
_cached_jaro_winkler = lru_cache(maxsize=131072)(jaro_winkler)


@lru_cache(maxsize=262144)
def _cached_inner_jaro_winkler(token_a: str, token_b: str) -> float:
    """Monge–Elkan's inner measure, memoized over the token vocabulary."""
    return jaro_winkler(token_a, token_b)


@lru_cache(maxsize=131072)
def _cached_monge_elkan(first: str, second: str) -> float:
    """:func:`~repro.matching.similarity.monge_elkan` with default inner.

    Re-implements the scalar's exact loop structure (same summation
    order, same ``max`` scan) on top of the memoized inner measure —
    bitwise identical, but each distinct token pair costs one Jaro–
    Winkler evaluation per process instead of one per value pair.
    """
    from repro.matching.similarity import _token_tuple

    def one_way(tokens_a, tokens_b):
        if not tokens_a:
            return 1.0 if not tokens_b else 0.0
        if not tokens_b:
            return 0.0
        return sum(
            max(_cached_inner_jaro_winkler(token_a, token_b) for token_b in tokens_b)
            for token_a in tokens_a
        ) / len(tokens_a)

    tokens_a = _token_tuple(first)
    tokens_b = _token_tuple(second)
    return (one_way(tokens_a, tokens_b) + one_way(tokens_b, tokens_a)) / 2.0


class MemoizedKernel(Kernel):
    """Distinct-pair memoization around a scalar measure."""

    def __init__(self, name: str, function) -> None:
        self.name = name
        self._function = function

    def unique_scores(self, store, vids_a, vids_b):
        values = store.values
        function = self._function
        return np.fromiter(
            (
                function(values[vid_a], values[vid_b])
                for vid_a, vid_b in zip(vids_a.tolist(), vids_b.tolist())
            ),
            dtype=np.float64,
            count=len(vids_a),
        )


class TfIdfKernel(Kernel):
    """TF-IDF cosine over precomputed sparse id-weight arrays.

    Bound to one fitted :class:`~repro.matching.similarity.TfIdfCosine`
    instance.  Per distinct value the kernel materializes the
    instance's TF-IDF vector once as parallel (token, weight) arrays in
    *insertion order* plus a lookup dict; the per-pair dot product then
    walks the left arrays in that same order, so the float summation
    matches the scalar ``sum()`` addition for addition.
    """

    name = "tfidf_cosine"

    def __init__(self, measure: TfIdfCosine) -> None:
        self.measure = measure
        # value -> (tokens tuple, weights tuple, norm, weight dict)
        self._sparse: dict[str, tuple] = {}
        self._memo: dict[tuple[int, int], float] = {}

    def _vector(self, value: str):
        cached = self._sparse.get(value)
        if cached is None:
            vector, norm = self.measure._cached_vector(value)
            cached = (
                tuple(vector.keys()),
                tuple(vector.values()),
                norm,
                vector,
            )
            self._sparse[value] = cached
        return cached

    def _score(self, first: str, second: str) -> float:
        tokens_a, weights_a, norm_a, _ = self._vector(first)
        _, _, norm_b, vector_b = self._vector(second)
        if not tokens_a and not vector_b:
            return 1.0
        if norm_a == 0.0 or norm_b == 0.0:
            return 0.0
        lookup = vector_b.get
        dot = sum(
            weight * lookup(token, 0.0)
            for token, weight in zip(tokens_a, weights_a)
        )
        return min(1.0, dot / (norm_a * norm_b))

    def unique_scores(self, store, vids_a, vids_b):
        values = store.values
        memo = self._memo
        out = np.empty(len(vids_a), dtype=np.float64)
        for position, (vid_a, vid_b) in enumerate(
            zip(vids_a.tolist(), vids_b.tolist())
        ):
            key = (vid_a, vid_b)
            score = memo.get(key)
            if score is None:
                score = self._score(values[vid_a], values[vid_b])
                memo[key] = score
            out[position] = score
        return out


# -- planning ----------------------------------------------------------------


@dataclass(frozen=True)
class KernelPlan:
    """The per-attribute kernels of one fully kernelizable comparator."""

    attributes: tuple[str, ...]
    kernels: tuple[Kernel, ...]

    def warm(self, store: ColumnarStore) -> None:
        """Precompute every derived array the plan's kernels will read."""
        for kernel in self.kernels:
            kernel.warm(store)


def _builders():
    return {
        exact: lambda: ExactKernel(),
        levenshtein: lambda: MemoizedKernel("levenshtein", _cached_levenshtein),
        jaro: lambda: MemoizedKernel("jaro", _cached_jaro),
        jaro_winkler: lambda: MemoizedKernel(
            "jaro_winkler", _cached_jaro_winkler
        ),
        token_jaccard: lambda: TokenJaccardKernel(),
        overlap_coefficient: lambda: OverlapKernel(),
        ngram_jaccard: lambda: NgramJaccardKernel(),
        monge_elkan: lambda: MemoizedKernel("monge_elkan", _cached_monge_elkan),
        soundex_similarity: lambda: SoundexKernel(),
        numeric_similarity: lambda: NumericKernel(),
    }


_KERNEL_BUILDERS = _builders()


def kernel_for(function) -> Kernel | None:
    """The batch kernel equivalent to one similarity function, if any.

    Matches the *built-in* measures by function identity (a wrapped or
    partially-applied variant could behave differently, so it gets no
    kernel) and fitted :class:`TfIdfCosine` instances by type.
    """
    try:
        builder = _KERNEL_BUILDERS.get(function)
    except TypeError:  # unhashable callable
        builder = None
    if builder is not None:
        return builder()
    if type(function) is TfIdfCosine:
        return TfIdfKernel(function)
    return None


def plan_for(comparator) -> KernelPlan | None:
    """A :class:`KernelPlan` for ``comparator``, or ``None``.

    Only exact :class:`AttributeComparator` instances qualify (a
    subclass may override ``compare``), and only when every configured
    attribute maps to a kernelizable measure — partial kernelization
    would split one pair's scoring across two code paths for no gain.
    """
    if type(comparator) is not AttributeComparator:
        return None
    attributes: list[str] = []
    kernels: list[Kernel] = []
    for attribute, function in comparator.functions.items():
        kernel = kernel_for(function)
        if kernel is None:
            return None
        attributes.append(attribute)
        kernels.append(kernel)
    return KernelPlan(attributes=tuple(attributes), kernels=tuple(kernels))
