"""Block comparison engine over columnar stores.

:func:`compare_block` is the columnar counterpart of
:func:`repro.matching.attribute_matching.compare_pairs`: it scores a
whole block of candidate pairs attribute by attribute instead of pair
by pair.  Per attribute it

1. gathers the two value-id lanes of the block from the store's
   columns (two vectorized index operations),
2. masks null lanes (value id 0) — those comparisons stay ``None``,
   exactly like the scalar path's missing-value handling,
3. packs the remaining ``(vid_a, vid_b)`` lanes into 64-bit keys and
   deduplicates them with one ``np.unique`` — real-world blocks repeat
   the same value pairs constantly (blocking groups similar records),
   so the kernels score each *distinct* value pair once,
4. scatters the distinct scores back over the block.

The resulting :class:`SimilarityVector` list is byte-identical to the
scalar loop (same pairs, same attribute order, same Python ``float``
scores) — every kernel guarantees bitwise score equality and the
null/argument-order semantics are reproduced exactly.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.columnar.kernels import KernelPlan
from repro.columnar.store import NULL_VID, ColumnarStore
from repro.core.pairs import Pair
from repro.matching.attribute_matching import SimilarityVector
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import span

__all__ = ["compare_block"]

_KERNEL_PAIRS = get_metrics().counter(
    "frost_kernel_pairs_total",
    "Candidate pairs scored through the columnar batch kernels",
)
_KERNEL_DISTINCT = get_metrics().counter(
    "frost_kernel_distinct_pairs_total",
    "Distinct (attribute, value-pair) scores computed by batch kernels",
)
_KERNEL_FALLBACK = get_metrics().counter(
    "frost_kernel_fallback_pairs_total",
    "Candidate pairs scored via the scalar fallback (no kernel plan)",
)
_STORE_BUILDS = get_metrics().counter(
    "frost_kernel_store_builds_total",
    "Columnar stores built for comparison blocks",
)


def count_store_build() -> None:
    """Record one columnar store construction (wiring call sites)."""
    _STORE_BUILDS.inc()


def count_fallback(pairs: int) -> None:
    """Record candidate pairs that took the scalar fallback path."""
    if pairs:
        _KERNEL_FALLBACK.inc(pairs)


def compare_block(
    store: ColumnarStore,
    pairs: Sequence[Pair],
    plan: KernelPlan,
) -> list[SimilarityVector]:
    """Similarity vectors of ``pairs``, scored by batch kernels.

    ``pairs`` must already be canonical (:func:`repro.core.pairs.make_pair`)
    and ordered by the caller; the i-th vector belongs to the i-th pair.
    """
    if not pairs:
        return []
    with span(
        "comparison.columnar",
        pairs=len(pairs),
        attributes=len(plan.attributes),
        rows=len(store),
    ):
        row_index = store.row_index
        rows = np.fromiter(
            (row_index[record_id] for pair in pairs for record_id in pair),
            dtype=np.int64,
            count=2 * len(pairs),
        ).reshape(-1, 2)
        rows_a = np.ascontiguousarray(rows[:, 0])
        rows_b = np.ascontiguousarray(rows[:, 1])
        # Per attribute: the block's score lane as a Python list, with
        # ``None`` punched in wherever either side's value is null.
        columns: list[list[float | None]] = []
        distinct_total = 0
        for attribute, kernel in zip(plan.attributes, plan.kernels):
            column = store.column(attribute).astype(np.int64, copy=False)
            vids_a = column[rows_a]
            vids_b = column[rows_b]
            present = (vids_a != NULL_VID) & (vids_b != NULL_VID)
            scores = np.full(len(pairs), np.nan, dtype=np.float64)
            if present.any():
                packed = (vids_a[present] << 32) | vids_b[present]
                unique, inverse = np.unique(packed, return_inverse=True)
                unique_scores = kernel.unique_scores(
                    store,
                    unique >> 32,
                    unique & np.int64(0xFFFFFFFF),
                )
                scores[present] = unique_scores[inverse]
                distinct_total += len(unique)
            lane: list[float | None] = scores.tolist()
            if not present.all():
                for position in np.flatnonzero(~present).tolist():
                    lane[position] = None
            columns.append(lane)
        _KERNEL_PAIRS.inc(len(pairs))
        if distinct_total:
            _KERNEL_DISTINCT.inc(distinct_total)
        # Mass-construct the frozen vectors the way pickle revives them
        # (__new__ plus a __dict__ write): the generated __init__ costs
        # two object.__setattr__ calls per instance, which dominates the
        # whole scoring pass at ~50k vectors per block.
        attributes = plan.attributes
        new = SimilarityVector.__new__
        vectors = []
        append = vectors.append
        for pair, lanes in zip(pairs, zip(*columns)):
            vector = new(SimilarityVector)
            vector.__dict__["pair"] = pair
            vector.__dict__["values"] = dict(zip(attributes, lanes))
            append(vector)
        return vectors
