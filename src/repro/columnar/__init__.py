"""Columnar record storage and vectorized comparison kernels.

The comparison hot path of the pipeline, re-laid out column-wise:
:class:`ColumnarStore` interns record values into per-attribute id
arrays, :func:`plan_for` maps a configured
:class:`~repro.matching.attribute_matching.AttributeComparator` onto
batch kernels, and :func:`compare_block` scores whole candidate-pair
blocks at once — byte-identical to the scalar measures, several times
faster.  See README § "Columnar comparison kernels".
"""

from repro.columnar.compare import compare_block, count_fallback, count_store_build
from repro.columnar.kernels import Kernel, KernelPlan, kernel_for, plan_for
from repro.columnar.store import NULL_VID, ColumnarStore

__all__ = [
    "ColumnarStore",
    "NULL_VID",
    "Kernel",
    "KernelPlan",
    "kernel_for",
    "plan_for",
    "compare_block",
    "count_fallback",
    "count_store_build",
]
