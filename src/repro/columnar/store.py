"""Columnar record storage for the comparison hot path.

A :class:`ColumnarStore` re-lays a set of records out as *per-attribute
columns* of interned value ids, mirroring the list-based columnar
processing that let graph DBMSs escape per-object pointer chasing
(*Columnar Storage and List-based Processing for Graph DBMS*, PAPERS.md):

* every distinct attribute value is **interned** once into a shared
  string pool (``vid`` 0 is the null sentinel covering both ``None``
  and ``""``, matching :meth:`repro.core.records.Record.value`);
* each attribute becomes one dense ``int32`` array mapping row → value
  id, with row ids aligned to the dataset's dense numeric ids;
* token-id and n-gram-id derivations are computed **once per distinct
  value** (not once per pair) and stored as CSR-style sorted id arrays
  plus in-order sequences, ready for the batch kernels of
  :mod:`repro.columnar.kernels`;
* numeric parses and Soundex codes are likewise precomputed per
  distinct value.

Because interning is exact (case-sensitive, byte-for-byte), value-id
equality is string equality, and every derivation equals what the
scalar measures in :mod:`repro.matching.similarity` would compute for
the same strings — the foundation of the kernels' byte-identical
scoring guarantee.

Stores pickle compactly (only the pool, the row ids, and the columns
travel; derived arrays are rebuilt lazily on the other side), and
:meth:`ColumnarStore.slice` cuts the per-shard wire payload for
:mod:`repro.matching.parallel` down to exactly the rows a shard
touches.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from repro.core.records import Dataset, Record
from repro.matching.similarity import (
    _token_tuple,
    ngrams,
    soundex,
)

__all__ = ["ColumnarStore", "NULL_VID"]

# Value id reserved for missing values (None or "", per Record.value).
NULL_VID = 0


class ColumnarStore:
    """Per-attribute columns of interned record values.

    Build with :meth:`from_dataset` (rows aligned with the dataset's
    dense numeric ids) or :meth:`from_records` (any mapping of record
    id → :class:`~repro.core.records.Record`, e.g. the resolved
    candidate view of the comparison stage or a streaming session's
    live registry).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        row_ids: Sequence[str],
        values: Sequence[str | None],
        columns: Mapping[str, np.ndarray],
    ) -> None:
        if not values or values[0] is not None:
            raise ValueError("values[0] must be the None null sentinel")
        self.attributes: tuple[str, ...] = tuple(attributes)
        self.row_ids: tuple[str, ...] = tuple(row_ids)
        self._values: list[str | None] = list(values)
        self._columns: dict[str, np.ndarray] = {
            attribute: np.asarray(column, dtype=np.int32)
            for attribute, column in columns.items()
        }
        for attribute in self.attributes:
            if len(self._columns[attribute]) != len(self.row_ids):
                raise ValueError(
                    f"column {attribute!r} has {len(self._columns[attribute])} "
                    f"rows, store has {len(self.row_ids)}"
                )
        self._row_of: dict[str, int] = {
            record_id: row for row, record_id in enumerate(self.row_ids)
        }
        self._reset_derived()

    def _reset_derived(self) -> None:
        # Derived arrays are per *distinct value* and shared across
        # attributes (the same string yields the same tokens wherever
        # it appears); each is built lazily on first kernel use.
        self._token_sequences: list[tuple[str, ...]] | None = None
        self._token_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._ngram_csr: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._numeric: tuple[np.ndarray, np.ndarray] | None = None
        self._soundex: np.ndarray | None = None
        self._token_vocab: dict[str, int] | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_dataset(cls, dataset: Dataset) -> "ColumnarStore":
        """Columns over a dataset, rows aligned with its numeric ids."""
        return cls._build(
            list(dataset), dataset.attributes, [r.record_id for r in dataset]
        )

    @classmethod
    def from_records(
        cls,
        records: Mapping[str, Record],
        attributes: Sequence[str],
    ) -> "ColumnarStore":
        """Columns over a record mapping, rows in mapping order."""
        ordered = list(records.values())
        return cls._build(ordered, attributes, [r.record_id for r in ordered])

    @classmethod
    def _build(
        cls,
        records: Sequence[Record],
        attributes: Sequence[str],
        row_ids: Sequence[str],
    ) -> "ColumnarStore":
        values: list[str | None] = [None]
        vid_of: dict[str, int] = {}
        columns: dict[str, np.ndarray] = {}
        for attribute in attributes:
            column = np.empty(len(records), dtype=np.int32)
            for row, record in enumerate(records):
                value = record.value(attribute)
                if value is None:
                    column[row] = NULL_VID
                    continue
                vid = vid_of.get(value)
                if vid is None:
                    vid = len(values)
                    vid_of[value] = vid
                    values.append(value)
                column[row] = vid
            columns[attribute] = column
        return cls(attributes, row_ids, values, columns)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self.row_ids)

    def __contains__(self, record_id: object) -> bool:
        return record_id in self._row_of

    @property
    def distinct_values(self) -> int:
        """Distinct non-null values in the interning pool."""
        return len(self._values) - 1

    def value_of(self, vid: int) -> str | None:
        """The interned string behind one value id (``None`` for 0)."""
        return self._values[vid]

    @property
    def values(self) -> Sequence[str | None]:
        """The interning pool; index is the value id."""
        return self._values

    def row_of(self, record_id: str) -> int:
        """Dense row index of ``record_id``."""
        return self._row_of[record_id]

    @property
    def row_index(self) -> Mapping[str, int]:
        """Record id → dense row index, for batch lookups."""
        return self._row_of

    def column(self, attribute: str) -> np.ndarray:
        """The ``int32`` value-id array of one attribute."""
        try:
            return self._columns[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} not in columnar store "
                f"({', '.join(self.attributes)})"
            ) from None

    def record(self, record_id: str) -> Record:
        """Rebuild one :class:`Record` from the columns (fallback path)."""
        row = self._row_of[record_id]
        return Record(
            record_id=record_id,
            values={
                attribute: self._values[int(self._columns[attribute][row])]
                for attribute in self.attributes
            },
        )

    # -- derived per-distinct-value arrays ----------------------------------

    def token_sequences(self) -> list[tuple[str, ...]]:
        """In-order word-token tuples per value id (Monge–Elkan order)."""
        if self._token_sequences is None:
            self._token_sequences = [()] + [
                _token_tuple(value) for value in self._values[1:]
            ]
        return self._token_sequences

    def _vocab(self) -> dict[str, int]:
        if self._token_vocab is None:
            self._token_vocab = {}
        return self._token_vocab

    def token_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Sorted unique token ids per value id, CSR layout.

        Returns ``(indptr, ids)``: value id ``v`` owns
        ``ids[indptr[v]:indptr[v + 1]]``, sorted ascending.  Token ids
        come from a store-local vocabulary, so id equality is token
        equality and set sizes/intersections equal the scalar
        ``frozenset`` derivations exactly.
        """
        if self._token_csr is None:
            vocab = self._vocab()
            self._token_csr = _build_csr(
                (
                    sorted({token for token in sequence})
                    for sequence in self.token_sequences()
                ),
                vocab,
            )
        return self._token_csr

    def ngram_csr(self, n: int) -> tuple[np.ndarray, np.ndarray]:
        """Sorted unique character n-gram ids per value id, CSR layout."""
        cached = self._ngram_csr.get(n)
        if cached is None:
            vocab: dict[str, int] = {}
            cached = _build_csr(
                (
                    sorted(ngrams(value, n)) if value is not None else ()
                    for value in self._values
                ),
                vocab,
            )
            self._ngram_csr[n] = cached
        return cached

    def numeric(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-vid ``(parsed, usable)`` arrays for the numeric kernel.

        ``usable`` marks values that parse as *finite* floats — exactly
        the inputs :func:`repro.matching.similarity.numeric_similarity`
        scores with the relative-distance formula; everything else
        (unparsable or non-finite) takes its exact-equality fallback.
        """
        if self._numeric is None:
            parsed = np.zeros(len(self._values), dtype=np.float64)
            usable = np.zeros(len(self._values), dtype=bool)
            for vid, value in enumerate(self._values):
                if vid == NULL_VID:
                    continue
                try:
                    number = float(value)
                except ValueError:
                    continue
                if math.isfinite(number):
                    parsed[vid] = number
                    usable[vid] = True
            self._numeric = (parsed, usable)
        return self._numeric

    def soundex_codes(self) -> np.ndarray:
        """Interned Soundex code id per value id.

        Code id 0 is the ``SOUNDEX_SENTINEL`` (non-encodable values),
        so kernels can apply the exact-equality fallback by comparing
        against 0.
        """
        if self._soundex is None:
            code_ids: dict[str, int] = {"0000": 0}
            codes = np.zeros(len(self._values), dtype=np.int32)
            for vid, value in enumerate(self._values):
                if vid == NULL_VID:
                    continue
                code = soundex(value)
                code_id = code_ids.setdefault(code, len(code_ids))
                codes[vid] = code_id
            self._soundex = codes
        return self._soundex

    # -- slicing and the wire -----------------------------------------------

    def slice(self, record_ids: Iterable[str]) -> "ColumnarStore":
        """A compact sub-store holding only ``record_ids`` (in order).

        The value pool is re-interned down to the values those rows
        actually reference — the per-shard wire payload of the parallel
        comparison stage ships column slices instead of per-record
        dicts.
        """
        ordered = list(record_ids)
        rows = np.fromiter(
            (self._row_of[record_id] for record_id in ordered),
            dtype=np.int64,
            count=len(ordered),
        )
        remap: dict[int, int] = {NULL_VID: NULL_VID}
        values: list[str | None] = [None]
        columns: dict[str, np.ndarray] = {}
        for attribute in self.attributes:
            old = self._columns[attribute][rows]
            new = np.empty(len(old), dtype=np.int32)
            for position, vid in enumerate(old.tolist()):
                mapped = remap.get(vid)
                if mapped is None:
                    mapped = len(values)
                    remap[vid] = mapped
                    values.append(self._values[vid])
                new[position] = mapped
            columns[attribute] = new
        return ColumnarStore(self.attributes, ordered, values, columns)

    def __getstate__(self) -> dict[str, object]:
        """Pickle only the columns; derived arrays rebuild lazily."""
        return {
            "attributes": self.attributes,
            "row_ids": self.row_ids,
            "values": self._values,
            "columns": self._columns,
        }

    def __setstate__(self, state: dict[str, object]) -> None:
        self.__init__(
            state["attributes"],
            state["row_ids"],
            state["values"],
            state["columns"],
        )

    def __repr__(self) -> str:
        return (
            f"ColumnarStore(rows={len(self.row_ids)}, "
            f"attributes={len(self.attributes)}, "
            f"distinct_values={self.distinct_values})"
        )


def _build_csr(
    id_lists: Iterable[Sequence[str]], vocab: dict[str, int]
) -> tuple[np.ndarray, np.ndarray]:
    """CSR ``(indptr, ids)`` arrays over per-value sorted string lists.

    Interns each string into ``vocab`` — ids are assigned in first-use
    order, then each row is re-sorted by id so kernels can merge rows
    as sorted runs.
    """
    indptr = [0]
    flat: list[int] = []
    for strings in id_lists:
        row = sorted(
            vocab.setdefault(string, len(vocab)) for string in strings
        )
        flat.extend(row)
        indptr.append(len(flat))
    return (
        np.asarray(indptr, dtype=np.int64),
        np.asarray(flat, dtype=np.int64),
    )
