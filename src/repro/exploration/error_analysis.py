"""Error analysis: nearest correctly classified pair (§4.4).

"To better understand why a pair was misclassified [...] one could
analyze why a similar pair was labelled correctly."  For a
misclassified pair ``p_f = {e_f1, e_f2}`` we search the correctly
classified pairs for the most similar ``p_t = {e_t1, e_t2}``.
Similarity between the two *pairs* is expressed by two vectors

    v_direct = (sim(e_f1, e_t1), sim(e_f2, e_t2))
    v_cross  = (sim(e_f1, e_t2), sim(e_f2, e_t1))

each reduced with a Minkowski norm (q in [1, 2]) against the origin,
and the pair score is the max of the two reductions.  The candidate
with the highest score is selected.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.pairs import Pair
from repro.core.records import Dataset, Record

__all__ = ["minkowski_norm", "pair_similarity_score", "ErrorAnalysis", "Explanation"]

RecordSimilarity = Callable[[Record, Record], float]


def minkowski_norm(vector: tuple[float, float], q: float) -> float:
    """``(|v1|^q + |v2|^q)^(1/q)`` — Manhattan at q=1, Euclidean at q=2."""
    if not 1.0 <= q <= 2.0:
        raise ValueError(f"q must be in [1, 2], got {q}")
    return (abs(vector[0]) ** q + abs(vector[1]) ** q) ** (1.0 / q)


def pair_similarity_score(
    failed: tuple[Record, Record],
    correct: tuple[Record, Record],
    similarity: RecordSimilarity,
    q: float = 2.0,
) -> float:
    """``max(distance(v_direct), distance(v_cross))`` per §4.4."""
    failed_a, failed_b = failed
    correct_a, correct_b = correct
    direct = (similarity(failed_a, correct_a), similarity(failed_b, correct_b))
    cross = (similarity(failed_a, correct_b), similarity(failed_b, correct_a))
    return max(minkowski_norm(direct, q), minkowski_norm(cross, q))


@dataclass(frozen=True)
class Explanation:
    """A misclassified pair enriched with its nearest correct pair."""

    failed_pair: Pair
    nearest_correct_pair: Pair | None
    score: float


class ErrorAnalysis:
    """Enrich misclassified pairs with similar correctly classified pairs.

    Parameters
    ----------
    dataset:
        Provides the records behind pair ids.
    similarity:
        Record-level similarity; defaults to the mean Jaro–Winkler over
        shared non-null attributes.  §4.4 notes exhaustive search costs
        ``O(n^4)`` in the worst case and suggests "a simple distance
        measure for a set of promising pairs internally" — pass a
        restricted ``candidates`` list to :meth:`explain` for that.
    graph:
        Optional :class:`~repro.graph.model.MatchGraph` built from the
        experiment under analysis.  When present,
        :meth:`correct_duplicate_pairs` reads the matched pairs off the
        graph's components instead of re-deriving them from the
        experiment — same output, one source of pair structure.
    """

    def __init__(
        self,
        dataset: Dataset,
        similarity: RecordSimilarity | None = None,
        q: float = 2.0,
        graph=None,
    ) -> None:
        self.dataset = dataset
        self.q = q
        self.graph = graph
        if similarity is None:
            similarity = _default_record_similarity
        self.similarity = similarity

    def correct_duplicate_pairs(self, experiment, gold) -> set[Pair]:
        """True-positive pairs — the usual ``correct_pairs`` candidates.

        The intersection of the experiment's matched pairs (transitive
        closure included) with the gold standard's duplicate pairs.
        With a :attr:`graph` attached, the matched pairs come from its
        component structure (``cluster_pairs()``) — equivalent by the
        graph-identity invariant, covered by the equivalence tests.
        """
        if self.graph is not None:
            return self.graph.cluster_pairs() & gold.pairs()
        return experiment.pairs() & gold.pairs()

    def explain(
        self,
        failed_pair: Pair,
        correct_pairs: Sequence[Pair],
    ) -> Explanation:
        """Find the most similar correctly classified pair (§4.4)."""
        failed = (
            self.dataset[failed_pair[0]],
            self.dataset[failed_pair[1]],
        )
        best_pair: Pair | None = None
        best_score = -math.inf
        for candidate in correct_pairs:
            if candidate == failed_pair:
                continue
            correct = (self.dataset[candidate[0]], self.dataset[candidate[1]])
            score = pair_similarity_score(failed, correct, self.similarity, self.q)
            if score > best_score or (
                score == best_score
                and (best_pair is None or candidate < best_pair)
            ):
                best_score = score
                best_pair = candidate
        return Explanation(
            failed_pair=failed_pair,
            nearest_correct_pair=best_pair,
            score=best_score if best_pair is not None else 0.0,
        )

    def explain_all(
        self,
        failed_pairs: Sequence[Pair],
        correct_pairs: Sequence[Pair],
    ) -> list[Explanation]:
        """Explanations for a batch of misclassified pairs."""
        return [self.explain(pair, correct_pairs) for pair in failed_pairs]


def _default_record_similarity(first: Record, second: Record) -> float:
    from repro.matching.similarity import jaro_winkler

    shared = [
        attribute
        for attribute in first.values
        if first.value(attribute) is not None
        and second.value(attribute) is not None
    ]
    if not shared:
        return 0.0
    return sum(
        jaro_winkler(first.value(attribute), second.value(attribute))
        for attribute in shared
    ) / len(shared)
