"""Exploration techniques for data matching results (§4)."""

from repro.exploration.attributes import (
    AttributeRatio,
    equal_ratios,
    null_ratios,
    render_bar_chart,
)
from repro.exploration.error_analysis import (
    ErrorAnalysis,
    Explanation,
    minkowski_norm,
    pair_similarity_score,
)
from repro.exploration.error_categories import (
    ErrorCategorization,
    ValueRelation,
    categorize_errors,
    categorize_record_pair,
    classify_value_pair,
)
from repro.exploration.selection import (
    Partition,
    misclassified_outliers,
    pairs_around_threshold,
    percentile_partitions,
    plain_result_pairs,
    sample_class_based,
    sample_quantiles,
    sample_random,
)
from repro.exploration.setops import (
    SetComparison,
    VennRegion,
    enrich_pairs,
    pairs_missed_by_most,
    venn_regions,
)
from repro.exploration.sorting import (
    ColumnEntropyModel,
    sort_by_entropy,
    sort_by_similarity,
)

__all__ = [
    "AttributeRatio",
    "ColumnEntropyModel",
    "ErrorAnalysis",
    "ErrorCategorization",
    "Explanation",
    "Partition",
    "ValueRelation",
    "categorize_errors",
    "categorize_record_pair",
    "classify_value_pair",
    "SetComparison",
    "VennRegion",
    "enrich_pairs",
    "equal_ratios",
    "minkowski_norm",
    "misclassified_outliers",
    "null_ratios",
    "pair_similarity_score",
    "pairs_around_threshold",
    "pairs_missed_by_most",
    "percentile_partitions",
    "plain_result_pairs",
    "render_bar_chart",
    "sample_class_based",
    "sample_quantiles",
    "sample_random",
    "sort_by_entropy",
    "sort_by_similarity",
    "venn_regions",
]
