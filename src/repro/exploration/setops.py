"""Set-based comparison of matching results (§4.1).

"The set operations intersection and difference can describe all
partitions of the confusion matrix [...] the generic approach can
compare multiple result sets."  This module implements the engine
behind Snowman's N-Intersection Viewer (Figure 1): Venn-region
computation over any number of experiments/ground truths, record
enrichment, and the derived evaluations the paper lists (common pairs,
unique findings, experimental ground truths).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from repro.core.experiment import Experiment, GoldStandard
from repro.core.pairs import Pair
from repro.core.records import Dataset, Record

__all__ = [
    "SetComparison",
    "VennRegion",
    "venn_regions",
    "enrich_pairs",
    "pairs_missed_by_most",
]


@dataclass(frozen=True)
class VennRegion:
    """One region of the N-set Venn diagram.

    ``membership`` indicates, per input set (in input order), whether
    the region lies inside it.  The all-``False`` region (pairs in no
    set) is never produced — it is not enumerable without ``[D]^2``.
    """

    membership: tuple[bool, ...]
    pairs: frozenset[Pair]

    @property
    def size(self) -> int:
        """Number of pairs in this region."""
        return len(self.pairs)

    def label(self, names: Sequence[str]) -> str:
        """Human-readable region label, e.g. ``"A ∩ B \\ C"``."""
        inside = [name for name, member in zip(names, self.membership) if member]
        outside = [
            name for name, member in zip(names, self.membership) if not member
        ]
        text = " ∩ ".join(inside)
        if outside:
            text += " \\ " + " \\ ".join(outside)
        return text


def _pair_sets(
    inputs: Sequence[Experiment | GoldStandard | Iterable[Pair]],
) -> list[set[Pair]]:
    sets: list[set[Pair]] = []
    for source in inputs:
        if isinstance(source, Experiment):
            sets.append(source.pairs())
        elif isinstance(source, GoldStandard):
            sets.append(set(source.pairs()))
        else:
            sets.append(set(source))
    return sets


def venn_regions(
    inputs: Sequence[Experiment | GoldStandard | Iterable[Pair]],
) -> list[VennRegion]:
    """All non-empty Venn regions of the input pair sets.

    For ``n`` inputs there are up to ``2^n - 1`` regions; the paper
    notes diagrams beyond three sets need advanced geometry [53] — the
    *computation* here supports any ``n``, visualization is left to the
    caller.
    """
    sets = _pair_sets(inputs)
    if not sets:
        return []
    regions: dict[tuple[bool, ...], set[Pair]] = {}
    universe: set[Pair] = set().union(*sets)
    for pair in universe:
        membership = tuple(pair in s for s in sets)
        regions.setdefault(membership, set()).add(pair)
    return [
        VennRegion(membership=membership, pairs=frozenset(pairs))
        for membership, pairs in sorted(
            regions.items(), key=lambda item: item[0], reverse=True
        )
    ]


class SetComparison:
    """Interactive-style N-way set comparison bound to a dataset.

    Mirrors the N-Intersection Viewer: named inputs, region selection
    by inclusion/exclusion, and record enrichment ("Snowman shows
    complete records instead of only entity IDs", §5.1).
    """

    def __init__(
        self,
        dataset: Dataset,
        inputs: Mapping[str, Experiment | GoldStandard | Iterable[Pair]],
    ) -> None:
        if not inputs:
            raise ValueError("comparison needs at least one input set")
        self.dataset = dataset
        self.names = list(inputs)
        self._sets = dict(zip(self.names, _pair_sets(list(inputs.values()))))

    def pairs_of(self, name: str) -> set[Pair]:
        """The pair set registered under ``name``."""
        try:
            return set(self._sets[name])
        except KeyError:
            known = ", ".join(self.names)
            raise KeyError(f"unknown input {name!r}; known: {known}") from None

    def select(
        self,
        include: Sequence[str],
        exclude: Sequence[str] = (),
    ) -> set[Pair]:
        """Pairs in every ``include`` set and in no ``exclude`` set.

        This is the "clicking on regions" operation of §4.1: e.g.
        ``select(include=["gold"], exclude=["run-1", "run-2"])`` yields
        the true matches that no run found (Figure 1's evaluation).
        """
        if not include:
            raise ValueError("select needs at least one set to include")
        result = self.pairs_of(include[0])
        for name in include[1:]:
            result &= self._sets[name]
        for name in exclude:
            result -= self._sets[name]
        return result

    def regions(self) -> list[VennRegion]:
        """All non-empty Venn regions across the named inputs."""
        return venn_regions([self._sets[name] for name in self.names])

    def region_sizes(self) -> dict[str, int]:
        """Region label -> pair count, for rendering a Venn diagram."""
        return {
            region.label(self.names): region.size for region in self.regions()
        }

    def enriched(self, pairs: Iterable[Pair]) -> list[tuple[Record, Record]]:
        """Join pair ids with the actual dataset records (§4.1)."""
        return enrich_pairs(self.dataset, pairs)

    def experimental_ground_truth(self, minimum_sets: int | None = None) -> set[Pair]:
        """Pairs found by at least ``minimum_sets`` inputs (default: all).

        "Create an experimental ground truth [59] from the intersection
        of multiple experiments" (§4.1).
        """
        needed = minimum_sets if minimum_sets is not None else len(self.names)
        counts: dict[Pair, int] = {}
        for pairs in self._sets.values():
            for pair in pairs:
                counts[pair] = counts.get(pair, 0) + 1
        return {pair for pair, count in counts.items() if count >= needed}


def enrich_pairs(
    dataset: Dataset, pairs: Iterable[Pair]
) -> list[tuple[Record, Record]]:
    """Resolve id pairs into record pairs, sorted for stable display."""
    return [
        (dataset[first], dataset[second]) for first, second in sorted(pairs)
    ]


def pairs_missed_by_most(
    gold: GoldStandard,
    experiments: Sequence[Experiment],
    minimum_missing: int,
) -> set[Pair]:
    """True pairs that at least ``minimum_missing`` experiments missed.

    The §5.4 evaluation: "we identified three true duplicate pairs that
    were not detected by at least four solutions [...] by subtracting
    all result sets from the ground truth".
    """
    result: set[Pair] = set()
    for pair in gold.pairs():
        missing = sum(1 for experiment in experiments if pair not in experiment)
        if missing >= minimum_missing:
            result.add(pair)
    return result
