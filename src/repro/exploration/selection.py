"""Pair selection strategies (§4.2).

"Real-world datasets can contain millions of records, making it
unfeasible to examine all pairs in a set.  Therefore, strategies to
reduce the number of pairs shown are crucial."

Implemented: pairs around the threshold (§4.2.1), incorrectly labeled
outliers (§4.2.2), percentiles with representatives under three
sampling schemes (§4.2.3), and plain (non-closure) result pairs
(§4.2.4).  Strategies operate on scored pairs and compose freely.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.confusion import ConfusionMatrix
from repro.core.experiment import Experiment, GoldStandard
from repro.core.pairs import Pair, ScoredPair

__all__ = [
    "pairs_around_threshold",
    "misclassified_outliers",
    "Partition",
    "percentile_partitions",
    "sample_random",
    "sample_class_based",
    "sample_quantiles",
    "plain_result_pairs",
]


def pairs_around_threshold(
    scored: Sequence[ScoredPair],
    threshold: float,
    k: int,
    above_fraction: float = 0.5,
) -> list[ScoredPair]:
    """The ``k`` scored pairs closest to the similarity threshold.

    "Pairs in this section are usually considered uncertain, as a
    slight shift of the threshold may change their state" (§4.2.1).
    ``above_fraction`` splits the budget between pairs above and below
    the threshold (default: half/half; pass e.g. the ratio of
    misclassifications above/below for the proportional variant).
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if not 0.0 <= above_fraction <= 1.0:
        raise ValueError(f"above_fraction must be in [0,1], got {above_fraction}")
    above = sorted(
        (sp for sp in scored if sp.score >= threshold),
        key=lambda sp: (sp.score - threshold, sp.pair),
    )
    below = sorted(
        (sp for sp in scored if sp.score < threshold),
        key=lambda sp: (threshold - sp.score, sp.pair),
    )
    want_above = round(k * above_fraction)
    want_below = k - want_above
    taken_above = above[:want_above]
    taken_below = below[:want_below]
    # redistribute leftover budget if one side is short
    shortage = k - len(taken_above) - len(taken_below)
    if shortage > 0:
        if len(taken_above) < want_above:
            taken_below = below[: want_below + shortage]
        else:
            taken_above = above[: want_above + shortage]
    selected = taken_above + taken_below
    return sorted(selected, key=lambda sp: (abs(sp.score - threshold), sp.pair))[:k]


def misclassified_outliers(
    scored: Sequence[ScoredPair],
    threshold: float,
    gold: GoldStandard,
    k: int,
) -> list[ScoredPair]:
    """Incorrectly labeled pairs furthest from the threshold (§4.2.2).

    These are the confident mistakes — "one could evaluate why the
    matching solution failed by searching for a common 'misleading'
    feature among the selected pairs."
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    wrong = [
        sp
        for sp in scored
        if (sp.score >= threshold) != gold.is_duplicate(*sp.pair)
    ]
    wrong.sort(key=lambda sp: (-abs(sp.score - threshold), sp.pair))
    return wrong[:k]


@dataclass(frozen=True)
class Partition:
    """One score partition with its representatives and error profile.

    "We can label each partition with its confusion matrix and metrics.
    Thus, users can focus on those partitions with high error levels"
    (§4.2.3).
    """

    index: int
    low_score: float
    high_score: float
    pairs: tuple[ScoredPair, ...]
    representatives: tuple[ScoredPair, ...]
    matrix: ConfusionMatrix | None

    @property
    def error_count(self) -> int:
        """False positives + false negatives within the partition."""
        if self.matrix is None:
            return 0
        return self.matrix.false_positives + self.matrix.false_negatives

    @property
    def is_confident(self) -> bool:
        """A partition with few to no incorrectly labeled pairs (§4.2.3)."""
        if self.matrix is None or not self.pairs:
            return True
        return self.error_count / len(self.pairs) < 0.05


Sampler = Callable[[Sequence[ScoredPair], int], list[ScoredPair]]


def sample_random(
    pairs: Sequence[ScoredPair], budget: int, seed: int = 0
) -> list[ScoredPair]:
    """Unbiased random sample of ``budget`` pairs (§4.2.3)."""
    if budget >= len(pairs):
        return list(pairs)
    rng = random.Random(seed)
    return rng.sample(list(pairs), budget)


def sample_class_based(
    pairs: Sequence[ScoredPair],
    budget: int,
    correct: Callable[[ScoredPair], bool],
    seed: int = 0,
) -> list[ScoredPair]:
    """Sample proportionally to correct/incorrect class sizes (§4.2.3).

    "For a partition with kT correctly and kF incorrectly classified
    pairs, we randomly sample b·kT/(kT+kF) correctly and b·kF/(kT+kF)
    incorrectly labeled pairs."
    """
    right = [sp for sp in pairs if correct(sp)]
    wrong = [sp for sp in pairs if not correct(sp)]
    total = len(right) + len(wrong)
    if total == 0 or budget <= 0:
        return []
    if budget >= total:
        return list(pairs)
    rng = random.Random(seed)
    want_right = round(budget * len(right) / total)
    want_wrong = budget - want_right
    want_right = min(want_right, len(right))
    want_wrong = min(want_wrong, len(wrong))
    sample = rng.sample(right, want_right) + rng.sample(wrong, want_wrong)
    # fill any rounding shortfall from the larger class
    shortfall = budget - len(sample)
    if shortfall > 0:
        pool = [sp for sp in pairs if sp not in set(sample)]
        sample += rng.sample(pool, min(shortfall, len(pool)))
    return sample


def sample_quantiles(pairs: Sequence[ScoredPair], budget: int) -> list[ScoredPair]:
    """Deterministic quantile sample by similarity score (§4.2.3).

    For ``budget=5`` selects the pairs at quantiles 0, .25, .5, .75, 1 —
    "unbiasedly representing the different parts of the partition".
    """
    if budget <= 0 or not pairs:
        return []
    ordered = sorted(pairs, key=lambda sp: (sp.score, sp.pair))
    if budget == 1:
        return [ordered[len(ordered) // 2]]
    if budget >= len(ordered):
        return list(ordered)
    picks = []
    seen: set[Pair] = set()
    for index in range(budget):
        position = round(index * (len(ordered) - 1) / (budget - 1))
        candidate = ordered[position]
        if candidate.pair not in seen:
            seen.add(candidate.pair)
            picks.append(candidate)
    return picks


def percentile_partitions(
    scored: Sequence[ScoredPair],
    partitions: int,
    budget_per_partition: int,
    gold: GoldStandard | None = None,
    threshold: float | None = None,
    sampler: str = "quantile",
    total_pairs: int | None = None,
    seed: int = 0,
) -> list[Partition]:
    """Split scored pairs into score partitions with representatives.

    "Conceptually, this strategy sorts result sets by a similarity
    score and then splits them into smaller partitions.  Each of these
    partitions is then reduced to a few representative pairs" (§4.2.3).

    With ``gold`` and ``threshold`` given, each partition also carries
    its confusion matrix (true negatives need ``total_pairs``;
    partition-local TN is reported as 0 when omitted).
    """
    if partitions < 1:
        raise ValueError(f"need at least one partition, got {partitions}")
    ordered = sorted(scored, key=lambda sp: (sp.score, sp.pair))
    if not ordered:
        return []
    chunk = max(1, len(ordered) // partitions)
    results: list[Partition] = []
    for index in range(partitions):
        start = index * chunk
        stop = (index + 1) * chunk if index < partitions - 1 else len(ordered)
        members = ordered[start:stop]
        if not members:
            continue
        matrix = None
        correct: Callable[[ScoredPair], bool] | None = None
        if gold is not None and threshold is not None:
            tp = fp = fn = tn = 0
            for sp in members:
                predicted = sp.score >= threshold
                actual = gold.is_duplicate(*sp.pair)
                if predicted and actual:
                    tp += 1
                elif predicted and not actual:
                    fp += 1
                elif actual:
                    fn += 1
                else:
                    tn += 1
            matrix = ConfusionMatrix(tp, fp, fn, tn)

            def correct(sp: ScoredPair, _threshold=threshold) -> bool:
                """Correctly classified pairs of this partition."""
                return (sp.score >= _threshold) == gold.is_duplicate(*sp.pair)

        if sampler == "random":
            representatives = sample_random(members, budget_per_partition, seed)
        elif sampler == "class":
            if correct is None:
                raise ValueError("class-based sampling needs gold and threshold")
            representatives = sample_class_based(
                members, budget_per_partition, correct, seed
            )
        elif sampler == "quantile":
            representatives = sample_quantiles(members, budget_per_partition)
        else:
            raise ValueError(
                f"unknown sampler {sampler!r}; use random, class, or quantile"
            )
        results.append(
            Partition(
                index=index,
                low_score=members[0].score,
                high_score=members[-1].score,
                pairs=tuple(members),
                representatives=tuple(representatives),
                matrix=matrix,
            )
        )
    return results


def plain_result_pairs(experiment: Experiment, subset: set[Pair] | None = None) -> set[Pair]:
    """Hide pairs added by the clustering step (§4.2.4).

    "Frost includes a selection strategy that will hide all pairs that
    were added by a clustering algorithm [...] What remains are all
    pairs that were originally labeled by a matching solution."
    """
    original = experiment.original_pairs()
    if subset is None:
        return original
    return original & subset
