"""Sorting strategies for record pairs (§4.3).

"Frost also supports to sort pairs by their interestingness within a
given subset.  When relevant pairs are shown first, developers can gain
insights more quickly."

* similarity-score sorting (§4.3.1) — the matching solution's own view;
* column-entropy sorting (§4.3.2) — an independent information-content
  score: ``cell entropy = Σ_token prob_t · -log(columnProb_t)``, summed
  over both records' cells.  Pairs with high entropy contain many rare
  tokens and should be easy; misclassified high-entropy pairs are the
  interesting ones.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Sequence

from repro.core.pairs import Pair, ScoredPair
from repro.core.records import Dataset, Record

__all__ = ["sort_by_similarity", "ColumnEntropyModel", "sort_by_entropy"]


def sort_by_similarity(
    scored: Sequence[ScoredPair], descending: bool = True
) -> list[ScoredPair]:
    """Sort scored pairs by similarity (§4.3.1), ties broken by pair."""
    return sorted(
        scored,
        key=lambda sp: ((-sp.score if descending else sp.score), sp.pair),
    )


class ColumnEntropyModel:
    """Column-wise token statistics powering the entropy score (§4.3.2).

    Fit once per dataset: for each column, the token distribution across
    all records.  ``cell_entropy`` follows the paper's formula with
    ``prob_t`` the token's probability *within the cell* and
    ``columnProb_t`` its probability within the column.
    """

    def __init__(self, dataset: Dataset) -> None:
        self.dataset = dataset
        self._column_counts: dict[str, Counter[str]] = {}
        self._column_totals: dict[str, int] = {}
        for attribute in dataset.attributes:
            counts: Counter[str] = Counter()
            for record in dataset:
                value = record.value(attribute)
                if value:
                    counts.update(value.split())
            self._column_counts[attribute] = counts
            self._column_totals[attribute] = sum(counts.values())

    def column_probability(self, attribute: str, token: str) -> float:
        """``columnProb_t``: token probability within the column.

        Unseen tokens get a small floor probability so their information
        content stays finite.
        """
        total = self._column_totals.get(attribute, 0)
        if total == 0:
            return 1.0
        count = self._column_counts[attribute].get(token, 0)
        if count == 0:
            return 1.0 / (total + 1)
        return count / total

    def cell_entropy(self, record: Record, attribute: str) -> float:
        """``Σ_token prob_t · -log(columnProb_t)`` for one cell."""
        value = record.value(attribute)
        if not value:
            return 0.0
        tokens = value.split()
        cell_counts = Counter(tokens)
        cell_total = len(tokens)
        entropy = 0.0
        for token, count in cell_counts.items():
            probability = count / cell_total
            entropy += probability * -math.log(
                self.column_probability(attribute, token)
            )
        return entropy

    def record_entropy(self, record: Record) -> float:
        """Sum of the record's cell entropies across the schema."""
        return sum(
            self.cell_entropy(record, attribute)
            for attribute in self.dataset.attributes
        )

    def pair_entropy(self, pair: Pair) -> float:
        """"For a given pair we can calculate its entropy as the sum of
        all cell entropies of both records" (§4.3.2)."""
        first, second = pair
        return self.record_entropy(self.dataset[first]) + self.record_entropy(
            self.dataset[second]
        )


def sort_by_entropy(
    dataset: Dataset,
    pairs: Sequence[Pair] | Sequence[ScoredPair],
    descending: bool = True,
    model: ColumnEntropyModel | None = None,
) -> list[tuple[Pair, float]]:
    """Sort pairs by column entropy (§4.3.2), returning (pair, entropy).

    Accepts plain or scored pairs; a prebuilt ``model`` avoids refitting
    the column statistics for repeated sorts.
    """
    entropy_model = model or ColumnEntropyModel(dataset)
    plain: list[Pair] = [
        sp.pair if isinstance(sp, ScoredPair) else sp for sp in pairs
    ]
    scored = [(pair, entropy_model.pair_entropy(pair)) for pair in plain]
    scored.sort(key=lambda item: ((-item[1] if descending else item[1]), item[0]))
    return scored
