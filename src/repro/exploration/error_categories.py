"""Error categorization (§7 outlook: "Categorizing errors").

"The ability to categorize the errors of a matching solution helps to
more easily find structural deficiencies.  For example, a matching
solution could be especially weak in the handling of typos."

For every misclassified pair we classify, per attribute, the
*relationship* between the two records' values — equal, formatting-only
difference, word-order difference, abbreviation, typo, conflicting, or
involving missing values.  Aggregated over all false negatives this
reveals which error class defeats the solution (e.g. many
typo-relations among missed duplicates ⇒ weak typo handling); over all
false positives it reveals which kind of agreement misleads it.
"""

from __future__ import annotations

import enum
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from repro.core.experiment import Experiment, GoldStandard
from repro.core.pairs import Pair
from repro.core.records import Dataset, Record

__all__ = [
    "ValueRelation",
    "classify_value_pair",
    "categorize_record_pair",
    "ErrorCategorization",
    "categorize_errors",
]


class ValueRelation(enum.Enum):
    """How two attribute values of a record pair relate to each other."""

    BOTH_NULL = "both-null"
    ONE_NULL = "one-null"
    EQUAL = "equal"
    FORMATTING = "formatting"  # equal after case/whitespace normalization
    WORD_ORDER = "word-order"  # same tokens, different order
    ABBREVIATION = "abbreviation"  # tokens abbreviate each other
    TYPO = "typo"  # small edit distance
    DIFFERENT = "different"  # none of the above


def _normalized(value: str) -> str:
    return " ".join(value.lower().split())


def _levenshtein(first: str, second: str, limit: int) -> int:
    """Edit distance, early-exiting once it must exceed ``limit``."""
    if abs(len(first) - len(second)) > limit:
        return limit + 1
    previous = list(range(len(second) + 1))
    for i, char_a in enumerate(first, start=1):
        current = [i]
        row_minimum = i
        for j, char_b in enumerate(second, start=1):
            cost = 0 if char_a == char_b else 1
            value = min(
                previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost
            )
            current.append(value)
            row_minimum = min(row_minimum, value)
        if row_minimum > limit:
            return limit + 1
        previous = current
    return previous[-1]


def _abbreviates(first: str, second: str) -> bool:
    """Whether token ``first`` abbreviates ``second`` ('j.' vs 'john')."""
    stem = first.rstrip(".")
    return 1 <= len(stem) < len(second) and second.startswith(stem)


def _token_abbreviation_match(first: str, second: str) -> bool:
    """Tokens align pairwise with at least one abbreviation relation."""
    tokens_a = first.split()
    tokens_b = second.split()
    if len(tokens_a) != len(tokens_b):
        return False
    saw_abbreviation = False
    for token_a, token_b in zip(tokens_a, tokens_b):
        if token_a == token_b:
            continue
        if _abbreviates(token_a, token_b) or _abbreviates(token_b, token_a):
            saw_abbreviation = True
            continue
        return False
    return saw_abbreviation


def classify_value_pair(
    first: str | None, second: str | None, typo_threshold: int = 2
) -> ValueRelation:
    """Classify the relationship between two attribute values.

    ``typo_threshold`` is the maximum edit distance (after
    normalization) still considered a typo rather than a conflicting
    value.
    """
    if first is None and second is None:
        return ValueRelation.BOTH_NULL
    if first is None or second is None:
        return ValueRelation.ONE_NULL
    if first == second:
        return ValueRelation.EQUAL
    normalized_a, normalized_b = _normalized(first), _normalized(second)
    if normalized_a == normalized_b:
        return ValueRelation.FORMATTING
    if sorted(normalized_a.split()) == sorted(normalized_b.split()):
        return ValueRelation.WORD_ORDER
    if _token_abbreviation_match(normalized_a, normalized_b):
        return ValueRelation.ABBREVIATION
    if _levenshtein(normalized_a, normalized_b, typo_threshold) <= typo_threshold:
        return ValueRelation.TYPO
    return ValueRelation.DIFFERENT


def categorize_record_pair(
    first: Record,
    second: Record,
    attributes: Iterable[str],
    typo_threshold: int = 2,
) -> dict[str, ValueRelation]:
    """Per-attribute value relations for one record pair."""
    return {
        attribute: classify_value_pair(
            first.value(attribute), second.value(attribute), typo_threshold
        )
        for attribute in attributes
    }


# Relations that mean "the values differ in a way a solution must
# tolerate to find the duplicate" — the error classes of §7.
_FN_ERROR_RELATIONS = (
    ValueRelation.ONE_NULL,
    ValueRelation.FORMATTING,
    ValueRelation.WORD_ORDER,
    ValueRelation.ABBREVIATION,
    ValueRelation.TYPO,
    ValueRelation.DIFFERENT,
)

# Relations that mean "the values agree in a way that may have misled
# the solution into a false match".
_FP_AGREEMENT_RELATIONS = (
    ValueRelation.EQUAL,
    ValueRelation.FORMATTING,
    ValueRelation.WORD_ORDER,
    ValueRelation.ABBREVIATION,
    ValueRelation.TYPO,
)


@dataclass
class ErrorCategorization:
    """Aggregated error categories of one experiment (§7).

    Attributes
    ----------
    false_negative_relations:
        ``Counter`` over :class:`ValueRelation` values observed in
        missed duplicate pairs (only difference relations counted).
    false_positive_relations:
        ``Counter`` over agreement relations observed in false matches.
    per_attribute_fn:
        ``{attribute: Counter}`` — which attribute exhibits which
        difference relation among false negatives.
    false_negatives / false_positives:
        The categorized pairs themselves.
    """

    false_negative_relations: Counter = field(default_factory=Counter)
    false_positive_relations: Counter = field(default_factory=Counter)
    per_attribute_fn: dict[str, Counter] = field(default_factory=dict)
    false_negatives: dict[Pair, dict[str, ValueRelation]] = field(
        default_factory=dict
    )
    false_positives: dict[Pair, dict[str, ValueRelation]] = field(
        default_factory=dict
    )

    def dominant_weakness(self) -> ValueRelation | None:
        """The difference relation most often present in missed pairs.

        The §7 use case: a solution "especially weak in the handling of
        typos" shows :attr:`ValueRelation.TYPO` here.
        """
        if not self.false_negative_relations:
            return None
        relation, _count = self.false_negative_relations.most_common(1)[0]
        return relation

    def dominant_seduction(self) -> ValueRelation | None:
        """The agreement relation most often present in false matches."""
        if not self.false_positive_relations:
            return None
        relation, _count = self.false_positive_relations.most_common(1)[0]
        return relation

    def render_report(self) -> str:
        """Plain-text report for terminal display."""
        lines = ["Error categorization"]
        lines.append(f"  false negatives: {len(self.false_negatives)}")
        for relation, count in self.false_negative_relations.most_common():
            lines.append(f"    {relation.value}: {count}")
        lines.append(f"  false positives: {len(self.false_positives)}")
        for relation, count in self.false_positive_relations.most_common():
            lines.append(f"    {relation.value}: {count}")
        return "\n".join(lines)


def categorize_errors(
    dataset: Dataset,
    experiment: Experiment,
    gold: GoldStandard,
    attributes: Iterable[str] | None = None,
    typo_threshold: int = 2,
    limit: int | None = None,
) -> ErrorCategorization:
    """Categorize every misclassified pair of ``experiment`` (§7).

    ``limit`` caps the number of false negatives and false positives
    each that are categorized (both picked deterministically in sorted
    pair order) — useful on large, low-precision experiments.
    """
    names = tuple(attributes) if attributes is not None else dataset.attributes
    experiment_pairs = experiment.pairs()
    gold_pairs = gold.pairs()
    false_negatives = sorted(gold_pairs - experiment_pairs)
    false_positives = sorted(experiment_pairs - gold_pairs)
    if limit is not None:
        false_negatives = false_negatives[:limit]
        false_positives = false_positives[:limit]

    result = ErrorCategorization()
    for pair in false_negatives:
        relations = categorize_record_pair(
            dataset[pair[0]], dataset[pair[1]], names, typo_threshold
        )
        result.false_negatives[pair] = relations
        for attribute, relation in relations.items():
            if relation in _FN_ERROR_RELATIONS:
                result.false_negative_relations[relation] += 1
                result.per_attribute_fn.setdefault(attribute, Counter())[
                    relation
                ] += 1
    for pair in false_positives:
        relations = categorize_record_pair(
            dataset[pair[0]], dataset[pair[1]], names, typo_threshold
        )
        result.false_positives[pair] = relations
        for relation in relations.values():
            if relation in _FP_AGREEMENT_RELATIONS:
                result.false_positive_relations[relation] += 1
    return result
