"""Attribute-level diagram explorations: nullRatio and equalRatio
(§4.5.2, §4.5.3).

* ``nullRatio(a) = falseNullCount(a) / nullCount(a)`` — among pairs
  where at least one record is null in attribute ``a``, the fraction
  that is misclassified.  High values flag attributes whose *absence*
  correlates with errors (semantic vs material mismatch diagnosis).
* ``equalRatio(a) = falseEqualCount(a) / equalCount(a)`` — among pairs
  whose records are *equal* in ``a``, the fraction misclassified.  High
  values flag attributes whose matching sufficiency the solution
  weighed incorrectly.

Both are computed over a pair population (by default the union of
experiment and gold pairs — enumerating all of ``[D]^2`` is quadratic
and adds only always-correct true negatives in practice; pass
``pair_population`` explicitly for the full-space semantics).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.experiment import Experiment, GoldStandard
from repro.core.pairs import Pair
from repro.core.records import Dataset

__all__ = [
    "AttributeRatio",
    "null_ratios",
    "equal_ratios",
    "render_bar_chart",
]


@dataclass(frozen=True)
class AttributeRatio:
    """Ratio result for one attribute (a bar of the §4.5.2/3 chart)."""

    attribute: str
    affected_pairs: int
    misclassified_pairs: int

    @property
    def ratio(self) -> float:
        """``misclassified / affected``; 0.0 when no pair is affected."""
        if self.affected_pairs == 0:
            return 0.0
        return self.misclassified_pairs / self.affected_pairs


def _population(
    experiment: Experiment,
    gold: GoldStandard,
    pair_population: Iterable[Pair] | None,
) -> set[Pair]:
    if pair_population is not None:
        return set(pair_population)
    return experiment.pairs() | set(gold.pairs())


def _misclassified(
    pair: Pair, experiment_pairs: set[Pair], gold: GoldStandard
) -> bool:
    predicted = pair in experiment_pairs
    actual = gold.is_duplicate(*pair)
    return predicted != actual


def null_ratios(
    dataset: Dataset,
    experiment: Experiment,
    gold: GoldStandard,
    pair_population: Iterable[Pair] | None = None,
) -> list[AttributeRatio]:
    """nullRatio(a) for every attribute of the dataset (§4.5.2).

    "Attributes with high nullRatio scores are statistically highly
    relevant for the matching decision as their absence could be
    related to many incorrectly assigned labels."
    """
    population = _population(experiment, gold, pair_population)
    experiment_pairs = experiment.pairs()
    results: list[AttributeRatio] = []
    for attribute in dataset.attributes:
        null_count = 0
        false_null_count = 0
        for pair in population:
            first, second = pair
            either_null = (
                dataset[first].is_null(attribute)
                or dataset[second].is_null(attribute)
            )
            if not either_null:
                continue
            null_count += 1
            if _misclassified(pair, experiment_pairs, gold):
                false_null_count += 1
        results.append(
            AttributeRatio(
                attribute=attribute,
                affected_pairs=null_count,
                misclassified_pairs=false_null_count,
            )
        )
    results.sort(key=lambda r: (-r.ratio, r.attribute))
    return results


def equal_ratios(
    dataset: Dataset,
    experiment: Experiment,
    gold: GoldStandard,
    pair_population: Iterable[Pair] | None = None,
) -> list[AttributeRatio]:
    """equalRatio(a) for every attribute of the dataset (§4.5.3).

    "A high equalRatio(a) indicates that the matching solution did not
    weigh the matching sufficiency of ``a`` correctly (either too high
    or too low)."
    """
    population = _population(experiment, gold, pair_population)
    experiment_pairs = experiment.pairs()
    results: list[AttributeRatio] = []
    for attribute in dataset.attributes:
        equal_count = 0
        false_equal_count = 0
        for pair in population:
            first, second = pair
            value_a = dataset[first].value(attribute)
            value_b = dataset[second].value(attribute)
            if value_a is None or value_b is None or value_a != value_b:
                continue
            equal_count += 1
            if _misclassified(pair, experiment_pairs, gold):
                false_equal_count += 1
        results.append(
            AttributeRatio(
                attribute=attribute,
                affected_pairs=equal_count,
                misclassified_pairs=false_equal_count,
            )
        )
    results.sort(key=lambda r: (-r.ratio, r.attribute))
    return results


def render_bar_chart(
    ratios: Sequence[AttributeRatio], width: int = 40, title: str = "ratio"
) -> str:
    """ASCII bar chart of attribute ratios — the §4.5.2 visualization."""
    lines = [f"{'attribute':<20} {title}"]
    for entry in ratios:
        bar = "#" * round(entry.ratio * width)
        lines.append(
            f"{entry.attribute:<20} {entry.ratio:6.3f} |{bar:<{width}}| "
            f"({entry.misclassified_pairs}/{entry.affected_pairs})"
        )
    return "\n".join(lines)
