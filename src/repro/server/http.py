"""Multi-threaded HTTP front-end for the Frost API (Appendix A.4–A.5).

Built on the stdlib ``http.server`` so that, like Snowman, the platform
"requires no installation or external dependencies" and can be deployed
"both on local computers and in shared cloud environments".  The server
is concurrent: ``ThreadingHTTPServer`` handles each connection on its
own daemon thread, HTTP/1.1 keep-alive lets load clients reuse
connections, and the expensive GET evaluations behind the API are
cached and coalesced by the serving layer (:mod:`repro.serving`), so
many clients asking the same question cost one computation.

:func:`serve` is the foreground entry point used by
``python -m repro serve``: it supports ephemeral ``--port 0`` binding
(announcing the bound port on stdout, so integration tests never race
for a free port) and shuts down gracefully — finishing in-flight
requests and releasing the socket — on SIGINT or SIGTERM.
"""

from __future__ import annotations

import contextlib
import json
import logging
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlparse

from repro.server.api import ApiError, FrostApi
from repro.telemetry.logging import bind_request_id, new_request_id
from repro.telemetry.metrics import get_metrics
from repro.telemetry.spans import get_tracer

__all__ = ["serve", "FrostHttpServer"]

# One structured line per served request, at DEBUG so the default log
# level keeps test and benchmark output quiet.
_ACCESS_LOG = logging.getLogger("repro.server.access")

# Metric names are derived from the first path segment, restricted to
# the known route families so an arbitrary request path cannot mint
# unbounded (or malformed) metric names.
_ENDPOINT_FAMILIES = frozenset(
    {"datasets", "graph", "jobs", "streams", "stats", "metrics",
     "healthz", "readyz"}
)

# Per-endpoint latency SLOs (milliseconds).  Responses slower than the
# family's threshold burn the family's error budget, counted in
# ``frost_http_{family}_slo_burn_total``.
_SLO_MS = {
    "metrics": 50.0,
    "healthz": 50.0,
    "readyz": 50.0,
    "stats": 100.0,
}
_DEFAULT_SLO_MS = 500.0


def _endpoint_family(path: str) -> str:
    segment = next((part for part in path.split("/") if part), "")
    return segment if segment in _ENDPOINT_FAMILIES else "other"


def _observe_request(path: str, duration_seconds: float) -> None:
    """Feed one served request into the per-endpoint-family metrics."""
    family = _endpoint_family(path)
    registry = get_metrics()
    registry.counter(
        f"frost_http_{family}_requests_total",
        f"HTTP requests served under /{family}",
    ).inc()
    registry.histogram(
        f"frost_http_{family}_request_seconds",
        f"HTTP request latency under /{family}",
    ).observe(duration_seconds)
    slo_ms = _SLO_MS.get(family, _DEFAULT_SLO_MS)
    if duration_seconds * 1000.0 > slo_ms:
        registry.counter(
            f"frost_http_{family}_slo_burn_total",
            f"HTTP requests under /{family} slower than the "
            f"{slo_ms:g}ms latency SLO",
        ).inc()


class _FrontendServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for bursts of concurrent clients.

    The socketserver default listen backlog of 5 drops SYNs when more
    clients connect at once than that, and a dropped SYN is retried
    after a full second — a silent 1s latency cliff under exactly the
    load this subsystem exists for.

    Handler threads are non-daemon so ``server_close()`` joins them:
    graceful shutdown really does wait for in-flight requests instead
    of abandoning them mid-computation.  The handler's idle timeout
    (below) bounds how long a silent keep-alive connection can delay
    that join.
    """

    request_queue_size = 128
    daemon_threads = False


def _make_handler(api: FrostApi) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        # Keep-alive: clients (and the load harness) reuse connections
        # instead of paying a TCP handshake per request.  Safe because
        # every response carries an explicit Content-Length.
        protocol_version = "HTTP/1.1"
        # Without these, headers and body leave in separate TCP
        # segments and Nagle + delayed-ACK stall every cached keep-alive
        # response by ~40ms — dwarfing the cache's microseconds.
        disable_nagle_algorithm = True
        wbufsize = -1  # fully buffered; flushed once per response
        # Idle keep-alive connections release their handler thread
        # after this many seconds, bounding graceful-shutdown joins.
        timeout = 10

        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            """Serve one API GET request as JSON."""
            self._serve("GET", None)

        def do_PUT(self) -> None:  # noqa: N802 (stdlib naming)
            """Answer 405 as a JSON document (the API has no PUT routes)."""
            self._serve("PUT", None)

        def do_DELETE(self) -> None:  # noqa: N802 (stdlib naming)
            """Answer 405 as a JSON document (the API has no DELETE routes)."""
            self._serve("DELETE", None)

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            """Serve one API POST request (JSON body) — job submission."""
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                body = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                self._respond(400, {"error": "invalid JSON body", "status": 400})
                return
            self._serve("POST", body)

        def _serve(self, method: str, body: object) -> None:
            started = time.perf_counter()
            parsed = urlparse(self.path)
            query = dict(parse_qsl(parsed.query))
            # Honor the client's correlation id, mint one otherwise;
            # echoed back as X-Request-Id and bound to this handler
            # thread (plus the request span) so every log line and span
            # the request produces — here, in the serving layer, on
            # engine workers, in folded process-pool shards — shares it.
            request_id = (
                (self.headers.get("X-Request-Id") or "").strip()
                or new_request_id()
            )
            self._request_id = request_id
            tracer = get_tracer()
            route = parsed.path.rstrip("/") or "/"
            with bind_request_id(request_id), tracer.span(
                "http.request",
                method=method,
                path=parsed.path,
                request_id=request_id,
            ) as http_span:
                if method == "GET" and route == "/metrics":
                    # Prometheus exposition is text, not JSON — the one
                    # route served outside the JSON dispatcher.
                    status = 200
                    self._respond_text(status, api.metrics_text())
                elif method == "GET" and route == "/healthz":
                    status = 200
                    self._respond(status, api.health())
                elif method == "GET" and route == "/readyz":
                    ready, payload = api.readiness()
                    status = 200 if ready else 503
                    self._respond(status, payload)
                else:
                    try:
                        payload = api.handle(
                            parsed.path, query, method=method, body=body
                        )
                        status = 200
                    except ApiError as error:
                        payload = {"error": error.message, "status": error.status}
                        status = error.status
                    except Exception as error:  # noqa: BLE001 - wire boundary
                        # Anything unexpected (storage contention, a
                        # bug) must still answer: an unanswered
                        # keep-alive request kills the connection and
                        # every request queued behind it.
                        payload = {
                            "error": f"{type(error).__name__}: {error}",
                            "status": 500,
                        }
                        status = 500
                    self._respond(status, payload)
                http_span.annotate(status=status)
            duration_ms = (time.perf_counter() - started) * 1000.0
            _observe_request(parsed.path, duration_ms / 1000.0)
            _ACCESS_LOG.debug(
                "%s %s -> %d in %.2fms [%s]",
                method,
                self.path,
                status,
                duration_ms,
                request_id,
                extra={
                    "request_id": request_id,
                    "method": method,
                    "status": status,
                    "duration_ms": round(duration_ms, 3),
                },
            )

        def _respond(self, status: int, payload: object) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self._send_common_headers(len(body))
            self.wfile.write(body)

        def _respond_text(self, status: int, text: str) -> None:
            body = text.encode("utf-8")
            self.send_response(status)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self._send_common_headers(len(body))
            self.wfile.write(body)

        def _send_common_headers(self, content_length: int) -> None:
            request_id = getattr(self, "_request_id", None)
            if request_id is not None:
                self.send_header("X-Request-Id", request_id)
            self.send_header("Content-Length", str(content_length))
            self.end_headers()

        def log_request(self, code: object = "-", size: object = "-") -> None:
            """No-op: _serve emits the structured access line itself."""

        def log_message(self, format: str, *args: object) -> None:
            """Route stdlib handler messages (errors) through logging.

            ``BaseHTTPRequestHandler`` writes these to stderr by
            default; sending them to the access logger at DEBUG keeps
            test output quiet under the default log level while still
            making them available to a structured config.
            """
            _ACCESS_LOG.debug(format, *args)

    return Handler


class FrostHttpServer:
    """A background HTTP server over a :class:`FrostApi`.

    >>> server = FrostHttpServer(api, port=0)   # doctest: +SKIP
    >>> server.start()                          # doctest: +SKIP
    >>> server.port                             # doctest: +SKIP

    Requests are handled concurrently (one daemon thread per
    connection); ``port=0`` binds an ephemeral port, read back through
    :attr:`port` — the pattern every integration test and the load
    harness use so parallel runs never collide on a socket.
    """

    def __init__(self, api: FrostApi, host: str = "127.0.0.1", port: int = 0) -> None:
        self.api = api
        self._server = _FrontendServer((host, port), _make_handler(api))
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The TCP port the server is bound to."""
        return self._server.server_address[1]

    def start(self) -> None:
        """Start serving requests on a background thread."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the server and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "FrostHttpServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve(
    api: FrostApi,
    host: str = "127.0.0.1",
    port: int = 8080,
    announce=print,
    on_bound=None,
) -> int:
    """Serve the API in the foreground until SIGINT/SIGTERM.

    Binds first (``port=0`` picks an ephemeral port), then announces
    ``serving on http://{host}:{port}`` through ``announce`` so callers
    — and the integration tests driving this as a subprocess — learn
    the bound port before the first request.  SIGINT and SIGTERM
    trigger a graceful shutdown: in-flight requests finish, the socket
    is closed and released, and the previous signal handlers are
    restored.  Returns the bound port.

    ``on_bound`` (optional) receives the bound ``ThreadingHTTPServer``
    before serving starts — embedders and in-process tests use it to
    call ``shutdown()`` without resorting to signals.
    """
    server = _FrontendServer((host, port), _make_handler(api))
    bound_port = server.server_address[1]
    announce(f"serving on http://{host}:{bound_port}")
    if on_bound is not None:
        on_bound(server)

    def request_shutdown(signum: int, frame: object) -> None:
        # shutdown() blocks until serve_forever() exits, and this
        # handler runs *inside* serve_forever's thread — hand it off.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(ValueError):  # not the main thread
            previous[signum] = signal.signal(signum, request_shutdown)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return bound_port
