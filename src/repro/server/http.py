"""Minimal HTTP server exposing the Frost API (Appendix A.4–A.5).

Built on the stdlib ``http.server`` so that, like Snowman, the platform
"requires no installation or external dependencies" and can be deployed
"both on local computers and in shared cloud environments".  GET-only:
the evaluations are read operations; imports happen through the Python
API or the store.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qsl, urlparse

from repro.server.api import ApiError, FrostApi

__all__ = ["serve", "FrostHttpServer"]


def _make_handler(api: FrostApi) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
            """Serve one API GET request as JSON."""
            self._serve("GET", None)

        def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
            """Serve one API POST request (JSON body) — job submission."""
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                body = json.loads(raw) if raw else None
            except json.JSONDecodeError:
                self._respond(400, {"error": "invalid JSON body", "status": 400})
                return
            self._serve("POST", body)

        def _serve(self, method: str, body: object) -> None:
            parsed = urlparse(self.path)
            query = dict(parse_qsl(parsed.query))
            try:
                payload = api.handle(parsed.path, query, method=method, body=body)
                status = 200
            except ApiError as error:
                payload = {"error": error.message, "status": error.status}
                status = error.status
            self._respond(status, payload)

        def _respond(self, status: int, payload: object) -> None:
            body = json.dumps(payload).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: object) -> None:
            """Silence per-request logging (tests run many requests)."""
            pass  # evaluations should not spam stdout

    return Handler


class FrostHttpServer:
    """A background HTTP server over a :class:`FrostApi`.

    >>> server = FrostHttpServer(api, port=0)   # doctest: +SKIP
    >>> server.start()                          # doctest: +SKIP
    >>> server.port                             # doctest: +SKIP
    """

    def __init__(self, api: FrostApi, host: str = "127.0.0.1", port: int = 0) -> None:
        self._server = ThreadingHTTPServer((host, port), _make_handler(api))
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The TCP port the server is bound to."""
        return self._server.server_address[1]

    def start(self) -> None:
        """Start serving requests on a background thread."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the server and release the socket."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)

    def __enter__(self) -> "FrostHttpServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve(api: FrostApi, host: str = "127.0.0.1", port: int = 8080) -> None:
    """Serve the API in the foreground until interrupted."""
    server = ThreadingHTTPServer((host, port), _make_handler(api))
    try:
        server.serve_forever()
    finally:
        server.server_close()
