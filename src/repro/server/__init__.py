"""REST-style JSON API over the Frost platform (Appendix A.4)."""

from repro.server.api import ApiError, FrostApi
from repro.server.http import FrostHttpServer, serve

__all__ = ["ApiError", "FrostApi", "FrostHttpServer", "serve"]
