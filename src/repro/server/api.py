"""REST-style JSON API over the platform (Appendix A.4).

Snowman's front-end and third parties talk to its back-end through an
OpenAPI-specified REST API; "all functionality included within the
front-end [is] also made available through the API".  We mirror the
route structure as a transport-agnostic dispatcher
(:class:`FrostApi.handle`) plus a stdlib HTTP server wrapper in
:mod:`repro.server.http` — no web framework required, matching the
paper's no-external-dependencies constraint.

Routes (all return JSON-serializable dictionaries):

=============================================  =====================================
``GET /datasets``                              dataset names
``GET /datasets/{d}``                          dataset summary
``GET /datasets/{d}/records``                  records (paginated)
``GET /datasets/{d}/experiments``              experiment names
``GET /datasets/{d}/experiments/{e}``          experiment summary
``GET /datasets/{d}/golds``                    gold-standard names
``GET /datasets/{d}/metrics?gold=&exps=``      N-metrics table
``GET /datasets/{d}/diagram?exp=&gold=&n=``    metric/metric diagram points
``GET /datasets/{d}/intersection?include=&exclude=``  set-comparison selection
``GET /datasets/{d}/profile``                  profiling metrics (§3.1.3)
``GET /datasets/{d}/categorize?exp=&gold=``    error categorization (§7)
``GET /datasets/{d}/timeline?exp=&gold=&high=&low=``  new TP/FP in a threshold range
``GET /stats``                                 serving-layer cache/coalescing counters
``GET /metrics``                               Prometheus text (HTTP layer only)
``GET /graph``                                 stored match-graph names
``GET /graph/{g}``                             graph summary (nodes/edges/components)
``GET /graph/{g}/neighbors?record=&k=&threshold=``  k-hop BFS neighborhood
``GET /graph/{g}/path?from=&to=&threshold=``   fewest-hops path (found: false if none)
``GET /graph/{g}/components?limit=``           components, largest first
``GET /graph/{g}/component?record=``           one record's component drill-down
``GET /graph/{g}/explain?from=&to=``           max-min-score evidence path
``POST /jobs``                                 submit engine jobs (optionally a sweep)
``GET /jobs``                                  all job statuses + cache stats
``GET /jobs/{id}``                             one job's status and result
``POST /streams``                              create a streaming matching session
``POST /streams/{s}/batches``                  ingest a record batch (delta matching)
``GET /streams``                               stream names
``GET /streams/{s}``                           session status + snapshot lineage
=============================================  =====================================

The ``/jobs`` routes are served by the execution engine
(:mod:`repro.engine`): submitted jobs run on a worker pool and identical
re-submissions are answered from the content-addressed result cache.
The ``/streams`` routes front the incremental streaming subsystem
(:mod:`repro.streaming`): each batch POST runs as a ``stream_ingest``
engine job and returns the new versioned clustering snapshot.  A
stream's JSON config may carry a ``"parallelism"`` object
(``{"workers": 4, "shards": 16}``, see
:mod:`repro.streaming.config`) to score delta batches on a sharded
process pool; ``GET /streams/{s}`` reports it, and the scored output
is byte-identical to a serial session's.  The config's ``"key"`` may
select approximate MinHash-LSH blocking (``{"kind": "lsh",
"num_perm": 128, "bands": 32}``, see :mod:`repro.matching.lsh`);
malformed blocker configs — unknown keys, non-integer values, bands
that do not divide the permutation count, windowed schemes with no
delta decomposition — are rejected as 400s at creation time, never as
failed ingests later.

Expensive GET evaluations (metrics, diagram, profile, categorize,
timeline, intersection) are served through the concurrent serving
layer (:mod:`repro.serving`): payloads are cached read-through under
content fingerprints, concurrent identical requests coalesce into one
computation, and registry writes invalidate the touched dataset's
entries.  ``GET /stats`` exposes the cache and coalescing counters.

The ``/graph`` routes front the match-graph subsystem
(:mod:`repro.graph`): graphs persisted in the store's adjacency tables
— by pipeline builds or incrementally by streaming sessions with
``"graph": true`` — are served through the same read-through cache,
tagged ``graph:{name}`` so every graph write (e.g. a stream batch)
invalidates the graph's cached traversal payloads.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

from repro.core.platform import FrostPlatform
from repro.serving.service import ServingLayer
from repro.telemetry import current_request_id, get_metrics, render_prometheus

__all__ = ["ApiError", "FrostApi"]

# Job kinds accepted over the wire; pipeline jobs carry Python objects
# and are only available through the Python/CLI surface.
_API_JOB_KINDS = frozenset({"metrics", "diagram"})


class ApiError(Exception):
    """An API-level error with an HTTP-ish status code."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class FrostApi:
    """Transport-agnostic request dispatcher over a platform instance.

    Parameters
    ----------
    platform:
        The registry the evaluations read from.
    engine:
        Optional pre-configured
        :class:`~repro.engine.runner.ExperimentEngine` serving the
        ``/jobs`` routes; created lazily (in-memory cache only) when
        omitted.
    store:
        Optional :class:`~repro.storage.database.FrostStore`.  When
        given, streams created via ``POST /streams`` are durable (their
        state persists and can be resumed in later processes);
        otherwise sessions live only in this API instance.
    serving:
        Optional pre-configured
        :class:`~repro.serving.service.ServingLayer`; created over
        ``platform`` (with ``cache_entries`` payload slots) when
        omitted.  All expensive GET evaluations route through it.
    cache_entries:
        LRU capacity of the serving-layer payload cache created when
        ``serving`` is omitted.
    """

    def __init__(
        self,
        platform: FrostPlatform,
        engine=None,
        store=None,
        serving: ServingLayer | None = None,
        cache_entries: int = 1024,
    ) -> None:
        self.platform = platform
        self._engine = engine
        self._engine_lock = threading.Lock()
        self._store = store
        self._streams: dict[str, object] = {}
        self._streams_lock = threading.Lock()
        self.serving = (
            serving
            if serving is not None
            else ServingLayer(platform, max_entries=cache_entries)
        )
        if store is not None:
            self.serving.attach_store(store)

    @property
    def engine(self):
        """The job engine behind ``/jobs`` (created on first use).

        Guarded by a lock: the threaded HTTP server may race two first
        requests, and jobs submitted to one engine must stay visible to
        every later request.
        """
        with self._engine_lock:
            if self._engine is None:
                from repro.engine.runner import ExperimentEngine

                self._engine = ExperimentEngine(self.platform)
            return self._engine

    def handle(
        self,
        path: str,
        query: Mapping[str, str] | None = None,
        method: str = "GET",
        body: object = None,
    ) -> object:
        """Dispatch a request path to the matching evaluation.

        ``method`` and ``body`` (a parsed JSON document) matter only
        for the ``POST /jobs`` route; everything else is GET.  Raises
        :class:`ApiError` with status 404 for unknown routes or names
        and 400 for bad parameters.
        """
        query = dict(query or {})
        parts = [part for part in path.split("/") if part]
        try:
            return self._dispatch(parts, query, method.upper(), body)
        except KeyError as missing:
            raise ApiError(404, str(missing)) from None
        except ValueError as bad:
            raise ApiError(400, str(bad)) from None

    def _dispatch(
        self, parts: list[str], query: dict[str, str], method: str, body: object
    ) -> object:
        if parts and parts[0] == "jobs":
            return self._jobs(parts[1:], query, method, body)
        if parts and parts[0] == "streams":
            return self._streams_route(parts[1:], query, method, body)
        if method != "GET":
            raise ApiError(405, f"{method} not allowed on /{'/'.join(parts)}")
        if parts == ["stats"]:
            return self._stats()
        if parts == ["healthz"]:
            return self.health()
        if parts == ["readyz"]:
            ready, payload = self.readiness()
            if not ready:
                failing = sorted(
                    name
                    for name, check in payload["checks"].items()
                    if not check.get("ok")
                )
                raise ApiError(503, f"not ready: {', '.join(failing)}")
            return payload
        if parts and parts[0] == "graph":
            return self._graph_routes(parts[1:], query)
        if parts == ["datasets"]:
            return {"datasets": self.platform.dataset_names()}
        if len(parts) >= 2 and parts[0] == "datasets":
            dataset_name = parts[1]
            rest = parts[2:]
            if not rest:
                return self._dataset_summary(dataset_name)
            if rest == ["records"]:
                return self._records(dataset_name, query)
            if rest == ["experiments"]:
                return {"experiments": self.platform.experiment_names(dataset_name)}
            if len(rest) == 2 and rest[0] == "experiments":
                return self._experiment_summary(dataset_name, rest[1])
            if rest == ["golds"]:
                return {"golds": self.platform.gold_names(dataset_name)}
            if rest == ["metrics"]:
                return self._metrics(dataset_name, query)
            if rest == ["diagram"]:
                return self._diagram(dataset_name, query)
            if rest == ["intersection"]:
                return self._intersection(dataset_name, query)
            if rest == ["profile"]:
                return self._profile(dataset_name)
            if rest == ["categorize"]:
                return self._categorize(dataset_name, query)
            if rest == ["timeline"]:
                return self._timeline(dataset_name, query)
        raise ApiError(404, f"unknown route /{'/'.join(parts)}")

    # -- handlers -----------------------------------------------------------------

    def _dataset_summary(self, dataset_name: str) -> dict:
        dataset = self.platform.dataset(dataset_name)
        return {
            "name": dataset.name,
            "records": len(dataset),
            "attributes": list(dataset.attributes),
            "experiments": self.platform.experiment_names(dataset_name),
            "golds": self.platform.gold_names(dataset_name),
        }

    def _records(self, dataset_name: str, query: dict[str, str]) -> dict:
        dataset = self.platform.dataset(dataset_name)
        offset = int(query.get("offset", "0"))
        limit = int(query.get("limit", "100"))
        if offset < 0 or limit < 0:
            raise ValueError("offset and limit must be non-negative")
        rows = []
        for numeric_id in range(offset, min(offset + limit, len(dataset))):
            record = dataset.by_numeric(numeric_id)
            rows.append({"id": record.record_id, **dict(record.values)})
        return {"total": len(dataset), "offset": offset, "records": rows}

    def _experiment_summary(self, dataset_name: str, experiment_name: str) -> dict:
        experiment = self.platform.experiment(dataset_name, experiment_name)
        return {
            "name": experiment.name,
            "solution": experiment.solution,
            "matches": len(experiment),
            "has_scores": experiment.has_scores(),
            "metadata": dict(experiment.metadata),
        }

    def _metrics(self, dataset_name: str, query: dict[str, str]) -> dict:
        gold_name = query.get("gold")
        if not gold_name:
            raise ValueError("metrics needs a 'gold' query parameter")
        experiments = (
            query["exps"].split(",") if query.get("exps") else None
        )
        metrics = query["metrics"].split(",") if query.get("metrics") else None
        return self.serving.metrics_payload(
            dataset_name, gold_name, experiments, metrics
        )

    def _diagram(self, dataset_name: str, query: dict[str, str]) -> dict:
        experiment_name = query.get("exp")
        gold_name = query.get("gold")
        if not experiment_name or not gold_name:
            raise ValueError("diagram needs 'exp' and 'gold' query parameters")
        samples = int(query.get("n", "100"))
        return self.serving.diagram_payload(
            dataset_name, experiment_name, gold_name, samples
        )

    def _profile(self, dataset_name: str) -> dict:
        return self.serving.profile_payload(dataset_name)

    def _categorize(self, dataset_name: str, query: dict[str, str]) -> dict:
        experiment_name = query.get("exp")
        gold_name = query.get("gold")
        if not experiment_name or not gold_name:
            raise ValueError("categorize needs 'exp' and 'gold' query parameters")
        limit = int(query["limit"]) if query.get("limit") else None
        return self.serving.categorize_payload(
            dataset_name, experiment_name, gold_name, limit
        )

    def _timeline(self, dataset_name: str, query: dict[str, str]) -> dict:
        experiment_name = query.get("exp")
        gold_name = query.get("gold")
        if not experiment_name or not gold_name:
            raise ValueError("timeline needs 'exp' and 'gold' query parameters")
        if "high" not in query or "low" not in query:
            raise ValueError("timeline needs 'high' and 'low' query parameters")
        high = float(query["high"])
        low = float(query["low"])
        return self.serving.timeline_payload(
            dataset_name, experiment_name, gold_name, high, low
        )

    def _intersection(self, dataset_name: str, query: dict[str, str]) -> dict:
        include = [name for name in query.get("include", "").split(",") if name]
        exclude = [name for name in query.get("exclude", "").split(",") if name]
        if not include:
            raise ValueError("intersection needs an 'include' query parameter")
        return self.serving.intersection_payload(dataset_name, include, exclude)

    # -- match graphs -------------------------------------------------------------

    def _graph_routes(self, rest: list[str], query: dict[str, str]) -> dict:
        if not rest:
            return {"graphs": self.serving.graph_names()}
        name = rest[0]
        tail = rest[1:]
        if not tail:
            return self.serving.graph_summary_payload(name)
        if tail == ["neighbors"]:
            record = query.get("record")
            if not record:
                raise ValueError("neighbors needs a 'record' query parameter")
            k = int(query.get("k", "1"))
            threshold = (
                float(query["threshold"]) if query.get("threshold") else None
            )
            return self.serving.graph_neighbors_payload(
                name, record, k, threshold
            )
        if tail == ["path"]:
            source, target = query.get("from"), query.get("to")
            if not source or not target:
                raise ValueError("path needs 'from' and 'to' query parameters")
            threshold = (
                float(query["threshold"]) if query.get("threshold") else None
            )
            return self.serving.graph_path_payload(
                name, source, target, threshold
            )
        if tail == ["components"]:
            limit = int(query["limit"]) if query.get("limit") else None
            return self.serving.graph_components_payload(name, limit)
        if tail == ["component"]:
            record = query.get("record")
            if not record:
                raise ValueError("component needs a 'record' query parameter")
            return self.serving.graph_component_payload(name, record)
        if tail == ["explain"]:
            source, target = query.get("from"), query.get("to")
            if not source or not target:
                raise ValueError(
                    "explain needs 'from' and 'to' query parameters"
                )
            return self.serving.graph_explain_payload(name, source, target)
        raise ApiError(404, f"unknown route /graph/{'/'.join(rest)}")

    def _stats(self) -> dict:
        """Serving/engine observability for load harnesses and operators."""
        with self._engine_lock:
            engine = self._engine
        return {
            "serving": self.serving.stats(),
            "engine": None if engine is None else engine.progress(),
            "datasets": len(self.platform.dataset_names()),
            "durable": self._store is not None,
            "metrics": get_metrics().values(),
            "request_id": current_request_id(),
        }

    # -- liveness / readiness ----------------------------------------------------

    def health(self) -> dict:
        """Liveness: the process is up and dispatching (``GET /healthz``)."""
        return {"status": "ok"}

    def readiness(self) -> tuple[bool, dict]:
        """Readiness: dependencies answer (``GET /readyz``).

        Returns ``(ready, payload)``; the HTTP layer maps ``ready`` to
        200 vs 503.  Checks the attached store (a trivial pragma read
        proves the SQLite file is reachable and not torn down) and the
        platform registry (dataset enumeration proves the serving
        layer's substrate answers), and reports the serving cache's
        warm-entry count.
        """
        checks: dict[str, dict] = {}
        if self._store is not None:
            try:
                checks["store"] = {
                    "ok": True,
                    "schema_version": self._store.schema_version,
                }
            except Exception as error:  # noqa: BLE001 - readiness boundary
                checks["store"] = {
                    "ok": False,
                    "error": f"{type(error).__name__}: {error}",
                }
        else:
            checks["store"] = {"ok": True, "durable": False}
        try:
            checks["platform"] = {
                "ok": True,
                "datasets": len(self.platform.dataset_names()),
            }
        except Exception as error:  # noqa: BLE001 - readiness boundary
            checks["platform"] = {
                "ok": False,
                "error": f"{type(error).__name__}: {error}",
            }
        stats = self.serving.stats()
        checks["serving_cache"] = {
            "ok": True,
            "entries": stats.get("cache", {}).get("entries", 0),
        }
        ready = all(check["ok"] for check in checks.values())
        return ready, {
            "status": "ready" if ready else "unavailable",
            "checks": checks,
        }

    def metrics_text(self) -> str:
        """The process-wide registry in Prometheus text exposition.

        Served by the HTTP layer as ``GET /metrics`` with a text/plain
        content type — the one route that does not return JSON.
        """
        return render_prometheus(get_metrics())

    # -- engine jobs --------------------------------------------------------------

    def _jobs(
        self, rest: list[str], query: dict[str, str], method: str, body: object
    ) -> object:
        from repro.engine.runner import EngineError

        try:
            if method == "POST" and not rest:
                return self._submit_jobs(query, body)
            if method == "GET" and not rest:
                return {
                    "jobs": self.engine.status(),
                    "progress": self.engine.progress(),
                }
            if method == "GET" and len(rest) == 1:
                return self._job_detail(rest[0])
        except EngineError as error:
            raise ApiError(404, str(error)) from None
        raise ApiError(405 if not rest else 404, "unsupported /jobs route")

    def _submit_jobs(self, query: dict[str, str], body: object) -> dict:
        from repro.engine.jobs import JobSpec, expand_sweep

        if not isinstance(body, Mapping):
            raise ValueError("POST /jobs needs a JSON object body")
        kind = body.get("kind")
        if kind not in _API_JOB_KINDS:
            allowed = ", ".join(sorted(_API_JOB_KINDS))
            raise ValueError(f"job kind must be one of: {allowed}")
        params = body.get("params") or {}
        if not isinstance(params, Mapping):
            raise ValueError("'params' must be a JSON object")
        base = JobSpec(
            kind=kind, params=params, job_id=str(body.get("id", "") or "")
        )
        sweep = body.get("sweep")
        if sweep is not None:
            if not isinstance(sweep, Mapping) or not sweep.get("parameter"):
                raise ValueError("'sweep' needs 'parameter' and 'values'")
            values = sweep.get("values")
            if not isinstance(values, list) or not values:
                raise ValueError("'sweep.values' must be a non-empty list")
            specs = expand_sweep(base, str(sweep["parameter"]), values)
        else:
            specs = [base]
        from repro.engine.runner import EngineError

        try:
            # atomic: a bad spec mid-batch must not enqueue earlier ones
            job_ids = self.engine.submit_all(specs)
        except EngineError as error:
            # duplicate ids / bad dependencies are client errors, not 404s
            raise ValueError(str(error)) from None
        self.engine.start()
        if query.get("wait") in ("1", "true", "yes"):
            self.engine.join(job_ids)
        return {
            "submitted": job_ids,
            "jobs": [self.engine.result(job_id).as_dict() for job_id in job_ids],
        }

    def _job_detail(self, job_id: str) -> dict:
        result = self.engine.result(job_id)
        detail = result.as_dict()
        if result.state.value == "succeeded":
            detail["result"] = result.value
        return detail

    # -- streaming sessions -------------------------------------------------------

    def _stream(self, name: str):
        with self._streams_lock:
            session = self._streams.get(name)
        if session is None and self._store is not None:
            # A durable stream created by an earlier process: resume it
            # *outside* the lock (a resume replays the full stream and
            # must not stall requests to other, already-loaded streams),
            # then publish double-checked — the first resume wins.
            from repro.storage.database import StorageError
            from repro.streaming import open_session

            try:
                resumed = open_session(self._store, name)
            except StorageError:
                resumed = None
            if resumed is not None:
                with self._streams_lock:
                    session = self._streams.setdefault(name, resumed)
        if session is None:
            raise ApiError(404, f"no stream named {name!r}")
        return session

    def _streams_route(
        self, rest: list[str], query: dict[str, str], method: str, body: object
    ) -> object:
        if method == "POST" and not rest:
            return self._create_stream(body)
        if method == "POST" and len(rest) == 2 and rest[1] == "batches":
            return self._ingest_batch(rest[0], query, body)
        if method == "GET" and not rest:
            with self._streams_lock:
                names = set(self._streams)
            if self._store is not None:
                names.update(self._store.stream_names())
            return {"streams": sorted(names)}
        if method == "GET" and len(rest) == 1:
            return self._stream(rest[0]).status()
        raise ApiError(405 if not rest else 404, "unsupported /streams route")

    def _create_stream(self, body: object) -> dict:
        from repro.streaming import StreamError, build_session

        if not isinstance(body, Mapping):
            raise ValueError("POST /streams needs a JSON object body")
        name = str(body.get("name") or "")
        if not name or "/" in name:
            raise ValueError("'name' is required and must not contain '/'")
        config = body.get("config")
        with self._streams_lock:
            if name in self._streams:
                raise ValueError(f"stream {name!r} already exists")
            try:
                session = build_session(config, store=self._store, name=name)
            except StreamError as exists:
                raise ValueError(str(exists)) from None
            self._streams[name] = session
        return session.status()

    def _ingest_batch(
        self, name: str, query: dict[str, str], body: object
    ) -> dict:
        from repro.engine.jobs import JobSpec
        from repro.engine.runner import EngineError

        from repro.streaming import coerce_records

        session = self._stream(name)
        if not isinstance(body, Mapping) or not isinstance(
            body.get("records"), list
        ):
            raise ValueError(
                "POST /streams/{id}/batches needs a JSON body with a "
                "'records' list"
            )
        # validate the rows before they enter the worker pool, so a
        # malformed request is a 400 here instead of a failed job
        records = coerce_records(body["records"])
        spec = JobSpec(
            "stream_ingest",
            {"session": session, "records": records},
            job_id=str(body.get("job_id", "") or ""),
            cacheable=False,
        )
        try:
            job_id = self.engine.submit(spec)
        except EngineError as error:
            raise ValueError(str(error)) from None
        self.engine.start()
        self.engine.join([job_id])
        result = self.engine.result(job_id)
        if result.state.value != "succeeded":
            error = result.error or "stream ingest failed"
            # client-input failures (duplicate ids, malformed batches)
            # are 400s; anything else is a genuine server-side error
            client_errors = (
                "StreamError:", "ValueError:", "DatasetError:",
                "StorageError:",
            )
            if error.startswith(client_errors):
                raise ValueError(error)
            raise ApiError(500, error)
        return {"job": job_id, "snapshot": result.value}
