"""Interactive threshold-timeline exploration (Appendix D outlook).

"An interesting extension to metric/metric diagrams is a timeline
feature in which new true positives and false positives between two
similarity thresholds are shown. [...] the dynamic intersection and
union find data structure lack the functionality to 'revert' merges:
whenever the user selects a similarity threshold range starting before
the end of the previous range, O(|D|) time is necessary to reset the
clusterings. [...] a useful next step is to develop an algorithm for
efficiently reverting merges."

:class:`DiagramTimeline` implements that next step with *sparse
checkpointing*: one forward pass over the matches snapshots the
experiment union-find and the dynamic intersection every ``k`` matches.
Jumping to an arbitrary threshold then restores the nearest checkpoint
at or before it and replays at most ``k`` matches — amortized
``O(|D| / c + k)`` per jump for ``c`` checkpoints instead of a full
``O(|D| + |Matches|)`` rebuild, and crucially independent of the
direction of the jump (rewinds cost the same as advances).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass

from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import _sorted_scored_matches, _truth_index_array
from repro.core.experiment import Experiment, GoldStandard
from repro.core.intersection import DynamicIntersection
from repro.core.pairs import Pair, make_pair
from repro.core.records import Dataset
from repro.core.unionfind import PairCountingUnionFind

__all__ = ["TimelineSegment", "DiagramTimeline"]


@dataclass(frozen=True)
class TimelineSegment:
    """New classifications appearing between two thresholds.

    All pairs that the transitively closed experiment gains when the
    threshold drops from ``high`` (exclusive) to ``low`` (inclusive),
    split by their ground-truth label.

    Attributes
    ----------
    high / low:
        The threshold range explored (``high > low``).
    new_true_positives:
        Closure pairs gained in the range that are true duplicates.
    new_false_positives:
        Closure pairs gained in the range that are not.
    """

    high: float
    low: float
    new_true_positives: frozenset[Pair]
    new_false_positives: frozenset[Pair]


class _Checkpoint:
    """State after applying a prefix of the sorted match list."""

    __slots__ = ("applied", "clusters", "intersection")

    def __init__(
        self,
        applied: int,
        clusters: PairCountingUnionFind,
        intersection: DynamicIntersection,
    ) -> None:
        self.applied = applied
        self.clusters = clusters
        self.intersection = intersection


class DiagramTimeline:
    """Random-access threshold exploration with efficient rewinds.

    Parameters
    ----------
    dataset / experiment / gold:
        As for :func:`~repro.core.diagrams.compute_diagram_optimized`;
        every match needs a similarity score.
    checkpoint_every:
        Snapshot interval in matches.  Defaults to
        ``max(1, |Matches| // 16)`` — 17 snapshots bound both the
        memory overhead and the replay cost per jump.
    """

    def __init__(
        self,
        dataset: Dataset,
        experiment: Experiment,
        gold: GoldStandard,
        checkpoint_every: int | None = None,
    ) -> None:
        self._dataset = dataset
        self._gold = gold
        self._matches = _sorted_scored_matches(experiment)
        if checkpoint_every is None:
            checkpoint_every = max(1, len(self._matches) // 16)
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint interval must be >= 1, got {checkpoint_every}"
            )
        self._truth_pairs = gold.pair_count()
        self._total_pairs = dataset.total_pairs()
        # descending scores, negated for bisect (ascending order)
        self._negated_scores = [-match.score for match in self._matches]
        self._numeric_pairs = [
            (dataset.numeric_id(match.pair[0]), dataset.numeric_id(match.pair[1]))
            for match in self._matches
        ]

        truth_of = _truth_index_array(dataset, gold)
        clusters = PairCountingUnionFind(len(dataset))
        intersection = DynamicIntersection(truth_of)
        self._checkpoints: list[_Checkpoint] = [
            _Checkpoint(0, clusters.copy(), intersection.copy())
        ]
        for applied, numeric_pair in enumerate(self._numeric_pairs, start=1):
            merges = clusters.tracked_union([numeric_pair])
            intersection.update(merges)
            if applied % checkpoint_every == 0 or applied == len(self._matches):
                self._checkpoints.append(
                    _Checkpoint(applied, clusters.copy(), intersection.copy())
                )

    # -- position arithmetic ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._matches)

    def matches_at(self, threshold: float) -> int:
        """How many matches have ``score >= threshold``."""
        if math.isinf(threshold) and threshold > 0:
            return 0
        return bisect.bisect_right(self._negated_scores, -threshold)

    def _state_at(
        self, applied: int
    ) -> tuple[PairCountingUnionFind, DynamicIntersection]:
        """Clusterings after the first ``applied`` matches.

        Restores the nearest checkpoint at or before ``applied`` and
        replays the remaining matches — never more than the checkpoint
        interval, regardless of the previous query position.
        """
        index = bisect.bisect_right(
            [checkpoint.applied for checkpoint in self._checkpoints], applied
        ) - 1
        checkpoint = self._checkpoints[index]
        clusters = checkpoint.clusters.copy()
        intersection = checkpoint.intersection.copy()
        for numeric_pair in self._numeric_pairs[checkpoint.applied : applied]:
            merges = clusters.tracked_union([numeric_pair])
            intersection.update(merges)
        return clusters, intersection

    # -- queries ---------------------------------------------------------------------

    def matrix_at(self, threshold: float) -> ConfusionMatrix:
        """Confusion matrix of the closed experiment at ``threshold``.

        Jumps may move backwards ("revert merges") at the same cost as
        forwards.
        """
        applied = self.matches_at(threshold)
        clusters, intersection = self._state_at(applied)
        return ConfusionMatrix.from_counts(
            tp=intersection.pair_count,
            experiment_pairs=clusters.pair_count,
            truth_pairs=self._truth_pairs,
            total_pairs=self._total_pairs,
        )

    def segment(self, high: float, low: float) -> TimelineSegment:
        """New TP and FP closure pairs gained when lowering the
        threshold from ``high`` to ``low`` (the timeline feature of the
        Appendix D outlook).

        Gained pairs are enumerated as the merge products of the
        replayed matches, so the cost is the checkpoint replay plus
        ``O(|D|)`` member bookkeeping plus the output size — not a diff
        of two full transitive closures.
        """
        if not high > low:
            raise ValueError(
                f"need high > low, got high={high!r}, low={low!r}"
            )
        start = self.matches_at(high)
        stop = self.matches_at(low)
        clusters, _intersection = self._state_at(start)
        # root element -> members, materialized once in O(|D|)
        members: dict[int, list[int]] = {}
        for element in range(len(self._dataset)):
            members.setdefault(clusters.find(element), []).append(element)
        native = self._dataset.native_id
        is_duplicate = self._gold.is_duplicate

        new_true: set[Pair] = set()
        new_false: set[Pair] = set()
        for first, second in self._numeric_pairs[start:stop]:
            root_a = clusters.find(first)
            root_b = clusters.find(second)
            if root_a == root_b:
                continue
            side_a = members[root_a]
            side_b = members[root_b]
            for element_a in side_a:
                for element_b in side_b:
                    pair = make_pair(native(element_a), native(element_b))
                    if is_duplicate(*pair):
                        new_true.add(pair)
                    else:
                        new_false.add(pair)
            clusters.union(first, second)
            merged_root = clusters.find(first)
            members.pop(root_a, None)
            members.pop(root_b, None)
            members[merged_root] = side_a + side_b
        return TimelineSegment(
            high=high,
            low=low,
            new_true_positives=frozenset(new_true),
            new_false_positives=frozenset(new_false),
        )
