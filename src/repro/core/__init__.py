"""Core data model of the Frost benchmarking platform.

Datasets, record pairs, clusterings, experiments, gold standards,
confusion matrices, and the optimized metric/metric-diagram machinery
(tracked-union union-find + dynamic intersection, Appendix D).
"""

from repro.core.clustering import Clustering, closure_distance, transitive_closure
from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import (
    DiagramPoint,
    compute_diagram_naive_clustering,
    compute_diagram_naive_pairwise,
    compute_diagram_optimized,
    metric_metric_series,
)
from repro.core.experiment import Experiment, GoldStandard, Match
from repro.core.intersection import DynamicIntersection
from repro.core.pairs import Pair, ScoredPair, canonical_pairs, make_pair, pair_key
from repro.core.records import Dataset, DatasetError, Record
from repro.core.timeline import DiagramTimeline, TimelineSegment
from repro.core.unionfind import MergeEntry, PairCountingUnionFind

__all__ = [
    "Clustering",
    "ConfusionMatrix",
    "Dataset",
    "DatasetError",
    "DiagramPoint",
    "DiagramTimeline",
    "DynamicIntersection",
    "Experiment",
    "GoldStandard",
    "Match",
    "MergeEntry",
    "Pair",
    "PairCountingUnionFind",
    "Record",
    "ScoredPair",
    "TimelineSegment",
    "canonical_pairs",
    "closure_distance",
    "compute_diagram_naive_clustering",
    "compute_diagram_naive_pairwise",
    "compute_diagram_optimized",
    "make_pair",
    "metric_metric_series",
    "pair_key",
    "transitive_closure",
]
