"""Experiments and gold standards.

An *experiment* is the output of running a matching solution on a
dataset (Section 1.2): a set of matches, optionally carrying similarity
scores and a flag for pairs that were added by a duplicate-clustering
step rather than labeled by the decision model itself (needed for the
"plain result pairs" selection strategy, Section 4.2.4).

A *gold standard* models the ground truth; Frost supports both a
pair-list format and a cluster-assignment format (Section 3.1.1).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.clustering import Clustering, closure_distance
from repro.core.pairs import Pair, ScoredPair, make_pair

__all__ = ["Match", "Experiment", "GoldStandard"]


@dataclass(frozen=True)
class Match:
    """One match of an experiment.

    Attributes
    ----------
    pair:
        Canonical record-id pair.
    score:
        Similarity/confidence the solution assigned; ``None`` when the
        solution does not expose scores.
    from_clustering:
        True when the pair was added by the duplicate-clustering step
        (e.g. transitive closure), not by the decision model.
    """

    pair: Pair
    score: float | None = None
    from_clustering: bool = False


class Experiment:
    """A matching solution's result on one dataset.

    Parameters
    ----------
    matches:
        Iterable of :class:`Match`, ``(id, id)`` tuples, or
        ``(id, id, score)`` tuples.  Duplicate pairs keep the first
        occurrence.
    name:
        Display name, e.g. ``"Examplerun-1"``.
    solution:
        Name of the matching solution that produced the result.
    metadata:
        Free-form soft-KPI payload (runtime seconds, configuration
        effort, ...), consumed by :mod:`repro.kpis`.
    """

    def __init__(
        self,
        matches: Iterable[Match | tuple],
        name: str = "experiment",
        solution: str | None = None,
        metadata: Mapping[str, object] | None = None,
    ) -> None:
        self.name = name
        self.solution = solution
        self.metadata: dict[str, object] = dict(metadata or {})
        self._matches: dict[Pair, Match] = {}
        for raw in matches:
            match = self._coerce(raw)
            self._matches.setdefault(match.pair, match)
        self._clustering: Clustering | None = None

    @staticmethod
    def _coerce(raw: Match | tuple) -> Match:
        if isinstance(raw, Match):
            return raw
        if isinstance(raw, ScoredPair):
            return Match(pair=raw.pair, score=raw.score)
        if len(raw) == 2:
            return Match(pair=make_pair(raw[0], raw[1]))
        if len(raw) == 3:
            return Match(pair=make_pair(raw[0], raw[1]), score=float(raw[2]))
        raise TypeError(f"cannot interpret {raw!r} as a match")

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._matches)

    def __contains__(self, pair: object) -> bool:
        if isinstance(pair, tuple) and len(pair) == 2:
            return make_pair(*pair) in self._matches
        return False

    def __iter__(self):
        return iter(self._matches.values())

    def __repr__(self) -> str:
        return f"Experiment(name={self.name!r}, matches={len(self)})"

    # -- views ------------------------------------------------------------------------

    @property
    def matches(self) -> Sequence[Match]:
        """All matches, in insertion order (first occurrence wins)."""
        return tuple(self._matches.values())

    def pairs(self) -> set[Pair]:
        """All matched pairs (the set ``E``)."""
        return set(self._matches)

    def original_pairs(self) -> set[Pair]:
        """Pairs labeled by the decision model itself (Section 4.2.4)."""
        return {
            pair
            for pair, match in self._matches.items()
            if not match.from_clustering
        }

    def scored_pairs(self) -> list[ScoredPair]:
        """Matches that carry a score, as :class:`ScoredPair` objects."""
        return [
            ScoredPair(score=match.score, pair=pair)
            for pair, match in self._matches.items()
            if match.score is not None
        ]

    def score_of(self, first: str, second: str) -> float | None:
        """Score of a pair, or ``None`` if unmatched/unscored."""
        match = self._matches.get(make_pair(first, second))
        return match.score if match else None

    def has_scores(self) -> bool:
        """Whether every match carries a similarity score."""
        return all(match.score is not None for match in self._matches.values())

    # -- derived ---------------------------------------------------------------------

    def clustering(self) -> Clustering:
        """Clustering induced by transitively closing the match set.

        Snowman constructs this clustering at import time and reuses it
        for all evaluations (Section 5.3); we cache it likewise.
        """
        if self._clustering is None:
            self._clustering = Clustering.from_pairs(self._matches)
        return self._clustering

    def closure_distance(self) -> int:
        """Pairs missing for transitive closure (Section 3.2.3)."""
        return closure_distance(self._matches)

    def closed(self, name: str | None = None) -> "Experiment":
        """A transitively closed copy of this experiment.

        Pairs added by the closure are flagged ``from_clustering`` and
        inherit no score, matching Frost's requirement that result sets
        be closed while remembering which pairs were original
        (Section 4.2.4).
        """
        closed_pairs = self.clustering().pairs()
        matches: list[Match] = list(self._matches.values())
        existing = set(self._matches)
        matches.extend(
            Match(pair=pair, from_clustering=True)
            for pair in sorted(closed_pairs - existing)
        )
        return Experiment(
            matches,
            name=name or f"{self.name}-closed",
            solution=self.solution,
            metadata=self.metadata,
        )

    def threshold_subset(self, threshold: float, name: str | None = None) -> "Experiment":
        """Matches with ``score >= threshold`` (unscored pairs dropped)."""
        return Experiment(
            (
                match
                for match in self._matches.values()
                if match.score is not None and match.score >= threshold
            ),
            name=name or f"{self.name}@{threshold:g}",
            solution=self.solution,
            metadata=self.metadata,
        )


@dataclass
class GoldStandard:
    """The ground truth duplicate relationships of a dataset.

    The clustering representation is canonical: "the gold standard
    typically represents complete knowledge [...] it is a clustering of
    D where every record belongs to exactly one cluster"
    (Section 3.1.1).
    """

    clustering: Clustering
    name: str = "gold"
    _pairs: set[Pair] | None = field(default=None, repr=False, compare=False)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Iterable[str]], name: str = "gold"
    ) -> "GoldStandard":
        """Gold standard from a duplicate-pair list (closed transitively)."""
        return cls(clustering=Clustering.from_pairs(pairs), name=name)

    @classmethod
    def from_assignment(
        cls, assignment: dict[str, str], name: str = "gold"
    ) -> "GoldStandard":
        """Gold standard from a cluster-id attribute (Section 3.1.1)."""
        return cls(clustering=Clustering.from_assignment(assignment), name=name)

    def pairs(self) -> set[Pair]:
        """All true duplicate pairs ``G`` (cached)."""
        if self._pairs is None:
            self._pairs = self.clustering.pairs()
        return self._pairs

    def pair_count(self) -> int:
        """Number of true duplicate pairs ``|G|``."""
        return self.clustering.pair_count()

    def is_duplicate(self, first: str, second: str) -> bool:
        """Whether two records are true duplicates."""
        return self.clustering.same_cluster(first, second)

    def as_experiment(self) -> Experiment:
        """The gold standard viewed as a (perfect) experiment."""
        return Experiment(
            ((a, b) for a, b in self.pairs()), name=self.name, solution="gold"
        )
