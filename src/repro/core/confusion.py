"""The confusion matrix over record pairs (Figure 2).

Comparing an experiment ``E`` against a ground truth ``G`` on dataset
``D``, both as sets of pairs drawn from ``[D]^2``:

================  =====================
true positives    ``E ∩ G``
false positives   ``E \\ G``
false negatives   ``G \\ E``
true negatives    ``([D]^2 \\ E) \\ G``
================  =====================

The matrix is stored as four counts; all pair-based metrics
(:mod:`repro.metrics.pairwise`) are computed from it in constant time.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.clustering import Clustering
from repro.core.pairs import make_pair

__all__ = ["ConfusionMatrix"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """Pair-level confusion counts of an experiment against a ground truth."""

    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    def __post_init__(self) -> None:
        for name, value in (
            ("true_positives", self.true_positives),
            ("false_positives", self.false_positives),
            ("false_negatives", self.false_negatives),
            ("true_negatives", self.true_negatives),
        ):
            if value < 0:
                raise ValueError(f"{name} must be non-negative, got {value}")

    # -- constructors -----------------------------------------------------------

    @classmethod
    def from_pair_sets(
        cls,
        experiment: Iterable[Iterable[str]],
        ground_truth: Iterable[Iterable[str]],
        total_pairs: int,
    ) -> "ConfusionMatrix":
        """Confusion matrix from explicit pair sets.

        ``total_pairs`` is ``C(|D|, 2)``, needed to derive the true
        negatives (the only quadrant not enumerated by either set).
        """
        experiment_set = {make_pair(*pair) for pair in experiment}
        truth_set = {make_pair(*pair) for pair in ground_truth}
        tp = len(experiment_set & truth_set)
        fp = len(experiment_set) - tp
        fn = len(truth_set) - tp
        tn = total_pairs - tp - fp - fn
        if tn < 0:
            raise ValueError(
                f"total_pairs={total_pairs} too small for the given pair sets"
            )
        return cls(tp, fp, fn, tn)

    @classmethod
    def from_clusterings(
        cls,
        experiment: Clustering,
        ground_truth: Clustering,
        total_pairs: int,
    ) -> "ConfusionMatrix":
        """Confusion matrix from clusterings, in near-linear time.

        Uses the identity TP == pair count of the intersection
        clustering (Appendix D.4), avoiding pair materialization:
        runtime is linear in the number of records mentioned, not
        quadratic in cluster sizes.
        """
        tp = experiment.intersect(ground_truth).pair_count()
        experiment_pairs = experiment.pair_count()
        truth_pairs = ground_truth.pair_count()
        fp = experiment_pairs - tp
        fn = truth_pairs - tp
        tn = total_pairs - tp - fp - fn
        if tn < 0:
            raise ValueError(
                f"total_pairs={total_pairs} too small for the given clusterings"
            )
        return cls(tp, fp, fn, tn)

    @classmethod
    def from_counts(
        cls, tp: int, experiment_pairs: int, truth_pairs: int, total_pairs: int
    ) -> "ConfusionMatrix":
        """Confusion matrix from aggregate counts (used by Algorithm 1)."""
        fp = experiment_pairs - tp
        fn = truth_pairs - tp
        return cls(tp, fp, fn, total_pairs - tp - fp - fn)

    # -- derived ---------------------------------------------------------------

    @property
    def total(self) -> int:
        """All pairs: ``C(|D|, 2)``."""
        return (
            self.true_positives
            + self.false_positives
            + self.false_negatives
            + self.true_negatives
        )

    @property
    def predicted_positives(self) -> int:
        """Pairs the experiment declared matches: ``|E|``."""
        return self.true_positives + self.false_positives

    @property
    def actual_positives(self) -> int:
        """True duplicate pairs: ``|G|``."""
        return self.true_positives + self.false_negatives

    @property
    def predicted_negatives(self) -> int:
        """``FN + TN``: pairs the experiment classified as non-matches."""
        return self.false_negatives + self.true_negatives

    @property
    def actual_negatives(self) -> int:
        """``FP + TN``: pairs that are true non-duplicates."""
        return self.false_positives + self.true_negatives

    def as_dict(self) -> dict[str, int]:
        """The four counts as ``{'tp': ..., 'fp': ..., 'fn': ..., 'tn': ...}``."""
        return {
            "tp": self.true_positives,
            "fp": self.false_positives,
            "fn": self.false_negatives,
            "tn": self.true_negatives,
        }

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        """Element-wise sum, for aggregating per-partition matrices (§4.2.3)."""
        return ConfusionMatrix(
            self.true_positives + other.true_positives,
            self.false_positives + other.false_positives,
            self.false_negatives + other.false_negatives,
            self.true_negatives + other.true_negatives,
        )
