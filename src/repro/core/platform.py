"""The Frost platform facade.

One object that holds datasets, gold standards, and experiments, and
exposes the platform's evaluations: the N-Metrics viewer, metric/metric
diagrams, set-based comparisons, profiling decision matrices, and the
soft-KPI decision matrix.  This is the programmatic equivalent of
Snowman's benchmark screens (Figure 4) and also backs the REST-style
API of :mod:`repro.server`.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.core.confusion import ConfusionMatrix
from repro.core.diagrams import DiagramPoint, compute_diagram_optimized
from repro.core.experiment import Experiment, GoldStandard
from repro.core.notify import ListenerSet
from repro.core.records import Dataset

__all__ = ["FrostPlatform", "BenchmarkEntry"]


@dataclass
class BenchmarkEntry:
    """One dataset with its gold standards and experiments."""

    dataset: Dataset
    golds: dict[str, GoldStandard] = field(default_factory=dict)
    experiments: dict[str, Experiment] = field(default_factory=dict)


class FrostPlatform:
    """Registry + evaluation entry points of the benchmark platform.

    >>> platform = FrostPlatform()
    >>> platform.add_dataset(dataset)          # doctest: +SKIP
    >>> platform.add_gold(dataset.name, gold)  # doctest: +SKIP
    >>> platform.metrics_table(dataset.name, gold.name)  # doctest: +SKIP
    """

    def __init__(self) -> None:
        self._entries: dict[str, BenchmarkEntry] = {}
        self._listeners = ListenerSet()
        # Guards registry *mutation* and dict-iterating reads (the
        # sorted name listings): the threaded HTTP server reads while
        # engine workers register pipeline results, and a dict that
        # grows mid-iteration raises RuntimeError.  Plain key lookups
        # are atomic under the GIL and stay lock-free.
        self._registry_lock = threading.RLock()

    # -- registry -------------------------------------------------------------------

    def subscribe(self, listener) -> None:
        """Call ``listener(dataset_name)`` after every registry write.

        This is how read-through caches above the platform (the serving
        layer's :class:`~repro.serving.cache.MetricResultCache`) stay
        correct: *any* write path — direct Python calls, the HTTP API,
        or the engine registering a pipeline result — notifies every
        subscriber, which invalidates the dataset's cached payloads.

        Bound-method listeners are held through weak references
        (:class:`~repro.core.notify.ListenerSet`), so an abandoned
        subscriber (a dropped serving layer) detaches itself instead of
        being pinned by the platform forever.
        """
        self._listeners.subscribe(listener)

    def _notify(self, dataset_name: str) -> None:
        self._listeners.notify(dataset_name)

    def add_dataset(self, dataset: Dataset) -> None:
        """Register a dataset under its name."""
        with self._registry_lock:
            if dataset.name in self._entries:
                raise ValueError(
                    f"dataset {dataset.name!r} is already registered"
                )
            self._entries[dataset.name] = BenchmarkEntry(dataset=dataset)
        self._notify(dataset.name)

    def add_gold(self, dataset_name: str, gold: GoldStandard) -> None:
        """Register a gold standard for a dataset."""
        with self._registry_lock:
            entry = self._entry(dataset_name)
            if gold.name in entry.golds:
                raise ValueError(
                    f"gold {gold.name!r} already registered for "
                    f"{dataset_name!r}"
                )
            entry.golds[gold.name] = gold
        self._notify(dataset_name)

    def add_experiment(self, dataset_name: str, experiment: Experiment) -> None:
        """Register an experiment (a matching result) for a dataset."""
        with self._registry_lock:
            entry = self._entry(dataset_name)
            if experiment.name in entry.experiments:
                raise ValueError(
                    f"experiment {experiment.name!r} already registered for "
                    f"{dataset_name!r}"
                )
            entry.experiments[experiment.name] = experiment
        self._notify(dataset_name)

    def dataset_names(self) -> list[str]:
        """Names of all registered datasets, sorted."""
        with self._registry_lock:
            return sorted(self._entries)

    def dataset(self, name: str) -> Dataset:
        """The registered dataset named ``name``."""
        return self._entry(name).dataset

    def gold(self, dataset_name: str, gold_name: str) -> GoldStandard:
        """A registered gold standard of a dataset."""
        entry = self._entry(dataset_name)
        try:
            return entry.golds[gold_name]
        except KeyError:
            known = ", ".join(sorted(entry.golds)) or "(none)"
            raise KeyError(
                f"no gold {gold_name!r} for {dataset_name!r}; known: {known}"
            ) from None

    def experiment(self, dataset_name: str, experiment_name: str) -> Experiment:
        """A registered experiment of a dataset."""
        entry = self._entry(dataset_name)
        try:
            return entry.experiments[experiment_name]
        except KeyError:
            known = ", ".join(sorted(entry.experiments)) or "(none)"
            raise KeyError(
                f"no experiment {experiment_name!r} for {dataset_name!r}; "
                f"known: {known}"
            ) from None

    def experiment_names(self, dataset_name: str) -> list[str]:
        """Names of a dataset's experiments, sorted."""
        with self._registry_lock:
            return sorted(self._entry(dataset_name).experiments)

    def gold_names(self, dataset_name: str) -> list[str]:
        """Names of a dataset's gold standards, sorted."""
        with self._registry_lock:
            return sorted(self._entry(dataset_name).golds)

    def _entry(self, dataset_name: str) -> BenchmarkEntry:
        try:
            return self._entries[dataset_name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "(none)"
            raise KeyError(
                f"no dataset named {dataset_name!r}; known: {known}"
            ) from None

    # -- evaluations -----------------------------------------------------------------

    def confusion(
        self, dataset_name: str, experiment_name: str, gold_name: str
    ) -> ConfusionMatrix:
        """Pair-level confusion matrix of one experiment vs one gold."""
        entry = self._entry(dataset_name)
        experiment = self.experiment(dataset_name, experiment_name)
        gold = self.gold(dataset_name, gold_name)
        return ConfusionMatrix.from_clusterings(
            experiment.clustering(),
            gold.clustering,
            entry.dataset.total_pairs(),
        )

    def metrics_table(
        self,
        dataset_name: str,
        gold_name: str,
        experiment_names: Sequence[str] | None = None,
        metric_names: Sequence[str] | None = None,
    ) -> dict[str, dict[str, float]]:
        """The N-Metrics viewer (§5.4): metrics for several experiments.

        Returns ``{experiment name: {metric name: value}}``.
        """
        from repro.metrics.registry import default_registry

        registry = default_registry()
        names = (
            list(experiment_names)
            if experiment_names is not None
            else self.experiment_names(dataset_name)
        )
        table: dict[str, dict[str, float]] = {}
        for experiment_name in names:
            matrix = self.confusion(dataset_name, experiment_name, gold_name)
            table[experiment_name] = registry.evaluate(matrix, metric_names)
        return table

    def diagram(
        self,
        dataset_name: str,
        experiment_name: str,
        gold_name: str,
        samples: int = 100,
    ) -> list[DiagramPoint]:
        """Metric/metric diagram data via the optimized algorithm."""
        return compute_diagram_optimized(
            self.dataset(dataset_name),
            self.experiment(dataset_name, experiment_name),
            self.gold(dataset_name, gold_name),
            samples=samples,
        )

    def profile(self, dataset_name: str):
        """Profiling metrics of a registered dataset (§3.1.3).

        Uses the first registered gold standard (if any) for the
        positive-ratio dimension.
        """
        from repro.profiling import profile_dataset

        entry = self._entry(dataset_name)
        gold = next(iter(entry.golds.values()), None)
        return profile_dataset(entry.dataset, gold)

    def timeline(
        self,
        dataset_name: str,
        experiment_name: str,
        gold_name: str,
        checkpoint_every: int | None = None,
    ):
        """A :class:`~repro.core.timeline.DiagramTimeline` over
        registered artifacts (threshold exploration with cheap rewinds).
        """
        from repro.core.timeline import DiagramTimeline

        return DiagramTimeline(
            self.dataset(dataset_name),
            self.experiment(dataset_name, experiment_name),
            self.gold(dataset_name, gold_name),
            checkpoint_every=checkpoint_every,
        )

    def compare_sets(
        self,
        dataset_name: str,
        inputs: Mapping[str, str] | Sequence[str],
    ):
        """A :class:`~repro.exploration.setops.SetComparison` over named
        experiments and/or golds of one dataset.

        ``inputs`` is either a list of experiment/gold names or a
        mapping ``{display name: registered name}``.
        """
        from repro.exploration.setops import SetComparison

        entry = self._entry(dataset_name)

        def resolve(name: str):
            if name in entry.experiments:
                return entry.experiments[name]
            if name in entry.golds:
                return entry.golds[name]
            known = ", ".join(sorted([*entry.experiments, *entry.golds]))
            raise KeyError(f"no experiment or gold named {name!r}; known: {known}")

        if isinstance(inputs, Mapping):
            resolved = {display: resolve(name) for display, name in inputs.items()}
        else:
            resolved = {name: resolve(name) for name in inputs}
        return SetComparison(entry.dataset, resolved)
