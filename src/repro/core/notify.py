"""Write-notification plumbing shared by registries and stores.

PR 5 introduced the subscribe/notify idiom on
:class:`~repro.core.platform.FrostPlatform` so read-through caches stay
correct across registry writes.  The match-graph subsystem needs the
same mechanism on :class:`~repro.storage.database.FrostStore` (graph
writes must invalidate cached traversal payloads), so the idiom lives
here as a reusable :class:`ListenerSet`.

Bound-method listeners are held through weak references: an abandoned
subscriber (a dropped serving layer) detaches itself instead of being
pinned by its publisher forever.  Plain functions and lambdas keep a
strong reference — they carry no owning object whose lifetime could
end the subscription.
"""

from __future__ import annotations

import threading
import weakref

__all__ = ["ListenerSet"]


class ListenerSet:
    """A thread-safe set of ``listener(payload)`` callbacks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._references: list = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._references)

    def subscribe(self, listener) -> None:
        """Register ``listener`` to be called on every :meth:`notify`."""
        try:
            reference = weakref.WeakMethod(listener)
        except TypeError:
            # plain functions/lambdas: keep a strong reference
            def reference(listener=listener):
                return listener

        with self._lock:
            self._references.append(reference)

    def notify(self, payload) -> None:
        """Call every live listener with ``payload``; prune dead ones."""
        with self._lock:
            references = list(self._references)
        stale = []
        for reference in references:
            listener = reference()
            if listener is None:
                stale.append(reference)
            else:
                listener(payload)
        if stale:
            with self._lock:
                for reference in stale:
                    if reference in self._references:
                        self._references.remove(reference)
