"""Canonical record pairs.

A record pair is an *unordered* set of two distinct record ids
(Section 1.2: ``{r1, r2} ⊆ D``).  We canonicalize pairs as sorted
2-tuples so that they hash and compare consistently, and provide a
:class:`ScoredPair` that additionally carries the similarity/confidence
score a matching solution attached to the pair.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["Pair", "ScoredPair", "make_pair", "canonical_pairs", "pair_key"]

Pair = tuple[str, str]


def make_pair(first: str, second: str) -> Pair:
    """Canonical unordered pair of two distinct record ids.

    Raises
    ------
    ValueError
        If both ids are equal (a pair is a set of *two* records).
    """
    if first == second:
        raise ValueError(f"a record pair needs two distinct records, got {first!r} twice")
    if first <= second:
        return (first, second)
    return (second, first)


def pair_key(pair: Iterable[str]) -> Pair:
    """Canonicalize any iterable of two ids into a :data:`Pair`."""
    first, second = pair
    return make_pair(first, second)


def canonical_pairs(pairs: Iterable[Iterable[str]]) -> set[Pair]:
    """Canonicalize and deduplicate an iterable of id pairs."""
    return {pair_key(pair) for pair in pairs}


@dataclass(frozen=True, order=True)
class ScoredPair:
    """A record pair together with the similarity score assigned to it.

    Ordering sorts by ``(score, pair)`` so that a descending sort visits
    high-confidence matches first, with ties broken deterministically.
    """

    score: float
    pair: Pair

    @classmethod
    def of(cls, first: str, second: str, score: float) -> "ScoredPair":
        """Build the canonical pair of two record ids."""
        return cls(score=score, pair=make_pair(first, second))

    @property
    def first(self) -> str:
        """The lexicographically smaller record id."""
        return self.pair[0]

    @property
    def second(self) -> str:
        """The lexicographically larger record id."""
        return self.pair[1]
