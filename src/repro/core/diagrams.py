"""Metric/metric diagrams over similarity thresholds (§4.5.1, Appendix D).

A metric/metric diagram (e.g. the precision/recall curve, Figure 3)
plots two pair-based quality metrics against each other while the
similarity threshold sweeps over the experiment's score range.  All
pair-based metrics derive in constant time from a confusion matrix, so
the problem reduces to producing a sequence of confusion matrices, one
per sampled threshold.

Three algorithms are provided:

* :func:`compute_diagram_optimized` — Snowman's algorithm (Algorithm 1):
  a single pass over the matches sorted by descending score, maintaining
  the experiment clustering with a tracked-union union-find and the
  intersection clustering with :class:`~repro.core.intersection.DynamicIntersection`.
  Worst case ``O(|D| + |Matches|·(s + log|Matches|))``.
* :func:`compute_diagram_naive_clustering` — per threshold, rebuild the
  experiment clustering from scratch and intersect with the ground
  truth: ``O(s · (|D| + |Matches|))``.  This is the "slightly more
  advanced (but still naïve)" baseline of Appendix D and the comparator
  of Table 1.
* :func:`compute_diagram_naive_pairwise` — per threshold, transitively
  close the match subset and compare pair sets.  Quadratic in cluster
  sizes; only usable on small inputs (kept as the strawman baseline).

As in the paper, thresholds are sampled so that a *constant number of
matches* lies between consecutive data points, which avoids degenerate
spacing when scores are unevenly distributed (Appendix D.1).  The first
data point always corresponds to threshold infinity (no matches).
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core.clustering import Clustering
from repro.core.confusion import ConfusionMatrix
from repro.core.experiment import Experiment, GoldStandard
from repro.core.intersection import DynamicIntersection
from repro.core.pairs import ScoredPair, make_pair
from repro.core.records import Dataset
from repro.core.unionfind import PairCountingUnionFind

__all__ = [
    "DiagramPoint",
    "compute_diagram_optimized",
    "compute_diagram_naive_clustering",
    "compute_diagram_naive_pairwise",
    "metric_metric_series",
]


@dataclass(frozen=True)
class DiagramPoint:
    """One sampled data point of a metric/metric diagram.

    Attributes
    ----------
    threshold:
        The similarity threshold this point corresponds to;
        ``math.inf`` for the empty prefix (no matches applied).
    matches_applied:
        How many matches have score >= threshold.
    matrix:
        The pair-level confusion matrix at this threshold.
    """

    threshold: float
    matches_applied: int
    matrix: ConfusionMatrix


def _sorted_scored_matches(experiment: Experiment) -> list[ScoredPair]:
    """Experiment matches sorted by descending score (ties: by pair)."""
    scored = experiment.scored_pairs()
    if len(scored) != len(experiment):
        missing = len(experiment) - len(scored)
        raise ValueError(
            f"metric/metric diagrams need similarity scores on every match; "
            f"{missing} match(es) of {experiment.name!r} are unscored"
        )
    return sorted(scored, key=lambda sp: (-sp.score, sp.pair))


def _sample_boundaries(match_count: int, samples: int) -> list[int]:
    """Prefix lengths at which to emit a data point.

    Emits ``samples`` boundaries ``0 = b_0 < b_1 <= ... <= b_{s-1} =
    match_count`` with (as close as possible) equally many matches
    between consecutive boundaries.
    """
    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    if samples == 1 or match_count == 0:
        return [0] * samples if match_count == 0 else [0, match_count][:samples]
    return [
        round(index * match_count / (samples - 1)) for index in range(samples)
    ]


def _truth_index_array(dataset: Dataset, gold: GoldStandard) -> list[int]:
    """Ground-truth cluster index for each numeric record id.

    Records not mentioned by the gold clustering get fresh singleton
    indices.
    """
    clustering = gold.clustering
    explicit = len(clustering.clusters)
    truth_of: list[int] = []
    next_singleton = explicit
    for record in dataset:
        index = clustering.cluster_index(record.record_id)
        if index is None:
            index = next_singleton
            next_singleton += 1
        truth_of.append(index)
    return truth_of


def compute_diagram_optimized(
    dataset: Dataset,
    experiment: Experiment,
    gold: GoldStandard,
    samples: int = 100,
) -> list[DiagramPoint]:
    """Confusion matrices over thresholds — Snowman's Algorithm 1.

    Single pass over the matches in descending score order.  The
    experiment clustering grows monotonically (a lower threshold only
    adds matches), so a pair-counting union-find with ``tracked_union``
    maintains ``|E|`` and a :class:`DynamicIntersection` maintains the
    true-positive count.  Each confusion matrix then follows from three
    integers.
    """
    matches = _sorted_scored_matches(experiment)
    truth_of = _truth_index_array(dataset, gold)
    experiment_clusters = PairCountingUnionFind(len(dataset))
    intersection = DynamicIntersection(truth_of)
    truth_pairs = gold.pair_count()
    total_pairs = dataset.total_pairs()

    def point(threshold: float, applied: int) -> DiagramPoint:
        matrix = ConfusionMatrix.from_counts(
            tp=intersection.pair_count,
            experiment_pairs=experiment_clusters.pair_count,
            truth_pairs=truth_pairs,
            total_pairs=total_pairs,
        )
        return DiagramPoint(threshold=threshold, matches_applied=applied, matrix=matrix)

    if not matches:
        return [point(math.inf, 0)]
    boundaries = _sample_boundaries(len(matches), samples)
    points = [point(math.inf, 0)]
    numeric = dataset.numeric_id
    previous = 0
    for boundary in boundaries[1:]:
        if boundary > previous:
            batch = [
                (numeric(sp.pair[0]), numeric(sp.pair[1]))
                for sp in matches[previous:boundary]
            ]
            merges = experiment_clusters.tracked_union(batch)
            intersection.update(merges)
        threshold = matches[boundary - 1].score if boundary > 0 else math.inf
        points.append(point(threshold, boundary))
        previous = boundary
    return points


def compute_diagram_naive_clustering(
    dataset: Dataset,
    experiment: Experiment,
    gold: GoldStandard,
    samples: int = 100,
) -> list[DiagramPoint]:
    """Naïve baseline: re-cluster and re-intersect at every threshold.

    Calculates "the experiment clustering, intersection, and confusion
    matrix newly for every requested similarity threshold" (Appendix D)
    — linear in ``samples × (|D| + |Matches|)``.
    """
    matches = _sorted_scored_matches(experiment)
    truth_pairs = gold.pair_count()
    total_pairs = dataset.total_pairs()
    empty_point = DiagramPoint(
        threshold=math.inf,
        matches_applied=0,
        matrix=ConfusionMatrix.from_counts(0, 0, truth_pairs, total_pairs),
    )
    if not matches:
        return [empty_point]
    boundaries = _sample_boundaries(len(matches), samples)
    points: list[DiagramPoint] = []
    for index, boundary in enumerate(boundaries):
        if index == 0:
            points.append(empty_point)
            continue
        prefix = matches[:boundary]
        clustering = Clustering.from_pairs(sp.pair for sp in prefix)
        tp = clustering.intersect(gold.clustering).pair_count()
        matrix = ConfusionMatrix.from_counts(
            tp=tp,
            experiment_pairs=clustering.pair_count(),
            truth_pairs=truth_pairs,
            total_pairs=total_pairs,
        )
        threshold = prefix[-1].score if prefix else math.inf
        points.append(
            DiagramPoint(threshold=threshold, matches_applied=boundary, matrix=matrix)
        )
    return points


def compute_diagram_naive_pairwise(
    dataset: Dataset,
    experiment: Experiment,
    gold: GoldStandard,
    samples: int = 100,
) -> list[DiagramPoint]:
    """Strawman baseline: materialize closed pair sets per threshold.

    Quadratic in cluster sizes; matches the paper's first naïve approach
    ("go through the list of matches and track all sets of pairs in the
    confusion matrix", with transitive closure at each step).
    """
    matches = _sorted_scored_matches(experiment)
    gold_pairs = gold.pairs()
    total_pairs = dataset.total_pairs()
    if not matches:
        return [
            DiagramPoint(
                threshold=math.inf,
                matches_applied=0,
                matrix=ConfusionMatrix.from_counts(
                    0, 0, len(gold_pairs), total_pairs
                ),
            )
        ]
    boundaries = _sample_boundaries(len(matches), samples)
    points: list[DiagramPoint] = []
    for index, boundary in enumerate(boundaries):
        prefix = matches[:boundary]
        closed = Clustering.from_pairs(sp.pair for sp in prefix).pairs()
        tp = len(closed & gold_pairs)
        matrix = ConfusionMatrix.from_counts(
            tp=tp,
            experiment_pairs=len(closed),
            truth_pairs=len(gold_pairs),
            total_pairs=total_pairs,
        )
        threshold = prefix[-1].score if boundary > 0 else math.inf
        points.append(
            DiagramPoint(threshold=threshold, matches_applied=boundary, matrix=matrix)
        )
        del index
    return points


def metric_metric_series(
    points: Sequence[DiagramPoint],
    x_metric: Callable[[ConfusionMatrix], float],
    y_metric: Callable[[ConfusionMatrix], float],
) -> list[tuple[float, float]]:
    """Project diagram points onto two metrics, e.g. (recall, precision).

    Each data point of the returned series is based on a different
    similarity threshold (Section 4.5.1).
    """
    return [(x_metric(p.matrix), y_metric(p.matrix)) for p in points]
