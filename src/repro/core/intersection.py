"""Dynamically maintained intersection clustering (Appendix D.3).

The optimized metric/metric-diagram algorithm needs, after every batch
of merges in the experiment clustering, the number of pairs in the
*intersection* of experiment and ground truth clusterings (that number
is exactly the true-positive count).  Recomputing the intersection per
batch is linear in ``|D|``; this structure updates it incrementally.

State, as described in the paper:

* a pair-counting union-find whose clusters are the intersection
  clusters (each uniquely identified by an (experiment cluster, ground
  truth cluster) combination), and
* a map ``experiment cluster id -> {ground truth cluster -> intersection
  cluster}`` used to find which intersection clusters must be merged
  when experiment clusters merge.

The subtlety this solves (Figure 9): a merge of experiment clusters that
spans different ground-truth clusters does not change the intersection
*now*, but must be remembered because a later merge can join records of
the same ground-truth cluster that are already transitively connected in
the experiment.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.unionfind import MergeEntry, PairCountingUnionFind

__all__ = ["DynamicIntersection"]


class DynamicIntersection:
    """Incrementally maintained experiment ∩ ground-truth clustering.

    Parameters
    ----------
    truth_of:
        For each numeric record id ``0..n-1``, the index of its ground
        truth cluster.  Records in singleton truth clusters must still
        have distinct indices.
    """

    def __init__(self, truth_of: Sequence[int]) -> None:
        self._truth_of = list(truth_of)
        n = len(self._truth_of)
        # clusters of this union-find are the intersection clusters;
        # each is represented by the *current root element* of its set
        self._clusters = PairCountingUnionFind(n)
        # experiment cluster id -> {truth cluster -> representative element}
        # Initial experiment clustering is all-singletons with cluster ids
        # 0..n-1, so intersection cluster of record e is {e} itself.
        self._map: dict[int, dict[int, int]] = {
            element: {self._truth_of[element]: element} for element in range(n)
        }

    def __len__(self) -> int:
        return len(self._truth_of)

    @property
    def pair_count(self) -> int:
        """Number of pairs in the intersection clustering (== TP count)."""
        return self._clusters.pair_count

    def update(self, merges: Iterable[MergeEntry]) -> None:
        """Apply a batch of experiment-clustering merges (Algorithm 2).

        ``merges`` is the output of
        :meth:`repro.core.unionfind.PairCountingUnionFind.tracked_union`
        on the *experiment* union-find.
        """
        for entry in merges:
            # aggregate all intersection clusters belonging to the
            # source experiment clusters, grouped by ground truth cluster
            by_truth: dict[int, list[int]] = {}
            for source in entry.sources:
                source_map = self._map.pop(source, None)
                if source_map is None:
                    raise KeyError(
                        f"unknown experiment cluster id {source}; merges must "
                        "be applied exactly once and in order"
                    )
                for truth_cluster, representative in source_map.items():
                    by_truth.setdefault(truth_cluster, []).append(representative)
            # merge intersection clusters sharing a ground-truth cluster
            target_map: dict[int, int] = {}
            for truth_cluster, representatives in by_truth.items():
                anchor = representatives[0]
                for other in representatives[1:]:
                    self._clusters.union(anchor, other)
                target_map[truth_cluster] = self._clusters.find(anchor)
            self._map[entry.target] = target_map

    @classmethod
    def from_graph(cls, graph, truth_of: Sequence[int]) -> "DynamicIntersection":
        """An intersection seeded from a match graph's components.

        ``graph`` is a :class:`~repro.graph.model.MatchGraph` whose
        dense node ids line up with ``truth_of`` indices.  The graph's
        components *are* the experiment clustering, so instead of
        replaying individual merges the components are folded in
        wholesale — the resulting intersection (pair count, clusters)
        is identical to feeding the same merges through
        :meth:`update`, which the equivalence tests pin down.
        """
        if graph.node_count != len(truth_of):
            raise ValueError(
                f"graph has {graph.node_count} nodes but truth_of covers "
                f"{len(truth_of)} records"
            )
        intersection = cls(truth_of)
        mirror = PairCountingUnionFind(graph.node_count)
        components = graph.component_nodes()
        for label in sorted(components):
            members = components[label]
            if len(members) < 2:
                continue
            anchor = members[0]
            merges = mirror.tracked_union(
                (anchor, other) for other in members[1:]
            )
            intersection.update(merges)
        return intersection

    def copy(self) -> "DynamicIntersection":
        """An independent deep copy (used for timeline checkpoints)."""
        clone = DynamicIntersection.__new__(DynamicIntersection)
        clone._truth_of = self._truth_of  # read-only after construction
        clone._clusters = self._clusters.copy()
        clone._map = {
            cluster_id: dict(truth_map)
            for cluster_id, truth_map in self._map.items()
        }
        return clone

    def clusters(self) -> dict[int, list[int]]:
        """Materialize the intersection partition (for tests/inspection)."""
        return self._clusters.clusters()

    def intersection_cluster_of(self, element: int) -> int:
        """Root id of the intersection cluster containing ``element``."""
        return self._clusters.find(element)
