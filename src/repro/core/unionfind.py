"""Pair-counting union-find with merge tracking.

This is the data structure at the heart of Snowman's optimized
metric/metric-diagram algorithm (Appendix D).  Beyond the classic
union-find operations ([Tarjan 1972], union by size + path compression)
it supports:

* ``pair_count`` — the number of intra-cluster record pairs, maintained
  incrementally: merging clusters of sizes ``a`` and ``b`` adds ``a*b``
  pairs.
* ``tracked_union`` — a batched union that reports, for every cluster
  created by the batch, which pre-batch clusters were merged into it
  ("``Merges``", Appendix D.1).  Cluster ids are *generation ids*: every
  merge mints a fresh id for the resulting cluster, exactly as in the
  paper's worked example (Figure 10, ids e0..e6).
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

__all__ = ["MergeEntry", "PairCountingUnionFind"]


@dataclass(frozen=True)
class MergeEntry:
    """One entry of a ``tracked_union`` result.

    Attributes
    ----------
    sources:
        Ids of pre-batch clusters that are now part of ``target``.
    target:
        Id of the newly created cluster.
    """

    sources: tuple[int, ...]
    target: int


class PairCountingUnionFind:
    """Union-find over ``n`` elements with pair counting and merge logs.

    Elements are dense integers ``0..n-1`` (the dataset's numeric record
    ids).  Cluster ids start as ``0..n-1`` (singleton clusters) and each
    merge mints the next free integer id, so ids encode merge history.
    """

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"element count must be non-negative, got {n}")
        self._n = n
        # parent of each element in the union-find forest
        self._parent = list(range(n))
        # size of the cluster rooted at each element (valid for roots only)
        self._size = [1] * n
        # current cluster id of the cluster rooted at each element
        self._cluster_id = list(range(n))
        self._next_cluster_id = n
        self._pair_count = 0
        self._cluster_count = n

    # -- basic queries --------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def cluster_count(self) -> int:
        """Number of clusters in the current partition."""
        return self._cluster_count

    @property
    def pair_count(self) -> int:
        """Total number of intra-cluster pairs, ``sum over clusters of C(s,2)``."""
        return self._pair_count

    def find(self, element: int) -> int:
        """Root element of ``element``'s cluster (with path compression)."""
        root = element
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[element] != root:
            parent[element], element = root, parent[element]
        return root

    def cluster_id_of(self, element: int) -> int:
        """Current generation id of ``element``'s cluster."""
        return self._cluster_id[self.find(element)]

    def cluster_size(self, element: int) -> int:
        """Size of ``element``'s cluster."""
        return self._size[self.find(element)]

    def connected(self, first: int, second: int) -> bool:
        """Whether two elements are in the same cluster."""
        return self.find(first) == self.find(second)

    def clusters(self) -> dict[int, list[int]]:
        """Materialize the partition as ``{cluster_id: sorted members}``."""
        result: dict[int, list[int]] = {}
        for element in range(self._n):
            result.setdefault(self.cluster_id_of(element), []).append(element)
        return result

    # -- mutation --------------------------------------------------------------

    def union(self, first: int, second: int) -> int:
        """Merge the clusters of ``first`` and ``second``.

        Returns the (possibly fresh) cluster id of the merged cluster.
        A no-op union (already connected) keeps the existing id.
        """
        root_a = self.find(first)
        root_b = self.find(second)
        if root_a == root_b:
            return self._cluster_id[root_a]
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._pair_count += self._size[root_a] * self._size[root_b]
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        self._cluster_count -= 1
        fresh = self._next_cluster_id
        self._next_cluster_id += 1
        self._cluster_id[root_a] = fresh
        return fresh

    def tracked_union(self, pairs: Iterable[tuple[int, int]]) -> list[MergeEntry]:
        """Batched union with a merge log (``trackedUnion``, Appendix D.1).

        Applies ``union`` for every pair, then returns one
        :class:`MergeEntry` per cluster that was *newly created* by this
        batch and has not itself been merged away within the batch.  Each
        entry lists as ``sources`` the cluster ids that existed *before*
        the batch and are now part of ``target``.

        Example (paper, Appendix D.1): clusters ``{{a},{b},{c,d}}`` with
        ids ``x,y,z``; pairs ``{a,b},{b,c}`` produce one entry with
        ``sources=(x,y,z)`` and the fresh id of ``{a,b,c,d}`` as target.
        """
        # sources created before this batch, keyed by the batch-created
        # cluster id that currently covers them
        batch_sources: dict[int, list[int]] = {}
        for first, second in pairs:
            root_a = self.find(first)
            root_b = self.find(second)
            if root_a == root_b:
                continue
            id_a = self._cluster_id[root_a]
            id_b = self._cluster_id[root_b]
            fresh = self.union(first, second)
            # clusters created within this batch inherit their pre-batch
            # sources instead of being listed themselves; reusing the
            # larger source list (instead of copying) keeps long merge
            # chains linear rather than quadratic
            sources_a = batch_sources.pop(id_a, None)
            if sources_a is None:
                sources_a = [id_a]
            sources_b = batch_sources.pop(id_b, None)
            if sources_b is None:
                sources_b = [id_b]
            if len(sources_a) < len(sources_b):
                sources_a, sources_b = sources_b, sources_a
            sources_a.extend(sources_b)
            batch_sources[fresh] = sources_a
        return [
            MergeEntry(sources=tuple(sources), target=target)
            for target, sources in batch_sources.items()
        ]

    def grow(self, count: int = 1) -> range:
        """Append ``count`` fresh singleton elements; returns their indices.

        New elements receive *fresh* generation ids (from the same
        counter the merges mint from), so cluster ids stay unique even
        when growth interleaves with unions.  This is what lets a
        streaming session keep one union-find alive while records keep
        arriving (:mod:`repro.streaming`).
        """
        if count < 0:
            raise ValueError(f"growth count must be non-negative, got {count}")
        start = self._n
        for index in range(start, start + count):
            self._parent.append(index)
            self._size.append(1)
            self._cluster_id.append(self._next_cluster_id)
            self._next_cluster_id += 1
        self._n += count
        self._cluster_count += count
        return range(start, self._n)

    def copy(self) -> "PairCountingUnionFind":
        """An independent deep copy of the structure."""
        clone = PairCountingUnionFind(0)
        clone._n = self._n
        clone._parent = list(self._parent)
        clone._size = list(self._size)
        clone._cluster_id = list(self._cluster_id)
        clone._next_cluster_id = self._next_cluster_id
        clone._pair_count = self._pair_count
        clone._cluster_count = self._cluster_count
        return clone
